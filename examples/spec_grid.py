"""Define-by-data experiments: a declarative spec grid, run in parallel.

Scenario: you want the paper's dataset × model × |F| × tcf evidence grid
as *data* — a JSON file a colleague can re-run, a scheduler can shard, and
an interrupted job can resume.  This example:

1. loads the checked-in spec (``examples/specs/smoke_grid.json``),
2. runs it with two worker processes against a content-addressed store,
3. interrupts-and-resumes to show that only missing runs execute,
4. proves the parallel records are bit-identical to a serial run.

Run:  python examples/spec_grid.py
"""

import tempfile
from pathlib import Path

from repro.experiments import ExperimentRunner, ExperimentSpec, RunStore

SPEC_PATH = Path(__file__).parent / "specs" / "smoke_grid.json"


def main() -> None:
    # 1. Experiments as data: the grid lives in a JSON file, not a script.
    spec = ExperimentSpec.load(SPEC_PATH)
    runs = spec.expand()
    print(f"Spec {spec.name!r}: {len(runs)} runs "
          f"({len(spec.datasets)} datasets x {len(spec.frs_sizes)} |F| "
          f"x {len(spec.tcfs)} tcf)")
    print(f"First run hash: {runs[0].spec_hash} (content-addressed)")

    workdir = Path(tempfile.mkdtemp(prefix="spec-grid-"))
    store = RunStore(workdir / "records")

    # 2. Simulate an interrupted grid: execute only the first half.
    half = len(runs) // 2
    ExperimentRunner(store=store).run(runs[:half])
    print(f"\nInterrupted after {half} runs; store holds {len(store)} records.")

    # 3. Resume with two workers: the store serves the completed half, the
    #    executor computes only the misses — same records as serial, the
    #    per-run seeds are derived from each spec's own content.
    runner = ExperimentRunner(store=store, workers=2)
    runner.on_event(
        lambda ev: print(f"  [{ev.kind}] {ev.spec.dataset} |F|={ev.spec.frs_size} "
                         f"tcf={ev.spec.tcf}")
        if ev.kind in ("run-cached", "run-completed", "run-skipped") else None
    )
    result = runner.run(spec)
    print(f"Resumed: {result.executed} executed, {result.cached} from store, "
          f"{result.skipped} skipped draws.")

    # 4. Bit-identity check against a fresh, storeless serial run.
    serial = ExperimentRunner().run(spec)
    assert serial.records == result.records
    print(f"\nParallel + resumed records == serial records "
          f"({len(result.records)} records) — bit-identical.")

    best = max(result.records, key=lambda r: r["delta_j"])
    print(f"Best ΔJ̄: {best['delta_j']:+.3f} on {best['dataset']} "
          f"(|F|={best['frs_size']}, tcf={best['tcf']})")
    print(f"\nRe-run this grid any time:\n"
          f"  python -m repro.experiments run-spec {SPEC_PATH} "
          f"--workers 2 --store {store.root}")


if __name__ == "__main__":
    main()
