"""FROTE vs Overlay (Daly et al., 2021) — the paper's Table 2 in miniature.

Overlay patches a frozen model post-hoc; FROTE edits the model by
retraining on augmented data.  When feedback deviates substantially from
the model's learned boundaries, Overlay's transformations degrade while
FROTE incorporates the feedback directly.

Run:  python examples/overlay_comparison.py
"""

import numpy as np

import repro
from repro.baselines import HARD, SOFT, Overlay
from repro.core import evaluate_predictions
from repro.data import coverage_aware_split
from repro.datasets import load_dataset
from repro.experiments import build_context, format_table
from repro.rules import draw_conflict_free


def main() -> None:
    ctx = build_context("mushroom", "LR", n=1200, random_state=42)
    rng = np.random.default_rng(42)
    frs = draw_conflict_free(list(ctx.rule_pool), 3, ctx.dataset.X.schema, rng)
    assert frs is not None
    print("Feedback rules:")
    for r in frs:
        print(f"  {r}")

    # Paper protocol: 50/50 splits for both coverage and outside populations.
    split = coverage_aware_split(
        ctx.dataset, frs.coverage_mask(ctx.dataset.X),
        tcf=0.5, outside_test_fraction=0.5, random_state=rng,
    )
    model = ctx.algorithm(split.train)
    test = split.test
    base = evaluate_predictions(model.predict(test.X), test, frs)

    rows = []
    for name, mode in (("Overlay-Soft", SOFT), ("Overlay-Hard", HARD)):
        overlay = Overlay(model, frs, split.train.X, mode=mode)
        ev = evaluate_predictions(overlay.predict(test.X), test, frs)
        rows.append(
            {
                "method": name,
                "delta_J": ev.j_weighted() - base.j_weighted(),
                "delta_MRA": ev.mra - base.mra,
                "delta_F1": ev.f1_outside - base.f1_outside,
                "retrains_model": "no",
            }
        )

    result = (
        repro.edit(split.train)
        .with_rules(frs)
        .with_algorithm(ctx.algorithm)
        .configure(tau=15, q=0.5, eta=50, random_state=42)
        .run()
    )
    ev = evaluate_predictions(result.model.predict(test.X), test, frs)
    rows.append(
        {
            "method": "FROTE",
            "delta_J": ev.j_weighted() - base.j_weighted(),
            "delta_MRA": ev.mra - base.mra,
            "delta_F1": ev.f1_outside - base.f1_outside,
            "retrains_model": "yes",
        }
    )

    print()
    print(format_table(rows, title="Improvement over the unpatched model (test set)"))
    print(
        "\nNote: Overlay is a post-processing patch — fast, but it leaves the "
        "underlying model unchanged and accumulates complexity per rule.  "
        "FROTE bakes the feedback into the retrained model."
    )


if __name__ == "__main__":
    main()
