"""Governed model editing: lineage, audit records, and the inflection point.

Paper §6 argues FROTE edits are auditable: every relabel and every
synthetic instance can be logged with its generating rule.  This example
runs an edit, prints the governance audit (JSON-ready), and then sweeps
augmentation past the useful range to locate the *inflection point* where
more synthetic data starts hurting overall performance.

This example deliberately uses the legacy ``FROTE(...).run(...)`` API
rather than ``repro.edit(...)`` — it exercises the compatibility layer,
which drives the same engine and produces seed-identical results.

Run:  python examples/governance_audit.py
"""

from repro import FROTE, FeedbackRuleSet, FroteConfig, parse_rule
from repro.core import SYNTHETIC, format_inflection, trace_inflection
from repro.data import train_test_split
from repro.datasets import load_dataset
from repro.models import paper_algorithm


def main() -> None:
    data = load_dataset("nursery", n=1500, random_state=11)
    schema, labels = data.X.schema, data.label_names
    algorithm = paper_algorithm("LGBM")

    frs = FeedbackRuleSet(
        (
            parse_rule(
                "health = 'priority' AND parents = 'usual' => very_recom",
                schema, labels, name="board-decision-12",
            ),
            parse_rule(
                "finance = 'inconv' AND housing = 'critical' => not_recom",
                schema, labels, name="board-decision-13",
            ),
        )
    )

    # --- Part 1: run the edit and print its audit trail ------------------
    result = FROTE(
        algorithm, frs, FroteConfig(tau=12, q=0.5, eta=40, random_state=42)
    ).run(data)
    audit = result.audit(frs, mod_strategy="relabel", ticket="GOV-4711")

    print(audit.summary())
    print("\nJSON form (first 400 chars):")
    print(audit.to_json()[:400], "...")

    # Row-level lineage: inspect a synthetic row's origin.
    prov = result.provenance
    synth_rows = [i for i in range(prov.n) if prov.kind[i] == SYNTHETIC]
    if synth_rows:
        i = synth_rows[0]
        print(
            f"\nExample lineage: row {i} is synthetic, generated at iteration "
            f"{prov.iteration[i]} by rule {prov.rule_index[i]} "
            f"({frs[int(prov.rule_index[i])].name})."
        )

    # --- Part 2: find the inflection point (paper §6) --------------------
    train, test = train_test_split(data, test_fraction=0.3, random_state=0)
    trace = trace_inflection(
        train, test, algorithm, frs, eta=60, max_iterations=10, random_state=0
    )
    print("\nAugmentation sweep (MRA-only acceptance, past the useful range):")
    print(format_inflection(trace))
    if trace.inflection_n_added is not None:
        print(
            f"\n-> past ~{trace.inflection_n_added} synthetic instances the "
            "outside-coverage cost outweighs the MRA gain (paper §6's "
            "data-difficulty effect)."
        )


if __name__ == "__main__":
    main()
