"""Multiple experts, conflicting feedback, and probabilistic rules.

Two claims adjusters provide overlapping feedback rules with contradictory
labels (paper §3.1).  The edit session accumulates rules incrementally —
each expert adds theirs with a separate ``with_rules`` call — and resolves
the conflict at run time with the mixture strategy, producing a partly
probabilistic rule set.

Run:  python examples/multi_expert_rules.py
"""

import numpy as np

import repro
from repro import FeedbackRuleSet, evaluate_model, parse_rule
from repro.datasets import load_dataset
from repro.models import paper_algorithm


def main() -> None:
    data = load_dataset("contraceptive", random_state=3)
    schema, labels = data.X.schema, data.label_names
    print(f"Dataset: {data}\n")

    # Expert A: younger couples with children -> short-term methods.
    rule_a = parse_rule(
        "wife-age < 32 AND n-children >= 2 => short-term", schema, labels, name="expertA"
    )
    # Expert B: highly educated -> long-term (overlaps A, different label).
    rule_b = parse_rule(
        "wife-age < 36 AND wife-edu = 'high' => long-term", schema, labels, name="expertB"
    )

    frs = FeedbackRuleSet((rule_a, rule_b))
    conflicts = frs.find_conflicts(schema)
    print(f"Rule A: {rule_a}")
    print(f"Rule B: {rule_b}")
    print(f"Conflicting pairs: {conflicts}\n")

    # Resolution option 1: carve the intersection out of both rules.
    carved = frs.resolve_conflicts(schema, strategy="carve")
    print("After carve resolution:")
    for r in carved:
        print(f"  {r}")
    print(f"  conflict-free: {carved.is_conflict_free(schema)}\n")

    # Resolution option 2 (used below): a 50/50 mixture rule on the
    # intersection.  The session accepts each expert's rule separately and
    # applies the resolution when it runs.
    algorithm = paper_algorithm("LGBM")
    session = (
        repro.edit(data)
        .with_algorithm(algorithm)
        .with_rules(rule_a)  # expert A submits first...
        .with_rules(rule_b)  # ...expert B arrives later
        .resolve_conflicts("mixture")
        .configure(tau=15, q=0.5, eta=25, random_state=42)
    )
    mixed = session.build_state().frs
    print("After mixture resolution (note the probabilistic third rule):")
    for r in mixed:
        print(f"  {r}")
    print()

    before = evaluate_model(algorithm(data), data, mixed)
    result = session.run()
    after = evaluate_model(result.model, data, mixed)

    print(f"MRA before: {before.mra:.3f}   after: {after.mra:.3f}")
    print(f"F1 outside coverage before: {before.f1_outside:.3f}   "
          f"after: {after.f1_outside:.3f}")
    print(f"Per-rule agreement after edit: "
          + ", ".join(
              f"{r.name or i}={m:.2f}"
              for i, (r, m) in enumerate(zip(mixed, after.per_rule_mra))
              if not np.isnan(m)
          ))


if __name__ == "__main__":
    main()
