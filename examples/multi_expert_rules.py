"""Multiple experts streaming conflicting feedback into a live run.

Two claims adjusters no longer hand in their rules up front — they
stream them into a running edit session (paper §3.1) through
:class:`~repro.feedback.sources.ScriptedFeedbackSource` objects, one per
expert.  A :class:`~repro.feedback.aggregate.FeedbackAggregator` with a
quorum policy gates what lands: expert A's rule needs a second approval
before the engine sees it, and expert B's contradicting rule triggers a
live carve-out rebuild mid-run.  The final rule timeline is read back
from ``result.ruleset_log``.

Run:  python examples/multi_expert_rules.py
"""

import numpy as np

import repro
from repro import evaluate_model, parse_rule
from repro.datasets import load_dataset
from repro.feedback import RuleProposal, RuleVerdict, ScriptedFeedbackSource
from repro.models import paper_algorithm


def main() -> None:
    data = load_dataset("contraceptive", random_state=3)
    schema, labels = data.X.schema, data.label_names
    print(f"Dataset: {data}\n")

    # Expert A: younger couples with children -> short-term methods.
    rule_a = parse_rule(
        "wife-age < 32 AND n-children >= 2 => short-term", schema, labels, name="expertA"
    )
    # Expert B: highly educated -> long-term (overlaps A, different label).
    rule_b = parse_rule(
        "wife-age < 36 AND wife-edu = 'high' => long-term", schema, labels, name="expertB"
    )
    proposal_a = RuleProposal(rule_a, source="expertA")
    proposal_b = RuleProposal(rule_b, source="expertB")

    # Each expert streams through their own source.  Expert A proposes at
    # iteration 2; under a quorum-of-2 policy nothing happens until the
    # reviewer seconds it at iteration 4.  Expert B's conflicting rule
    # arrives at iteration 8 and, once seconded at 10, forces a carve-out
    # rebuild of the live rule set.
    expert_a = ScriptedFeedbackSource({2: proposal_a}, name="expertA")
    expert_b = ScriptedFeedbackSource({8: proposal_b}, name="expertB")
    reviewer = ScriptedFeedbackSource(
        {
            4: RuleVerdict(proposal_a.proposal_id, approve=True, source="reviewer"),
            10: RuleVerdict(proposal_b.proposal_id, approve=True, source="reviewer"),
        },
        name="reviewer",
    )

    algorithm = paper_algorithm("LGBM")
    session = (
        repro.edit(data)
        .with_algorithm(algorithm)
        .with_feedback(
            expert_a, reviewer, expert_b,
            policy="quorum", quorum=2, resolve="carve",
        )
        .configure(tau=15, q=0.5, eta=25, random_state=42)
    )

    result = session.run()

    print("Rule timeline (from result.ruleset_log):")
    for delta in result.ruleset_log:
        names = ", ".join(r.name or "?" for r in delta.rules_added)
        print(
            f"  iteration {delta.iteration:>2}: {delta.kind:<7} "
            f"{names}  ({delta.provenance})"
        )
    print("\nFinal rule set (note the carved exceptions):")
    for r in result.frs:
        print(f"  {r}")
    print(f"  conflict-free: {result.frs.is_conflict_free(schema)}\n")

    before = evaluate_model(algorithm(data), data, result.frs)
    after = evaluate_model(result.model, data, result.frs)
    print(f"MRA before: {before.mra:.3f}   after: {after.mra:.3f}")
    print(f"F1 outside coverage before: {before.f1_outside:.3f}   "
          f"after: {after.f1_outside:.3f}")
    print(f"Per-rule agreement after edit: "
          + ", ".join(
              f"{r.name or i}={m:.2f}"
              for i, (r, m) in enumerate(zip(result.frs, after.per_rule_mra))
              if not np.isnan(m)
          ))


if __name__ == "__main__":
    main()
