"""Quickstart: edit a model with a single feedback rule.

Scenario: a loan-approval model trained on Adult-like census data.  A new
policy says young bachelor-degree applicants should be approved (>50K
class).  We express that as a plain-text rule, run an edit session, and
compare the model before and after the edit.

Run:  python examples/quickstart.py
"""

import repro
from repro import evaluate_model
from repro.datasets import load_dataset
from repro.models import paper_algorithm


def main() -> None:
    # 1. Data and the black-box training algorithm (the paper's LightGBM
    #    configuration; "RF" and "LR" work identically).
    data = load_dataset("adult", n=1500, random_state=0)
    algorithm = paper_algorithm("LGBM")

    # 2. The edit session: feedback as a plain-text rule, parsed against
    #    the dataset's schema.  Nothing runs until .run().
    session = (
        repro.edit(data)
        .with_rules("age < 29 AND education = 'bachelors' => >50K")
        .with_algorithm(algorithm)
        .configure(tau=20, q=0.5, eta=40, random_state=42)
    )
    state = session.build_state()
    rule = state.frs[0]
    print(f"Feedback rule: {rule}")
    print(f"Rule coverage in data: {rule.coverage_count(data.X)} / {data.n} rows")

    # 3. Baseline: the model trained on the unmodified data.
    before = evaluate_model(algorithm(data), data, state.frs)
    print(f"\nBefore editing:  MRA={before.mra:.3f}  F1(outside)={before.f1_outside:.3f}")

    # 4. Run the edit: relabel disagreeing instances, then oversample with
    #    rule-constrained SMOTE until the model follows the rule.
    result = session.run()
    after = evaluate_model(result.model, data, state.frs)

    print(f"After  editing:  MRA={after.mra:.3f}  F1(outside)={after.f1_outside:.3f}")
    print(
        f"\nThe session ran {result.iterations} iterations, accepted "
        f"{result.accepted_iterations} batches, added {result.n_added} synthetic "
        f"instances ({100 * result.added_fraction:.1f}% of the input data), "
        f"relabelled {result.n_relabelled} rows."
    )
    print("The edited model is a regular model object:")
    print(f"  predictions on 5 rows -> {result.model.predict(data.X.take(range(5)))}")


if __name__ == "__main__":
    main()
