"""Interpretable model comparison after an edit (paper §6, Nair et al.).

After FROTE edits a model, governance wants to know: did the edit change
*only* what the feedback intended?  This example diffs the before/after
models, attributes changes to the feedback rules, flags collateral
movement outside rule coverage, and learns a rule-based description of the
changed region.

Run:  python examples/what_changed.py
"""

import repro
from repro import FeedbackRuleSet, parse_rule
from repro.analysis import diff_models, explain_changes, format_diff
from repro.datasets import load_dataset
from repro.models import paper_algorithm


def main() -> None:
    data = load_dataset("car", random_state=5)
    schema, labels = data.X.schema, data.label_names
    algorithm = paper_algorithm("LGBM")

    frs = FeedbackRuleSet(
        (
            parse_rule(
                "safety = 'high' AND persons = 'more' => vgood",
                schema, labels, name="safety-upgrade",
            ),
        )
    )

    model_before = algorithm(data)
    result = (
        repro.edit(data)
        .with_rules(frs)
        .with_algorithm(algorithm)
        .configure(tau=12, q=0.5, eta=30, random_state=42)
        .run()
    )
    model_after = result.model

    diff = diff_models(model_before, model_after, data, frs)
    change_rules = explain_changes(data, diff)
    print(format_diff(diff, labels, frs=frs, change_rules=change_rules))

    covered, changed, agreeing = diff.rule_attribution[0]
    print(
        f"\nInterpretation: of the {covered} instances the feedback covers, "
        f"{changed} changed prediction and {agreeing} now agree with the rule; "
        f"{diff.outside_changed} instances moved outside any rule coverage "
        "(collateral drift to review)."
    )


if __name__ == "__main__":
    main()
