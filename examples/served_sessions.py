"""Served sessions: concurrent tenants, priorities, events, cancellation.

Scenario: three teams submit model edits to one shared edit service at
the same time.  Compliance has a hard deadline (high priority), product
is routine (normal), and research is exploratory (low priority — and
gets cancelled partway through when the exploration is called off).
The service interleaves all three fairly under one memory budget while
each team streams its own progress events.

Run:  python examples/served_sessions.py
"""

import asyncio

import repro
from repro.datasets import load_dataset
from repro.serve import EditService, SessionCancelled


def make_session(rule: str, seed: int):
    """One tenant's edit spec — exactly what EditSession.run() would use."""
    data = load_dataset("adult", n=800, random_state=seed)
    return (
        repro.edit(data)
        .with_rules(rule)
        .with_algorithm("LR")
        .configure(tau=12, q=0.5, eta=30, random_state=seed)
    )


TENANTS = [
    # (name, rule, priority)
    ("compliance", "age < 29 AND education = 'bachelors' => >50K", 3.0),
    ("product", "hours-per-week > 55 => >50K", 1.0),
    ("research", "education = 'doctorate' => >50K", 0.5),
]


async def stream_events(handle, cancel_after_iterations: int | None = None):
    """Print a tenant's progress; optionally call off its run mid-flight."""
    async for event in handle.events():
        print(f"  [{handle.name:<10}] {event.kind:<12} iter={event.iteration}")
        if (
            cancel_after_iterations is not None
            and event.iteration >= cancel_after_iterations
        ):
            print(f"  [{handle.name:<10}] -- exploration called off --")
            handle.cancel(reason="exploration called off")


async def main() -> None:
    # One service for everyone: weighted-priority scheduling (compliance
    # goes first, but fairness aging keeps research from starving) and a
    # shared resident budget carved per session.
    async with EditService(
        policy="weighted-priority",
        memory_budget_mb=256.0,
        default_session_mb=64.0,
    ) as service:
        handles = [
            service.submit(make_session(rule, seed=7 + i), name=name, priority=prio)
            for i, (name, rule, prio) in enumerate(TENANTS)
        ]

        # Stream everyone's events; cancel research after 3 iterations.
        watchers = [
            asyncio.ensure_future(
                stream_events(
                    handle,
                    cancel_after_iterations=3 if handle.name == "research" else None,
                )
            )
            for handle in handles
        ]
        outcomes = await asyncio.gather(
            *(handle.run_to_completion() for handle in handles),
            return_exceptions=True,
        )
        await asyncio.gather(*watchers)

        print("\nOutcomes:")
        for handle, outcome in zip(handles, outcomes):
            if isinstance(outcome, SessionCancelled):
                print(f"  {handle.name:<10} cancelled ({outcome.reason})")
            elif isinstance(outcome, BaseException):
                print(f"  {handle.name:<10} failed: {outcome!r}")
            else:
                print(
                    f"  {handle.name:<10} done: +{outcome.n_added} rows, "
                    f"MRA {outcome.initial_evaluation.mra:.3f} -> "
                    f"{outcome.final_evaluation.mra:.3f}"
                )

        stats = service.stats()
        print(
            f"\nService: {stats['n_completed']} completed, "
            f"{stats['n_cancelled']} cancelled; "
            f"step latency p50={stats['p50_step_ms']:.1f} ms "
            f"p99={stats['p99_step_ms']:.1f} ms; "
            f"peak pool {stats['peak_reserved_mb']:.0f}/"
            f"{stats['pool_mb']:.0f} MiB"
        )


if __name__ == "__main__":
    asyncio.run(main())
