"""The paper's motivating scenario: a policy change with no supporting data.

A lender lowers the age threshold for approvals, but the historical
training data reflects the *old* policy — the new rule has zero coverage in
the training set (tcf = 0, paper Fig. 2's hardest case).  FROTE relaxes the
rule to find similar instances, synthesizes new ones that satisfy the rule,
and retrains until the decision boundary moves.

Run:  python examples/loan_policy_update.py
"""

import repro
from repro import FeedbackRuleSet, evaluate_model, parse_rule
from repro.data import coverage_aware_split
from repro.datasets import load_dataset
from repro.models import paper_algorithm


def main() -> None:
    data = load_dataset("adult", n=2000, random_state=7)
    algorithm = paper_algorithm("LR")  # linear boundaries are hardest to move

    # New policy: approve young applicants who work long hours.
    rule = parse_rule(
        "age < 27 AND hours-per-week > 45 => >50K",
        data.X.schema,
        data.label_names,
        name="policy-2026-04",
    )
    frs = FeedbackRuleSet((rule,))

    # Simulate "the policy is new": remove ALL rule-covered rows from the
    # training partition (tcf = 0); they form the future test population.
    split = coverage_aware_split(
        data, frs.coverage_mask(data.X), tcf=0.0, random_state=7
    )
    print(f"Training rows: {split.train.n} (0 covered by the new policy)")
    print(f"Test rows:     {split.test.n} ({int(split.test_coverage_mask.sum())} covered)")

    initial_model = algorithm(split.train)
    before = evaluate_model(initial_model, split.test, frs)

    # mod_strategy="none": there is nothing to relabel (no coverage), so
    # augmentation must do all the work via rule relaxation.  The session's
    # track_metric scores every accepted model on the held-out test set and
    # records it in the iteration history as external_score.
    trace: list[float] = [before.j_weighted()]

    def held_out_j(model) -> float:
        j = evaluate_model(model, split.test, frs).j_weighted()
        trace.append(j)
        return j

    result = (
        repro.edit(split.train)
        .with_rules(frs)
        .with_algorithm(algorithm)
        .configure(tau=30, q=0.5, eta=50, mod_strategy="none", random_state=42)
        .track_metric(held_out_j)
        .run()
    )
    after = evaluate_model(result.model, split.test, frs)

    print(f"\nHeld-out test, before: J={before.j_weighted():.3f} "
          f"(MRA={before.mra:.3f}, F1={before.f1_outside:.3f})")
    print(f"Held-out test, after:  J={after.j_weighted():.3f} "
          f"(MRA={after.mra:.3f}, F1={after.f1_outside:.3f})")
    print(f"Synthetic instances added: {result.n_added}")

    print("\nAugmentation progress (held-out J after each accepted batch):")
    steps = ", ".join(f"{v:.3f}" for v in trace)
    print(f"  {steps}")

    print("\nWhere did the boundary move? Prediction rate for the policy region:")
    cov_test = frs.coverage_mask(split.test.X)
    for label, model in (("before", initial_model), ("after", result.model)):
        pred = model.predict(split.test.X.loc_mask(cov_test))
        print(f"  {label:6s}: {100 * (pred == 1).mean():.1f}% approved")


if __name__ == "__main__":
    main()
