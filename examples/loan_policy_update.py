"""The paper's motivating scenario, extended to a live feature-space change.

A lender lowers the age threshold for approvals, but the historical
training data reflects the *old* policy — the new rule has zero coverage in
the training set (tcf = 0, paper Fig. 2's hardest case).  FROTE relaxes the
rule to find similar instances, synthesizes new ones that satisfy the rule,
and retrains until the decision boundary moves.

Mid-run, the production schema evolves under the session — the part a
frozen-schema editor cannot survive:

* iteration 3 schedules a second policy rule referencing ``seniority``, a
  column that **does not exist yet** — it parks instead of failing the run;
* iteration 4 renames ``hours-per-week`` to ``weekly-hours`` (a pure
  rename: predicates migrate in lockstep and the fitted model survives
  without a refit);
* iteration 6 lands ``seniority`` with a backfill value, releasing the
  parked rule at the same boundary.

The whole run is journaled; the journal's schema timeline and a
fast-forward re-run show the migrations are part of the replayable record.

Run:  python examples/loan_policy_update.py
"""

import tempfile

import repro
from repro import FeedbackRuleSet, SchemaDelta, evaluate_model, parse_rule
from repro.data import coverage_aware_split
from repro.datasets import load_dataset
from repro.journal import SessionReplay
from repro.models import paper_algorithm


def build_session(train, frs, algorithm, journal_dir):
    return (
        repro.edit(train)
        .with_rules(frs)
        .with_algorithm(algorithm)
        .configure(tau=12, q=0.5, eta=50, mod_strategy="none", random_state=42)
        # Policy 2026-05 references `seniority` before the column exists:
        # the rule text defers and parks until the migration lands.
        .with_scheduled_rules(3, "seniority < 2 AND age < 25 => >50K")
        # Ops renames a column mid-run; rules and the fitted model migrate.
        .with_schema_migration(
            4, SchemaDelta.rename_column("hours-per-week", "weekly-hours")
        )
        # The new feature lands (existing rows backfilled at 1 year).
        .with_schema_migration(
            6, SchemaDelta.add_column("seniority", fill=1.0)
        )
        .journaled(journal_dir, name="policy-update")
    )


def main() -> None:
    data = load_dataset("adult", n=2000, random_state=7)
    algorithm = paper_algorithm("LR")  # linear boundaries are hardest to move

    # New policy: approve young applicants who work long hours.
    rule = parse_rule(
        "age < 27 AND hours-per-week > 45 => >50K",
        data.X.schema,
        data.label_names,
        name="policy-2026-04",
    )
    frs = FeedbackRuleSet((rule,))

    # Simulate "the policy is new": remove ALL rule-covered rows from the
    # training partition (tcf = 0); they form the future test population.
    split = coverage_aware_split(
        data, frs.coverage_mask(data.X), tcf=0.0, random_state=7
    )
    print(f"Training rows: {split.train.n} (0 covered by the new policy)")
    print(f"Test rows:     {split.test.n} ({int(split.test_coverage_mask.sum())} covered)")

    initial_model = algorithm(split.train)
    before = evaluate_model(initial_model, split.test, frs)

    with tempfile.TemporaryDirectory() as journal_dir:
        result = build_session(split.train, frs, algorithm, journal_dir).run()

        print("\nSchema timeline (from the run itself):")
        for record in result.schema_log:
            survived = "model survived" if not record.model_refit else "model refit"
            print(
                f"  iter {record.iteration}: {record.delta.describe():45s}"
                f" -> version {record.version} ({survived})"
            )
        assert [r.delta.op for r in result.schema_log] == [
            "rename_column", "add_column",
        ]
        assert "weekly-hours" in result.dataset.X.schema.names
        assert "seniority" in result.dataset.X.schema.names

        # The parked policy-2026-05 rule landed once `seniority` existed.
        landed = [
            d for d in result.ruleset_log
            if any("seniority" in r.clause.attributes for r in d.rules_added)
        ]
        assert landed and landed[0].iteration >= 6
        print(
            f"\nDeferred rule on 'seniority' (scheduled @3) landed at "
            f"iteration {landed[0].iteration}, after its column arrived."
        )

        # The journal replays the same timeline, and a re-run of the same
        # session fast-forwards through the migrations bit-identically.
        replay = SessionReplay.load(f"{journal_dir}/policy-update")
        timeline = replay.schema_timeline()
        assert [row["version"] for row in timeline] == [
            r.version for r in result.schema_log
        ]
        again = build_session(split.train, frs, algorithm, journal_dir).run()
        assert again.history == result.history
        assert [r.version for r in again.schema_log] == [
            r.version for r in result.schema_log
        ]
        print("Journal replay: schema timeline matches; fast-forward re-run "
              "is bit-identical.")

    # The held-out test set lives in the *old* feature space; replay the
    # same migrations over it to evaluate the final model like-for-like.
    migrated_test = split.test
    for record in result.schema_log:
        migrated_test = record.delta.apply_to_dataset(migrated_test)
    after = evaluate_model(result.model, migrated_test, result.frs)

    print(f"\nHeld-out test, before: J={before.j_weighted():.3f} "
          f"(MRA={before.mra:.3f}, F1={before.f1_outside:.3f})")
    print(f"Held-out test, after:  J={after.j_weighted():.3f} "
          f"(MRA={after.mra:.3f}, F1={after.f1_outside:.3f})")
    print(f"Synthetic instances added: {result.n_added}")

    print("\nWhere did the boundary move? Prediction rate for the "
          "original policy region:")
    cov_test = frs.coverage_mask(split.test.X)
    pred_before = initial_model.predict(split.test.X.loc_mask(cov_test))
    pred_after = result.model.predict(migrated_test.X.loc_mask(cov_test))
    print(f"  before: {100 * (pred_before == 1).mean():.1f}% approved")
    print(f"  after : {100 * (pred_after == 1).mean():.1f}% approved")


if __name__ == "__main__":
    main()
