"""Using the oversampling substrate standalone: SMOTE / Borderline-SMOTE.

FROTE's generator builds on SMOTE-NC; the classic imbalance-correction
versions are part of the public API and usable on their own, as shown here
on a heavily imbalanced slice of the Adult-like dataset.

Run:  python examples/imbalanced_learning.py
"""

import numpy as np

from repro.data import stratified_split
from repro.datasets import load_dataset
from repro.metrics import f1_score
from repro.models import paper_algorithm
from repro.sampling import make_sampler


def main() -> None:
    data = load_dataset("adult", n=2500, random_state=1)

    # Manufacture a strong imbalance: keep only 5% of the positive class.
    pos = np.flatnonzero(data.y == 1)
    neg = np.flatnonzero(data.y == 0)
    rng = np.random.default_rng(0)
    keep = np.concatenate([neg, rng.choice(pos, size=max(len(pos) // 10, 25), replace=False)])
    imbalanced = data.take(rng.permutation(keep))
    print(f"Imbalanced dataset: {imbalanced}")

    train, test = stratified_split(imbalanced, test_fraction=0.3, random_state=0)
    algorithm = paper_algorithm("LGBM")

    # Samplers are looked up in the repro.engine.SAMPLERS registry, so a
    # sampler you register with @register_sampler works here by name too.
    results = {}
    results["no resampling"] = train
    results["SMOTE-NC"] = make_sampler("smote", k=5, random_state=0).fit_resample(train)
    results["Borderline-SMOTE"] = make_sampler(
        "borderline", k=5, random_state=0
    ).fit_resample(train)

    print(f"\n{'method':20s} {'train size':>10s} {'minority F1 (test)':>20s}")
    for name, resampled in results.items():
        model = algorithm(resampled)
        f1 = f1_score(test.y, model.predict(test.X), average="binary", n_classes=2)
        print(f"{name:20s} {resampled.n:>10d} {f1:>20.3f}")

    print(
        "\nBoth oversamplers bring the classes to parity; Borderline-SMOTE "
        "concentrates synthesis near the decision boundary (Han et al., 2005)."
    )


if __name__ == "__main__":
    main()
