"""Paper Figure 2 (and supplement Figs. 4-8): benefit of augmentation.

Regenerates the initial / relabel / final box-plot series as a function of
the training coverage fraction, for each modification strategy.  Shape
checks: FROTE's final J̄ should (in median) not fall below the modified
model's, and the gain should be present at tcf = 0.
"""

import numpy as np
import pytest

from repro.experiments import format_fig2, run_fig2

from .conftest import once


def _medians(records, key):
    return float(np.median([r[key] for r in records])) if records else float("nan")


@pytest.mark.parametrize("model_name", ["LR", "RF"])
def test_fig2_car(benchmark, persist, model_name):
    records = once(
        benchmark,
        lambda: run_fig2(
            "car",
            model_name,
            tcf_values=(0.0, 0.1, 0.2),
            frs_sizes=(1, 3),
            n_runs=3,
            tau=10,
            random_state=42,
        ),
    )
    persist(f"fig2_car_{model_name}", format_fig2(records))
    assert records
    # Augmentation must help on top of relabelling (median over runs).
    assert _medians(records, "j_final") >= _medians(records, "j_mod") - 0.02


def test_fig2_adult_lgbm(benchmark, persist):
    records = once(
        benchmark,
        lambda: run_fig2(
            "adult",
            "LGBM",
            tcf_values=(0.0, 0.2),
            frs_sizes=(3,),
            n_runs=2,
            tau=8,
            n=1200,
            random_state=42,
        ),
    )
    persist("fig2_adult_LGBM", format_fig2(records))
    assert _medians(records, "j_final") >= _medians(records, "j_initial") - 0.02


@pytest.mark.parametrize("mod", ["none", "drop"])
def test_fig2_mod_strategy_variants(benchmark, persist, mod):
    """Supplement Figures 5-8: the none and drop input-dataset choices."""
    records = once(
        benchmark,
        lambda: run_fig2(
            "car",
            "LR",
            tcf_values=(0.1, 0.2),
            frs_sizes=(3,),
            n_runs=3,
            tau=10,
            mod_strategy=mod,
            random_state=42,
        ),
    )
    persist(f"fig2_car_LR_{mod}", format_fig2(records, mod_label=mod))
    assert records
    assert _medians(records, "j_final") >= _medians(records, "j_initial") - 0.05


def test_fig2_tcf_zero_needs_augmentation_most(benchmark, persist):
    """The paper's key trend: improvement over relabel is largest at low tcf
    (relabelling nothing can't help when the rule has no coverage)."""
    records = once(
        benchmark,
        lambda: run_fig2(
            "car",
            "LR",
            tcf_values=(0.0, 0.4),
            frs_sizes=(3,),
            n_runs=4,
            tau=10,
            random_state=7,
        ),
    )
    persist("fig2_tcf_trend", format_fig2(records))
    lo = [r["final_improvement"] for r in records if r["tcf"] == 0.0]
    hi = [r["final_improvement"] for r in records if r["tcf"] == 0.4]
    # Median augmentation gain at tcf=0 should be at least that at tcf=0.4
    # (allowing noise slack at bench scale).
    assert np.median(lo) >= np.median(hi) - 0.05
