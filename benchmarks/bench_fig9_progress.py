"""Paper Figure 9: augmentation progress on the held-out test set.

Traces J̄ as a function of the number of synthetic instances added, per
training coverage fraction.  Shape checks: the trace is recorded only at
accepted iterations, and the final point does not fall below the start for
the low-tcf series (where augmentation matters most).
"""

import numpy as np

from repro.experiments import format_fig9, run_fig9

from .conftest import once


def test_fig9_adult(benchmark, persist):
    records = once(
        benchmark,
        lambda: run_fig9(
            "adult",
            "LR",
            tcf_values=(0.0, 0.2),
            frs_size=3,
            n_runs=2,
            tau=12,
            n=1200,
            random_state=42,
        ),
    )
    persist("fig9_adult_LR", format_fig9(records))
    assert records
    for r in records:
        assert len(r["n_added"]) == len(r["j_test"])
        # Instances added is non-decreasing along the trace.
        assert all(b >= a for a, b in zip(r["n_added"], r["n_added"][1:]))


def test_fig9_rf_needs_fewer_instances_than_lr(benchmark, persist):
    """Paper observation: non-linear models need less data to edit than
    linear ones.  Compare instances added for the same improvement level."""

    def run_both():
        out = {}
        for model in ("RF", "LR"):
            out[model] = run_fig9(
                "car",
                model,
                tcf_values=(0.1,),
                frs_size=3,
                n_runs=2,
                tau=10,
                random_state=42,
            )
        return out

    traces = once(benchmark, run_both)
    lines = []
    for model, records in traces.items():
        total = np.mean([r["n_added"][-1] for r in records]) if records else float("nan")
        gain = np.mean(
            [r["j_test"][-1] - r["j_test"][0] for r in records]
        ) if records else float("nan")
        lines.append(f"{model}: instances added={total:.0f}, J gain={gain:.3f}")
    persist("fig9_rf_vs_lr", "\n".join(lines))
    assert traces["RF"] and traces["LR"]
