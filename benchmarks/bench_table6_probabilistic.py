"""Paper Table 6: probabilistic rules hedge against over-confident experts.

Protocol: a single feedback rule that is *wrong* (the test distribution is
unchanged), tcf = 0, LR.  The paper finds that p < 1 (a less confident
rule) yields better within-coverage agreement with the true labels than
p = 1.  Shape check: the best Δmra over p in {0.4, 0.6, 0.8} is at least
the p = 1.0 Δmra (with noise slack).
"""

import numpy as np
import pytest

from repro.experiments import format_table6, run_table6

from .conftest import once


@pytest.mark.parametrize("dataset", ["breast_cancer", "mushroom"])
def test_table6_probabilistic_rules(benchmark, persist, dataset):
    records = once(
        benchmark,
        lambda: run_table6(
            dataset,
            probabilities=(0.4, 0.6, 0.8, 1.0),
            n_runs=3,
            tau=8,
            random_state=42,
        ),
    )
    persist(f"table6_{dataset}", format_table6(records))
    assert records
    by_p = {}
    for r in records:
        by_p.setdefault(r["p"], []).append(r["delta_mra"])
    means = {p: np.mean(v) for p, v in by_p.items()}
    if 1.0 in means and len(means) > 1:
        best_hedged = max(v for p, v in means.items() if p < 1.0)
        assert best_hedged >= means[1.0] - 0.1, (
            f"hedged rules should not lose to full confidence: {means}"
        )
