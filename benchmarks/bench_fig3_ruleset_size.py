"""Paper Figure 3 (and Figure 10): effect of feedback rule set size.

The paper shows FROTE's improvement persists up to |F| = 20 rules.  At
bench scale we sweep smaller sizes; the shape check is that the final J̄
stays at or above the relabel-only J̄ for every size.
"""

import numpy as np
import pytest

from repro.experiments import format_fig3, run_fig3

from .conftest import once


def test_fig3_breast_cancer(benchmark, persist):
    """The main-paper figure uses Breast Cancer at tcf = 0.2."""
    records = once(
        benchmark,
        lambda: run_fig3(
            "breast_cancer",
            "LR",
            frs_sizes=(3, 5, 8),
            tcf=0.2,
            n_runs=3,
            tau=8,
            random_state=42,
        ),
    )
    persist("fig3_breast_cancer_LR", format_fig3(records))
    assert records
    for size in {r["frs_size"] for r in records}:
        size_recs = [r for r in records if r["frs_size"] == size]
        med_final = np.median([r["j_final"] for r in size_recs])
        med_mod = np.median([r["j_mod"] for r in size_recs])
        assert med_final >= med_mod - 0.03, f"|F|={size}"


@pytest.mark.parametrize("dataset", ["car", "nursery"])
def test_fig10_additional_datasets(benchmark, persist, dataset):
    """Supplement Figure 10 datasets (scaled)."""
    records = once(
        benchmark,
        lambda: run_fig3(
            dataset,
            "LR",
            frs_sizes=(5, 8),
            tcf=0.2,
            n_runs=2,
            tau=8,
            n=1200,
            random_state=42,
        ),
    )
    persist(f"fig10_{dataset}_LR", format_fig3(records))
    # Large |F| may admit no conflict-free draw (the paper reports this
    # too); the bench only requires the driver to run and report.
    assert isinstance(records, list)
