"""Paper-reproduction benchmark suite (see README.md in this directory).

This package marker lets pytest import the ``bench_*`` modules with their
package-qualified names, which their ``from .conftest import once``
imports require::

    PYTHONPATH=src python -m pytest benchmarks -o python_files='bench_*.py'
"""
