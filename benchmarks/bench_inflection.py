"""Paper §6: the augmentation inflection point, measured.

Sweeps augmentation with MRA-only acceptance and records the held-out
decomposition.  Shape checks: MRA is (weakly) pushed up by the sweep, and
when an inflection is found it coincides with an outside-coverage F1 drop.
"""

import numpy as np

from repro.core import format_inflection, trace_inflection
from repro.data import coverage_aware_split
from repro.experiments import build_context, prepare_run

from .conftest import once


def test_inflection_sweep(benchmark, persist):
    ctx = build_context("car", "LR", random_state=42)
    rng = np.random.default_rng(0)
    prepared = prepare_run(ctx, frs_size=3, tcf=0.2, rng=rng)
    assert prepared is not None

    trace = once(
        benchmark,
        lambda: trace_inflection(
            prepared.train,
            prepared.test,
            ctx.algorithm,
            prepared.frs,
            eta=40,
            max_iterations=12,
            random_state=0,
        ),
    )
    persist("inflection_car_LR", format_inflection(trace))
    assert trace.mra[-1] >= trace.mra[0] - 0.05
    idx = trace.inflection_index
    if idx is not None:
        # At the inflection, F1 must not be improving (the cost side).
        assert trace.f1_outside[idx] <= trace.f1_outside[idx - 1] + 1e-9
