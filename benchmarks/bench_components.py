"""Component micro-benchmarks: the substrates' steady-state throughput.

These use pytest-benchmark's normal repeated timing (unlike the
table/figure benches, which run once) and guard against performance
regressions in the hot paths: neighbour search, synthetic generation,
rule-coverage evaluation, and model training.
"""

import numpy as np
import pytest

from repro.core import evaluate_predictions
from repro.data import TabularEncoder
from repro.datasets import load_adult
from repro.models import (
    GradientBoostingClassifier,
    LogisticRegression,
    RandomForestClassifier,
)
from repro.neighbors import BallTree, BruteKNN, TableNeighborSpace
from repro.rules import FeedbackRule, FeedbackRuleSet, Predicate, clause
from repro.sampling import SMOTE, RuleConstrainedGenerator


@pytest.fixture(scope="module")
def adult():
    return load_adult(n=1500, random_state=0)


@pytest.fixture(scope="module")
def encoded(adult):
    return TabularEncoder().fit_transform(adult.X)


@pytest.fixture(scope="module")
def neighbor_space(adult):
    space = TableNeighborSpace().fit(adult.X)
    return space, space.encode(adult.X)


class TestNeighborThroughput:
    def test_balltree_build(self, benchmark, neighbor_space):
        space, E = neighbor_space
        benchmark(lambda: BallTree(space.metric_).fit(E))

    def test_balltree_query(self, benchmark, neighbor_space):
        space, E = neighbor_space
        tree = BallTree(space.metric_).fit(E)
        benchmark(lambda: tree.kneighbors(E[:100], 5, exclude_self=True))

    def test_brute_query(self, benchmark, neighbor_space):
        space, E = neighbor_space
        knn = BruteKNN(space.metric_).fit(E)
        benchmark(lambda: knn.kneighbors(E[:100], 5, exclude_self=True))


class TestGenerationThroughput:
    def test_smote_generation(self, benchmark, adult):
        smote = SMOTE(k=5, random_state=0)
        out = benchmark(lambda: smote.generate(adult.X, 200))
        assert out.n_rows == 200

    def test_rule_constrained_generation(self, benchmark, adult):
        rule = FeedbackRule.deterministic(
            clause(
                Predicate("age", "<", 40.0),
                Predicate("hours-per-week", ">", 35.0),
            ),
            1,
            2,
        )
        gen = RuleConstrainedGenerator(rule, adult.X, k=5)
        pool = adult.X.loc_mask(rule.coverage_mask(adult.X))
        rng = np.random.default_rng(0)
        positions = np.arange(min(100, pool.n_rows))
        batch = benchmark(lambda: gen.generate(pool, positions, rng))
        assert rule.coverage_mask(batch.table).all()


class TestModelTraining:
    def test_logistic_fit(self, benchmark, encoded, adult):
        benchmark(lambda: LogisticRegression(max_iter=500).fit(encoded, adult.y))

    def test_forest_fit(self, benchmark, encoded, adult):
        benchmark(
            lambda: RandomForestClassifier(
                n_estimators=20, max_depth=3, random_state=0
            ).fit(encoded, adult.y)
        )

    def test_gbdt_fit(self, benchmark, encoded, adult):
        benchmark(
            lambda: GradientBoostingClassifier(n_estimators=20).fit(encoded, adult.y)
        )


class TestObjectiveEvaluation:
    def test_evaluate_predictions(self, benchmark, adult):
        frs = FeedbackRuleSet(
            (
                FeedbackRule.deterministic(
                    clause(Predicate("age", "<", 30.0)), 1, 2
                ),
                FeedbackRule.deterministic(
                    clause(Predicate("hours-per-week", ">", 50.0)), 0, 2
                ),
            )
        )
        pred = adult.y.copy()
        ev = benchmark(lambda: evaluate_predictions(pred, adult, frs))
        assert 0.0 <= ev.j_weighted() <= 1.0
