"""Paper Tables 3/4/5: random vs IP base-instance selection.

Shape checks from the paper: neither strategy dominates on ΔJ̄ ("no clear
winner"), both improve MRA, and the outside-coverage F1 change stays small.
"""

import numpy as np
import pytest

from repro.experiments import format_table3, run_table3

from .conftest import once


@pytest.mark.parametrize("dataset", ["car", "contraceptive"])
def test_table3_selection_strategies(benchmark, persist, dataset):
    records = once(
        benchmark,
        lambda: run_table3(
            dataset,
            "LR",
            n_runs=4,
            frs_sizes=(1, 3),
            tcf=0.2,
            tau=8,
            random_state=42,
        ),
    )
    persist(f"table3_{dataset}_LR", format_table3(records))
    assert records
    rand_dj = np.mean([r["random_delta_j"] for r in records])
    ip_dj = np.mean([r["ip_delta_j"] for r in records])
    # "No clear winner": the two strategies land in the same ballpark.
    assert abs(rand_dj - ip_dj) < 0.25
    # Both strategies must not crater outside-coverage F1 (Table 5 shape).
    for key in ("random_delta_f1", "ip_delta_f1"):
        assert np.mean([r[key] for r in records]) > -0.2


def test_table4_ip_adds_fewer_instances(benchmark, persist):
    """Table 4 trend: IP generally adds fewer instances than random."""
    records = once(
        benchmark,
        lambda: run_table3(
            "car",
            "LR",
            n_runs=5,
            frs_sizes=(3,),
            tcf=0.1,
            tau=10,
            random_state=7,
        ),
    )
    lines = [
        f"random dIns/|D| = {np.mean([r['random_added_fraction'] for r in records]):.4f}",
        f"IP     dIns/|D| = {np.mean([r['ip_added_fraction'] for r in records]):.4f}",
    ]
    persist("table4_added_instances", "\n".join(lines))
    assert records
