"""Shared helpers for the benchmark suite.

Most benches regenerate one of the paper's tables or figures at reduced
scale, print the ASCII rendering, and persist it under
``benchmarks/results/`` so the output survives pytest's capture; the
``perf/`` benches additionally write ``BENCH_*.json`` at the repo root
(see README.md in this directory for the full catalogue).
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture
def persist():
    """Write a rendered table/figure to benchmarks/results/<name>.txt."""

    def _persist(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        # Also echo to stdout (visible with -s / in captured output).
        print(f"\n{text}\n", file=sys.stderr)

    return _persist


def once(benchmark, fn):
    """Run an experiment driver exactly once under the benchmark timer.

    The paper's experiments are minutes-long aggregates; repeating them for
    statistical timing would dominate the suite, so every table/figure bench
    uses a single round (component micro-benches use normal repetition).
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
