"""Paper Table 2 (and Tables 7/8): FROTE vs Overlay soft/hard constraints.

Shape checks from the paper:

* FROTE's ΔJ̄ is positive (it incorporates the feedback);
* Overlay-Hard pays an outside-coverage F1 penalty that FROTE avoids
  (ΔF FROTE >= ΔF Hard, in mean, with slack).
"""

import numpy as np
import pytest

from repro.experiments import format_table2, run_table2

from .conftest import once


@pytest.mark.parametrize("dataset", ["breast_cancer", "mushroom"])
def test_table2_binary_datasets(benchmark, persist, dataset):
    records = once(
        benchmark,
        lambda: run_table2(
            dataset, "LR", n_runs=4, frs_size=3, tau=10, random_state=42
        ),
    )
    text = "\n\n".join(
        format_table2(records, metric=m)
        for m in ("delta_j", "delta_mra", "delta_f1")
    )
    persist(f"table2_{dataset}_LR", text)
    assert records
    frote_dj = np.mean([r["frote"]["delta_j"] for r in records])
    assert frote_dj > -0.05, "FROTE should not hurt J"
    frote_df = np.mean([r["frote"]["delta_f1"] for r in records])
    hard_df = np.mean([r["overlay_hard"]["delta_f1"] for r in records])
    assert frote_df >= hard_df - 0.05, "FROTE should avoid Hard's F1 penalty"


def test_table7_adult(benchmark, persist):
    """Table 7: the Adult comparison."""
    records = once(
        benchmark,
        lambda: run_table2(
            "adult", "LGBM", n_runs=3, frs_size=3, tau=8, n=1200, random_state=42
        ),
    )
    persist("table7_adult_LGBM", format_table2(records))
    assert records
    frote_dmra = np.mean([r["frote"]["delta_mra"] for r in records])
    assert frote_dmra > 0.0, "FROTE must raise MRA on Adult"
