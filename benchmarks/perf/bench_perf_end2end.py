"""Perf harness wrapper: end-to-end edit-loop benchmarks.

Runs :func:`repro.perf.end2end.run_end2end_benchmarks` (quick
configuration), writes ``BENCH_end2end.json`` at the repository root, and
persists the ASCII rendering under ``benchmarks/results/``.

Standalone: ``repro-bench --quick`` (or
``python -m repro.experiments.cli bench --quick``) runs the same harness
without pytest.
"""

from __future__ import annotations

from pathlib import Path

from repro.perf.end2end import run_end2end_benchmarks
from repro.perf.harness import format_records, write_end2end_json

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_bench_perf_end2end(persist):
    records = run_end2end_benchmarks(quick=True, seed=42)
    path = write_end2end_json(records, out_dir=REPO_ROOT, quick=True, seed=42)
    text = format_records(records, f"End-to-end benchmarks (quick) -> {path}")
    persist("perf_end2end", text)
    assert all(r.iterations > 0 for r in records)
