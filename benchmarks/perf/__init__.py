"""Perf harness wrappers emitting ``BENCH_*.json`` (see ../README.md)."""
