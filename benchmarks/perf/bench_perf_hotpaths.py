"""Perf harness wrapper: seed-vs-current hot-path benchmarks.

Runs :func:`repro.perf.hotpaths.run_hotpath_benchmarks` (quick
configuration), writes ``BENCH_hotpaths.json`` at the repository root,
and persists the ASCII rendering under ``benchmarks/results/``.

Standalone: ``repro-bench --quick`` (or
``python -m repro.experiments.cli bench --quick``) runs the same harness
without pytest.
"""

from __future__ import annotations

from pathlib import Path

from repro.perf.harness import format_records, geomean, write_hotpaths_json
from repro.perf.hotpaths import run_hotpath_benchmarks

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_bench_perf_hotpaths(persist):
    records = run_hotpath_benchmarks(quick=True, seed=0)
    path = write_hotpaths_json(records, out_dir=REPO_ROOT, quick=True, seed=0)
    text = format_records(records, f"Hot-path benchmarks (quick) -> {path}")
    persist("perf_hotpaths", text)
    # The vectorization claim the README makes: row-loop removal buys at
    # least 3x on the synthetic dataset overall.
    synthetic = [r.speedup for r in records if r.dataset == "synthetic"]
    assert geomean(synthetic) >= 3.0
