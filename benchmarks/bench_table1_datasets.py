"""Paper Table 1: dataset properties, regenerated from the registry.

Benchmarks dataset generation throughput and prints the Table 1 rows as
produced by this library's synthetic generators.
"""

import pytest

from repro.datasets import DATASETS, load_dataset, table1_rows
from repro.experiments import format_table

from .conftest import once


def test_table1_properties(benchmark, persist):
    rows = once(benchmark, table1_rows)
    text = format_table(rows, title="Table 1 — dataset properties")
    persist("table1_datasets", text)
    assert len(rows) == 8


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_dataset_generation(benchmark, name):
    """Generation speed per dataset at its default experiment size."""
    ds = benchmark(load_dataset, name, random_state=0)
    info = DATASETS[name]
    assert ds.n_classes == info.n_labels
    assert len(ds.X.schema) == info.n_features
