"""Ablations over FROTE's design knobs (paper supplement sensitivity sweeps).

Not a paper table per se — the paper fixes k = 5, q = 0.5, τ = 200 and
per-dataset η — but these sweeps validate that the defaults sit in sane
regions and document sensitivity for downstream users.  The same sweeps
are runnable from the CLI: ``python -m repro.experiments ablation
--parameter k``.
"""

import numpy as np
import pytest

from repro.experiments import format_ablation, run_ablation

from .conftest import once

COMMON = dict(n_runs=2, frs_size=3, tcf=0.1, tau=8, random_state=42)


def test_ablation_k_neighbours(benchmark, persist):
    records = once(
        benchmark,
        lambda: run_ablation("car", "LR", parameter="k", values=(2, 5, 10), **COMMON),
    )
    persist("ablation_k", format_ablation(records))
    assert {r["value"] for r in records} <= {2, 5, 10}


def test_ablation_oversampling_fraction(benchmark, persist):
    records = once(
        benchmark,
        lambda: run_ablation(
            "car", "LR", parameter="q", values=(0.1, 0.5, 1.0), **COMMON
        ),
    )
    persist("ablation_q", format_ablation(records))
    # A larger augmentation budget can only allow more instances.
    by_q = {}
    for r in records:
        by_q.setdefault(r["value"], []).append(r["n_added"])
    qs = sorted(by_q)
    means = [np.mean(by_q[q]) for q in qs]
    assert means[0] <= means[-1] + 1e-9


def test_ablation_eta_batch_size(benchmark, persist):
    records = once(
        benchmark,
        lambda: run_ablation(
            "car", "LR", parameter="eta", values=(5, 20, 60), **COMMON
        ),
    )
    persist("ablation_eta", format_ablation(records))
    assert records


def test_ablation_mod_strategy(benchmark, persist):
    """The paper's relabel / drop / none comparison as an ablation."""
    records = once(
        benchmark,
        lambda: run_ablation(
            "car",
            "LR",
            parameter="mod_strategy",
            values=("none", "relabel", "drop"),
            **COMMON,
        ),
    )
    persist("ablation_mod_strategy", format_ablation(records))
    by_mod = {}
    for r in records:
        by_mod.setdefault(r["value"], []).append(r["delta_j"])
    # Relabel should be at least as strong as none (the paper's finding that
    # augmentation-on-top-of-relabel is the best default).
    if "relabel" in by_mod and "none" in by_mod:
        assert np.mean(by_mod["relabel"]) >= np.mean(by_mod["none"]) - 0.1
