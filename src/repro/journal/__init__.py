"""Durable run journals: append-only observability for every run mode.

``repro.journal`` persists what the event seams already emit —
:class:`~repro.engine.state.ProgressEvent` streams from edit sessions,
:class:`~repro.experiments.grid.ExperimentEvent` streams from grids, and
the serving layer's admission/quantum telemetry — as segmented,
hash-chained, strict-JSON journals that survive crashes and power three
consumers: a replay debugger (:class:`SessionReplay`), journal-based
crash-resume (:func:`run_journaled` / ``EditSession.journaled(...)``),
and the ``repro-journal`` status/tail/counters CLI.

Entry points::

    repro.edit(data)...journaled("runs/").run()     # library runs
    ExperimentRunner(journal_dir="runs/")           # grids
    EditService(journal_dir="runs/")                # served sessions
    repro-journal status runs/                      # afterwards
"""

from repro.journal.reader import JournalReader, ScanResult, Truncation
from repro.journal.records import Record
from repro.journal.replay import (
    JournalResumeError,
    ReplayIteration,
    SessionReplay,
    run_journaled,
)
from repro.journal.status import export_counters, format_status, journal_rows
from repro.journal.writer import JournalError, JournalWriter, SessionJournal

__all__ = [
    "JournalError",
    "JournalReader",
    "JournalResumeError",
    "JournalWriter",
    "Record",
    "ReplayIteration",
    "ScanResult",
    "SessionJournal",
    "SessionReplay",
    "Truncation",
    "export_counters",
    "format_status",
    "journal_rows",
    "run_journaled",
]
