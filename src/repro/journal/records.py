"""On-disk format of the run journal: segmented, chained, strict JSONL.

A journal is a *directory* of segment files (``segment-00000.jsonl``,
``segment-00001.jsonl``, ...).  Every line is one strict-JSON record::

    {"seq": 7, "prev": "a1b2...", "h": "c3d4...", "t": 1723.4,
     "kind": "iteration", "data": {...}}

with five integrity properties, checked by the reader and relied on by
replay and crash-resume:

* ``seq`` — a gapless sequence number across all segments, so a deleted
  record (or a whole missing segment) is a detectable *sequence gap*;
* ``prev`` — the hash of the previous record's exact line bytes (empty
  for the very first record), so reordering, rewriting, or truncating
  anywhere but the tail is a detectable *hash-chain break*;
* ``h`` — a checksum of this record's own canonical payload, so
  in-place corruption of a single record is attributable to exactly
  that record (without it, a chain break could only say "one of these
  two records is bad");
* strict JSON — non-finite floats travel as the repo-wide
  ``{"__float__": "nan" | "inf" | "-inf"}`` markers (reusing
  :func:`repro.experiments.persistence.to_jsonable`), and every dump
  passes ``allow_nan=False`` so nothing invalid can slip out;
* a ``header`` record opens every segment, carrying the format's
  ``schema_version`` plus writer metadata, so readers can refuse
  future formats loudly instead of misparsing them.

Hashes are truncated sha256 (16 hex chars): this is tamper-*evidence*
for operational corruption (torn writes, lost pages, fat-fingered
edits), not a cryptographic authenticity scheme.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.experiments.persistence import from_jsonable, to_jsonable

#: Format version written into every segment header.  Bump on any
#: incompatible change to the line layout; readers refuse newer versions.
SCHEMA_VERSION = 1

#: Segment file naming: fixed-width indices keep lexicographic order ==
#: numeric order, so ``sorted(glob)`` is the read order.
SEGMENT_PATTERN = re.compile(r"^segment-(\d{5})\.jsonl$")

#: Truncated-sha256 length (hex chars) for ``prev`` / ``h``.
HASH_LEN = 16

#: Record kinds with engine-session semantics (see ``writer.SessionJournal``).
KIND_HEADER = "header"
KIND_RUN_META = "run-meta"
KIND_RUN_RESUMED = "run-resumed"
KIND_RUN_FINISHED = "run-finished"
KIND_ITERATION = "iteration"
KIND_RULESET = "ruleset-delta"
KIND_SCHEMA = "schema-delta"

#: Required top-level fields of every record line.
_FIELDS = ("seq", "prev", "h", "t", "kind", "data")


def segment_name(index: int) -> str:
    """File name of segment ``index`` (``segment-00007.jsonl``)."""
    return f"segment-{index:05d}.jsonl"


def segment_index(path: Path) -> int | None:
    """Inverse of :func:`segment_name`; ``None`` for non-segment files."""
    match = SEGMENT_PATTERN.match(path.name)
    return int(match.group(1)) if match else None


def list_segments(path: Path) -> list[Path]:
    """Segment files of journal directory ``path``, in read order."""
    if not path.is_dir():
        return []
    segments = [p for p in path.iterdir() if segment_index(p) is not None]
    return sorted(segments, key=lambda p: segment_index(p))  # type: ignore[arg-type]


def line_hash(line: bytes) -> str:
    """Chain hash of one record's exact line bytes (no newline)."""
    return hashlib.sha256(line).hexdigest()[:HASH_LEN]


def payload_hash(seq: int, prev: str, kind: str, t: float, data: Any) -> str:
    """Self-checksum over a record's canonical payload.

    ``data`` must already be strict-jsonable (markers applied); the
    canonical form is a compact sorted-key dump so writer and verifier
    agree byte-for-byte regardless of dict insertion order.
    """
    canonical = json.dumps(
        [seq, prev, kind, t, data],
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:HASH_LEN]


def encode_line(seq: int, prev: str, kind: str, t: float, data: Any) -> bytes:
    """Serialize one record to its exact line bytes (no trailing newline)."""
    data_j = to_jsonable(data)
    record = {
        "seq": seq,
        "prev": prev,
        "h": payload_hash(seq, prev, kind, t, data_j),
        "t": t,
        "kind": kind,
        "data": data_j,
    }
    return json.dumps(record, separators=(",", ":"), allow_nan=False).encode("utf-8")


@dataclass(frozen=True)
class Record:
    """One verified journal record, markers decoded.

    Attributes
    ----------
    seq:
        Gapless sequence number across the whole journal.
    kind:
        Record kind (``header`` / ``run-meta`` / ``iteration`` / ...).
    t:
        Wall-clock write time (``time.time()``).
    data:
        The record payload with non-finite-float markers decoded back to
        ``nan`` / ``±inf``.
    raw_hash:
        Chain hash of this record's line bytes (what the *next* record's
        ``prev`` must equal).
    segment:
        Index of the segment file the record was read from.
    """

    seq: int
    kind: str
    t: float
    data: Any
    raw_hash: str
    segment: int
    #: The ``prev`` field as written — the chain hash this record claims
    #: for its predecessor (empty for the very first record).
    prev: str = ""


class MalformedLine(ValueError):
    """A line that fails structural or checksum verification."""


def decode_line(line: bytes, segment: int) -> Record:
    """Parse and self-verify one line; raises :class:`MalformedLine`.

    Chain and sequence verification (``prev`` / ``seq`` against the
    preceding record) is the reader's job — this function only checks
    what a single line can vouch for: JSON shape, field types, and the
    ``h`` self-checksum.
    """
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise MalformedLine(f"not valid JSON: {exc}") from None
    if not isinstance(payload, dict) or any(f not in payload for f in _FIELDS):
        raise MalformedLine("missing required record fields")
    seq, prev, h, t, kind = (
        payload["seq"], payload["prev"], payload["h"], payload["t"], payload["kind"]
    )
    if not isinstance(seq, int) or not isinstance(kind, str):
        raise MalformedLine("wrong field types")
    if payload_hash(seq, prev, kind, t, payload["data"]) != h:
        raise MalformedLine(f"checksum mismatch at seq {seq}")
    return Record(
        seq=seq,
        kind=kind,
        t=float(t),
        data=from_jsonable(payload["data"]),
        raw_hash=line_hash(line),
        segment=segment,
        prev=str(prev),
    )
