"""Reading journals back: verified iteration, tailing, corruption reports.

The reader's contract is the inverse of the writer's durability contract:
*whatever* bytes are on disk — a clean journal, one with a torn final
line from a crash mid-write, or one a disk/operator corrupted — scanning
**never raises**.  It returns every record up to the last verifiable one
plus a structured :class:`Truncation` describing what stopped it, so
consumers (replay, crash-resume, the status CLI) can make their own call:
resume from the last good sequence number, repair a torn tail, or refuse
a journal whose middle was tampered with.

The taxonomy, in detection order per line:

``torn-tail``
    The final line of the final segment is not valid JSON — the classic
    crash-during-append artifact.  *Repairable*: truncating the file at
    the recorded byte offset restores a clean journal (the writer does
    exactly this when reopening).
``corrupt-record`` / ``checksum-mismatch``
    A non-final line fails to parse, or parses but fails its own ``h``
    self-checksum — in-place damage.  Not repairable by truncation
    because everything after it is intact but unanchored.
``hash-chain-break``
    A record's ``prev`` does not match the previous line's hash.  The
    self-checksum already cleared both records individually, so one of
    them was *replaced* wholesale; the previous record is dropped from
    the verified set too (conservative: we cannot tell which of the two
    is the impostor).
``sequence-gap``
    Sequence numbers are not gapless (a missing segment, or lines
    removed with their successors left behind).
``schema-version``
    A segment header from a future format version.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.journal.records import (
    KIND_HEADER,
    SCHEMA_VERSION,
    MalformedLine,
    Record,
    decode_line,
    list_segments,
    segment_index,
)


@dataclass(frozen=True)
class Truncation:
    """Why a scan stopped before the physical end of the journal.

    ``last_good_seq`` is the sequence number of the last record that
    remains in the verified set (``-1`` when none survived);
    ``repairable`` marks the one case (a torn final line) where
    truncating the segment file at ``byte_offset`` restores a clean
    journal.
    """

    reason: str  # torn-tail | corrupt-record | checksum-mismatch |
    #              hash-chain-break | sequence-gap | schema-version
    detail: str
    segment: int
    last_good_seq: int
    repairable: bool = False
    #: Byte offset of the first damaged line within its segment file
    #: (meaningful for ``torn-tail`` repair; ``-1`` otherwise).
    byte_offset: int = -1


@dataclass(frozen=True)
class ScanResult:
    """Verified prefix of a journal plus what (if anything) cut it short."""

    records: list[Record]
    truncation: Truncation | None
    segments: list[Path]

    @property
    def ok(self) -> bool:
        return self.truncation is None

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else -1

    @property
    def last_hash(self) -> str:
        return self.records[-1].raw_hash if self.records else ""

    def of_kind(self, kind: str) -> list[Record]:
        return [r for r in self.records if r.kind == kind]

    @property
    def header(self) -> Record | None:
        """The first segment header (journal-level metadata lives there)."""
        for record in self.records:
            if record.kind == KIND_HEADER:
                return record
        return None


class JournalReader:
    """Verified read access to one journal directory."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    # ------------------------------------------------------------------ #
    def scan(self) -> ScanResult:
        """Read and verify every segment; never raises on bad bytes."""
        records: list[Record] = []
        segments = list_segments(self.path)

        def cut(
            reason: str, detail: str, segment: int, offset: int = -1,
            repairable: bool = False,
        ) -> ScanResult:
            return ScanResult(
                records,
                Truncation(
                    reason=reason,
                    detail=detail,
                    segment=segment,
                    last_good_seq=records[-1].seq if records else -1,
                    repairable=repairable,
                    byte_offset=offset,
                ),
                segments,
            )

        next_seq = 0
        for seg_pos, seg_path in enumerate(segments):
            seg_idx = segment_index(seg_path)
            assert seg_idx is not None
            data = seg_path.read_bytes()
            offset = 0
            for line in data.split(b"\n"):
                if line == b"":
                    offset += 1
                    continue
                # A chunk with no newline anywhere after its start is the
                # file's final, unterminated line.
                unterminated = b"\n" not in data[offset:]
                try:
                    record = decode_line(line, seg_idx)
                except MalformedLine as exc:
                    if unterminated and seg_pos == len(segments) - 1:
                        return cut(
                            "torn-tail", f"torn final line: {exc}", seg_idx,
                            offset, repairable=True,
                        )
                    reason = (
                        "checksum-mismatch"
                        if "checksum" in str(exc)
                        else "corrupt-record"
                    )
                    return cut(reason, str(exc), seg_idx, offset)
                if record.kind == KIND_HEADER:
                    version = record.data.get("schema_version")
                    if version != SCHEMA_VERSION:
                        return cut(
                            "schema-version",
                            f"segment {seg_idx} has schema_version "
                            f"{version!r}; this reader understands "
                            f"{SCHEMA_VERSION}",
                            seg_idx,
                        )
                if record.seq != next_seq:
                    return cut(
                        "sequence-gap",
                        f"expected seq {next_seq}, found {record.seq}",
                        seg_idx, offset,
                    )
                expected_prev = records[-1].raw_hash if records else ""
                if record.prev != expected_prev:
                    # Both lines pass their self-checksums yet don't
                    # chain: one of the pair was rewritten wholesale.
                    # Drop the earlier record too — it can't be vouched
                    # for (an empty verified set chains from "").
                    detail = f"record seq {record.seq} does not chain"
                    if records:
                        dropped = records.pop()
                        detail += f" to seq {dropped.seq}; both dropped"
                    return cut("hash-chain-break", detail, seg_idx, offset)
                records.append(record)
                next_seq = record.seq + 1
                offset += len(line) + 1
        return ScanResult(records, None, segments)

    # ------------------------------------------------------------------ #
    def iter_records(self) -> Iterator[Record]:
        """Iterate verified records (the scan's verified prefix)."""
        yield from self.scan().records

    def tail(self, n: int = 10) -> list[Record]:
        """The last ``n`` verified records."""
        records = self.scan().records
        return records[-n:] if n else []

    @property
    def exists(self) -> bool:
        return bool(list_segments(self.path))
