"""``repro-journal``: status, tail, replay, and counters over journals.

Subcommands
-----------
``repro-journal status <root>``
    One collapsed row per journal (per workload for grids): iteration
    counts, accept/reject split, rows added, best loss, and whether the
    journal is finished, in progress, or truncated (and why).
``repro-journal tail <journal> [-n N]``
    The last N verified records, one compact line each.
``repro-journal replay <journal> [--json]``
    Reconstruct a session's full per-iteration history from the journal
    alone — the post-hoc "why was this batch rejected" view.
``repro-journal counters <root>``
    Monotonic counters/gauges as JSON lines for dashboard scrapers.

``--strict`` (any subcommand) exits non-zero when a scanned journal is
truncated or corrupt, for CI gating.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.experiments.persistence import dump_json, to_jsonable
from repro.journal.reader import JournalReader
from repro.journal.replay import SessionReplay
from repro.journal.status import (
    discover_journals,
    export_counters,
    format_status,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-journal",
        description="Inspect append-only run journals (sessions, grids, serving).",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if any scanned journal is truncated or corrupt",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_status = sub.add_parser("status", help="collapsed per-journal table")
    p_status.add_argument("root", help="journal directory or tree of journals")

    p_tail = sub.add_parser("tail", help="last records of one journal")
    p_tail.add_argument("journal", help="one journal directory")
    p_tail.add_argument("-n", type=int, default=10, help="records to show")

    p_replay = sub.add_parser(
        "replay", help="reconstruct a session's history from its journal"
    )
    p_replay.add_argument("journal", help="one session journal directory")
    p_replay.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    p_counters = sub.add_parser("counters", help="counters as JSON lines")
    p_counters.add_argument("root", help="journal directory or tree of journals")
    return parser


def _truncation_failures(root: str) -> list[str]:
    failures = []
    for journal in discover_journals(root):
        scan = JournalReader(journal).scan()
        if scan.truncation is not None:
            t = scan.truncation
            failures.append(
                f"{journal}: {t.reason} in segment {t.segment} "
                f"({t.detail}); last good seq {t.last_good_seq}"
            )
    return failures


def _cmd_status(args) -> int:
    print(format_status(args.root))
    return _strict_exit(args, args.root)


def _cmd_tail(args) -> int:
    reader = JournalReader(args.journal)
    for record in reader.tail(args.n):
        print(
            f"seq={record.seq:<6d} segment={record.segment:<3d} "
            f"{record.kind:<14s} {dump_json(to_jsonable(record.data), indent=None)}"
        )
    scan = reader.scan()
    if scan.truncation is not None:
        t = scan.truncation
        print(
            f"!! truncated: {t.reason} in segment {t.segment} "
            f"({t.detail}); last good seq {t.last_good_seq}",
            file=sys.stderr,
        )
    return _strict_exit(args, args.journal)


def _cmd_replay(args) -> int:
    replay = SessionReplay.load(args.journal)
    summary = replay.summary()
    if args.json:
        payload = {
            "summary": summary,
            "meta": replay.meta,
            "schema_timeline": replay.schema_timeline(),
            "iterations": [
                {
                    "iteration": it.iteration,
                    "kind": it.kind,
                    "candidate_loss": it.candidate_loss,
                    "best_loss": it.best_loss,
                    "n_generated": it.n_generated,
                    "n_added_total": it.n_added_total,
                    "external_score": it.external_score,
                    "n_active": it.n_active,
                    "iteration_seconds": it.iteration_seconds,
                    "stage_seconds": it.stage_seconds,
                }
                for it in replay.iterations
            ],
        }
        print(dump_json(to_jsonable(payload)))
    else:
        from repro.experiments.report import format_table

        rows = [
            {
                "iter": it.iteration,
                "verdict": it.kind,
                "cand_loss": f"{it.candidate_loss:.4f}",
                "best_loss": f"{it.best_loss:.4f}",
                "generated": it.n_generated,
                "added_total": it.n_added_total,
                "seconds": (
                    f"{it.iteration_seconds:.3f}"
                    if it.iteration_seconds is not None
                    else ""
                ),
            }
            for it in replay.iterations
        ]
        title = (
            f"{args.journal}: {summary['iterations']} iterations "
            f"({summary['accepted']} accepted, {summary['rejected']} rejected, "
            f"{summary['empty']} empty), {summary['n_added']} rows added, "
            f"runs={summary['runs']} resumes={summary['resumes']}, "
            f"{'finished' if summary['finished'] else 'in progress'}"
        )
        print(format_table(rows, title=title))
        for row in replay.schema_timeline():
            refit = "refit" if row["model_refit"] else "no refit"
            print(
                f"schema @ iter {row['iteration']}: {row['op']} "
                f"{row['column']} -> version {row['version']} "
                f"({row['provenance']}, {refit})"
            )
        if summary["truncation"]:
            print(f"!! {summary['truncation']}", file=sys.stderr)
    return _strict_exit(args, args.journal)


def _cmd_counters(args) -> int:
    for entry in export_counters(args.root):
        print(dump_json(to_jsonable(entry), indent=None))
    return _strict_exit(args, args.root)


def _strict_exit(args, root) -> int:
    if not args.strict:
        return 0
    failures = _truncation_failures(str(root))
    for failure in failures:
        print(f"strict: {failure}", file=sys.stderr)
    return 1 if failures else 0


def run(args: argparse.Namespace) -> int:
    handlers = {
        "status": _cmd_status,
        "tail": _cmd_tail,
        "replay": _cmd_replay,
        "counters": _cmd_counters,
    }
    return handlers[args.command](args)


def main(argv: list[str] | None = None) -> int:
    return run(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
