"""Presenting journals: status tables, tailing, and counter export.

The consumer side of :mod:`repro.journal` (the ``RunJournal`` →
``TableModel`` presenter shape from linux-benchmark-lib): a journal tree
full of repeated per-event records collapses into one compact row per
session / grid workload / service, rendered through the same
:func:`repro.experiments.report.format_table` the experiment reports
use.  :func:`export_counters` flattens the same summaries into monotonic
counters and gauges (one JSON object per line) for dashboard scrapers.

Dispatch is by the ``journal_kind`` a writer stamped into its segment
headers: ``session`` (edit runs), ``grid`` (experiment runners), and
``service`` (the serving layer's admission/quantum telemetry).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.journal.reader import JournalReader, ScanResult
from repro.journal.records import list_segments
from repro.journal.replay import SessionReplay

#: Columns of the collapsed status table, in display order.
STATUS_COLUMNS = (
    "journal", "kind", "records", "iters", "accepted", "rejected",
    "added", "best_loss", "status",
)


def discover_journals(root: str | Path) -> list[Path]:
    """Journal directories at or under ``root`` (sorted, stable)."""
    root = Path(root)
    if not root.exists():
        return []
    found = []
    if list_segments(root):
        found.append(root)
    if root.is_dir():
        for child in sorted(p for p in root.rglob("*") if p.is_dir()):
            if list_segments(child):
                found.append(child)
    return found


def journal_kind(scan: ScanResult) -> str:
    """The writer-declared kind (``session``/``grid``/``service``)."""
    header = scan.header
    if header is None:
        return "unknown"
    return str(header.data.get("meta", {}).get("journal_kind", "unknown"))


def _status_of(scan: ScanResult, finished: bool) -> str:
    if scan.truncation is not None:
        return f"truncated:{scan.truncation.reason}"
    return "finished" if finished else "in-progress"


# ---------------------------------------------------------------------- #
# Per-kind summaries (one dict per journal).
# ---------------------------------------------------------------------- #
def _session_row(path: Path, rel: str, scan: ScanResult) -> dict[str, Any]:
    replay = SessionReplay(path, scan, _spans_of(scan))
    summary = replay.summary()
    best = summary["best_loss"]
    return {
        "journal": rel,
        "kind": "session",
        "records": len(scan.records),
        "iters": summary["iterations"],
        "accepted": summary["accepted"],
        "rejected": summary["rejected"] + summary["empty"],
        "added": summary["n_added"],
        "best_loss": f"{best:.4f}" if isinstance(best, float) else "",
        "status": _status_of(scan, summary["finished"]),
    }


def _spans_of(scan: ScanResult):
    from repro.journal.replay import _session_spans

    return _session_spans(scan.records)


def _grid_rows(path: Path, rel: str, scan: ScanResult) -> list[dict[str, Any]]:
    """Grid journals collapse by (dataset, model) workload."""
    workloads: dict[tuple[str, str], dict[str, int]] = {}
    finished = False
    for record in scan.records:
        if record.kind == "grid-finished":
            finished = True
        if record.kind not in {"run-completed", "run-cached", "run-skipped"}:
            continue
        data = record.data
        key = (str(data.get("dataset", "?")), str(data.get("model", "?")))
        counts = workloads.setdefault(
            key, {"completed": 0, "cached": 0, "skipped": 0}
        )
        counts[record.kind.removeprefix("run-")] += 1
    if not workloads:
        return [{
            "journal": rel,
            "kind": "grid",
            "records": len(scan.records),
            "iters": 0,
            "accepted": 0,
            "rejected": 0,
            "added": 0,
            "best_loss": "",
            "status": _status_of(scan, finished),
        }]
    rows = []
    for (dataset, model), counts in sorted(workloads.items()):
        rows.append({
            "journal": f"{rel}[{dataset}/{model}]",
            "kind": "grid",
            "records": len(scan.records),
            "iters": counts["completed"] + counts["cached"],
            "accepted": counts["completed"],
            "rejected": counts["skipped"],
            "added": counts["cached"],
            "best_loss": "",
            "status": _status_of(scan, finished),
        })
    return rows


def _service_row(path: Path, rel: str, scan: ScanResult) -> dict[str, Any]:
    submitted = sum(1 for r in scan.records if r.kind == "session-submitted")
    terminal = sum(1 for r in scan.records if r.kind == "session-terminal")
    steps = [
        r.data["seconds"]
        for r in scan.records
        if r.kind == "quantum" and r.data.get("kind") == "step"
    ]
    return {
        "journal": rel,
        "kind": "service",
        "records": len(scan.records),
        "iters": len(steps),
        "accepted": terminal,
        "rejected": sum(
            1 for r in scan.records if r.kind == "admission-rejected"
        ),
        "added": submitted,
        "best_loss": "",
        "status": _status_of(scan, submitted > 0 and terminal >= submitted),
    }


def summarize(path: str | Path, *, root: str | Path | None = None) -> list[dict[str, Any]]:
    """Collapsed status rows for one journal directory."""
    path = Path(path)
    rel = str(path.relative_to(root)) if root and path != Path(root) else path.name
    scan = JournalReader(path).scan()
    kind = journal_kind(scan)
    if kind == "grid":
        return _grid_rows(path, rel, scan)
    if kind == "service":
        return [_service_row(path, rel, scan)]
    return [_session_row(path, rel, scan)]


def journal_rows(root: str | Path) -> tuple[tuple[str, ...], list[dict[str, Any]]]:
    """``(columns, rows)`` for every journal under ``root``."""
    rows: list[dict[str, Any]] = []
    for journal in discover_journals(root):
        rows.extend(summarize(journal, root=root))
    return STATUS_COLUMNS, rows


def format_status(root: str | Path) -> str:
    """The collapsed status table as rendered text."""
    from repro.experiments.report import format_table

    columns, rows = journal_rows(root)
    title = f"journals under {root} ({len(rows)} row(s))"
    return format_table(rows, list(columns), title=title)


# ---------------------------------------------------------------------- #
# Counter export.
# ---------------------------------------------------------------------- #
def journal_counters(path: str | Path) -> list[dict[str, Any]]:
    """Monotonic counters/gauges for one journal (dashboard shape).

    Every entry is ``{"name", "type": "counter"|"gauge", "value",
    "labels": {...}}``.  Counters only ever grow as the journal grows,
    so scrapers can diff successive exports.
    """
    path = Path(path)
    scan = JournalReader(path).scan()
    kind = journal_kind(scan)
    labels = {"journal": path.name, "kind": kind}

    def counter(name: str, value: float, **extra) -> dict[str, Any]:
        return {
            "name": name, "type": "counter", "value": value,
            "labels": {**labels, **extra},
        }

    def gauge(name: str, value: float, **extra) -> dict[str, Any]:
        return {
            "name": name, "type": "gauge", "value": value,
            "labels": {**labels, **extra},
        }

    out = [
        counter("journal_records_total", len(scan.records)),
        counter("journal_segments_total", len(scan.segments)),
        gauge("journal_last_seq", scan.last_seq),
        gauge("journal_truncated", 0 if scan.ok else 1),
    ]
    by_kind: dict[str, int] = {}
    for record in scan.records:
        by_kind[record.kind] = by_kind.get(record.kind, 0) + 1
    for record_kind, count in sorted(by_kind.items()):
        out.append(counter("journal_kind_total", count, record=record_kind))

    if kind == "session":
        replay = SessionReplay(path, scan, _spans_of(scan))
        summary = replay.summary()
        out.extend([
            counter("session_iterations_total", summary["iterations"]),
            counter("session_accepted_total", summary["accepted"]),
            counter("session_rejected_total", summary["rejected"]),
            counter("session_empty_total", summary["empty"]),
            counter("session_rows_added_total", summary["n_added"]),
            counter("session_runs_total", summary["runs"]),
            counter("session_resumes_total", summary["resumes"]),
            gauge("session_finished", 1 if summary["finished"] else 0),
        ])
        if isinstance(summary["best_loss"], float):
            out.append(gauge("session_best_loss", summary["best_loss"]))
    elif kind == "service":
        steps = [
            r.data["seconds"]
            for r in scan.records
            if r.kind == "quantum" and r.data.get("kind") == "step"
        ]
        out.extend([
            counter("service_steps_total", len(steps)),
            counter("service_step_seconds_total", sum(steps)),
        ])
    return out


def export_counters(root: str | Path) -> list[dict[str, Any]]:
    """Counters for every journal under ``root`` (JSON-lines payload)."""
    out: list[dict[str, Any]] = []
    for journal in discover_journals(root):
        out.extend(journal_counters(journal))
    return out
