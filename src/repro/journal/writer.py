"""Appending to journals: the durable writer and the session subscriber.

Two layers:

:class:`JournalWriter`
    The generic append side of the format in :mod:`repro.journal.records`:
    segment rotation, the seq/prev/h chain, fsync on demand, and
    crash-safe *reopening* — a journal left with a torn final line (the
    only artifact an append-crash can produce) is repaired by truncating
    it, and the chain continues in a fresh segment.  Grid runners and the
    serving layer drive this directly with their own record kinds.

:class:`SessionJournal`
    The edit-loop subscriber: attached to an
    :class:`~repro.engine.state.EditState` it listens to the engine's
    ``ProgressEvent`` stream and appends one durable record per
    iteration — including, for accepted iterations, the generated batch
    rows and the post-iteration RNG state, which is exactly what
    journal-based crash-resume (:func:`repro.journal.replay.run_journaled`)
    needs to fast-forward a re-run bit-identically.

Durability contract: records written with ``sync=True`` (run metadata
and every iteration record) are flushed *and* fsynced before ``append``
returns, so a crash at any instant loses at most the record being
written — and that half-record is detected (and repaired) as a torn
tail.  Quantum-level serving telemetry is flushed but not fsynced; it is
observability, not state the resume path depends on.
"""

from __future__ import annotations

import hashlib
import os
import time
from pathlib import Path
from typing import IO, Any

import numpy as np

from repro.journal.reader import JournalReader
from repro.journal.records import (
    KIND_HEADER,
    KIND_ITERATION,
    KIND_RULESET,
    KIND_RUN_FINISHED,
    KIND_RUN_META,
    KIND_RUN_RESUMED,
    KIND_SCHEMA,
    SCHEMA_VERSION,
    encode_line,
    line_hash,
    list_segments,
    segment_index,
    segment_name,
)

#: Default records per segment before rotating to a new file.
DEFAULT_SEGMENT_RECORDS = 4096

#: FroteConfig fields snapshotted into ``run-meta`` — the knobs that
#: determine the numeric trajectory of a run.  Resume refuses a journal
#: whose snapshot disagrees with the live config on any of these.
CONFIG_SNAPSHOT_FIELDS = (
    "tau", "q", "eta", "k", "selection", "mod_strategy", "objective",
    "mra_weight", "accept_equal", "incremental",
)


class JournalError(RuntimeError):
    """The journal on disk cannot be safely appended to."""


class JournalWriter:
    """Append-only writer over one journal directory.

    Parameters
    ----------
    path:
        Journal directory (created if missing).
    meta:
        Writer metadata embedded in every segment header (e.g.
        ``{"journal_kind": "session", "name": ...}``).
    segment_max_records:
        Rotate to a new segment file after this many records.
    fsync:
        Honor ``sync=True`` appends with a real ``os.fsync`` (tests
        disable this for speed; the records are still flushed).
    fresh:
        Delete any existing segments instead of continuing their chain.

    Reopening an existing journal repairs a repairable torn tail
    (truncating the damaged bytes) and continues the seq/prev chain in a
    **new** segment; any deeper corruption raises :class:`JournalError`
    rather than appending records that can never verify.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        meta: dict[str, Any] | None = None,
        segment_max_records: int = DEFAULT_SEGMENT_RECORDS,
        fsync: bool = True,
        fresh: bool = False,
    ) -> None:
        if segment_max_records < 2:
            raise ValueError(
                f"segment_max_records must be >= 2, got {segment_max_records}"
            )
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.meta = dict(meta or {})
        self.segment_max_records = segment_max_records
        self.fsync = fsync
        self._fh: IO[bytes] | None = None
        self._segment = -1
        self._records_in_segment = 0
        self._next_seq = 0
        self._prev_hash = ""
        self._closed = False
        #: Cumulative wall seconds spent in write/flush/fsync calls —
        #: the durability cost the journal bench gates on.
        self.io_seconds = 0.0

        existing = list_segments(self.path)
        if fresh:
            for seg in existing:
                seg.unlink()
            existing = []
        if existing:
            scan = JournalReader(self.path).scan()
            if scan.truncation is not None:
                if not scan.truncation.repairable:
                    raise JournalError(
                        f"journal at {self.path} is corrupt "
                        f"({scan.truncation.reason}: {scan.truncation.detail}); "
                        "refusing to append — move it aside or open with "
                        "fresh=True"
                    )
                self._repair_torn_tail(scan.truncation)
            self._next_seq = scan.last_seq + 1
            self._prev_hash = scan.last_hash
            self._segment = max(segment_index(p) for p in existing)  # type: ignore[type-var]
        self._open_segment()

    # ------------------------------------------------------------------ #
    def _repair_torn_tail(self, truncation) -> None:
        seg_path = self.path / segment_name(truncation.segment)
        with open(seg_path, "r+b") as fh:
            fh.truncate(truncation.byte_offset)
            fh.flush()
            os.fsync(fh.fileno())

    def _open_segment(self) -> None:
        if self._fh is not None:
            self._sync()
            self._fh.close()
        self._segment += 1
        seg_path = self.path / segment_name(self._segment)
        self._fh = open(seg_path, "ab")
        self._records_in_segment = 0
        self._append_line(
            KIND_HEADER,
            {
                "schema_version": SCHEMA_VERSION,
                "segment": self._segment,
                "meta": self.meta,
            },
            sync=True,
        )

    def _append_line(self, kind: str, data: Any, *, sync: bool) -> int:
        assert self._fh is not None
        line = encode_line(self._next_seq, self._prev_hash, kind, time.time(), data)
        t0 = time.perf_counter()
        self._fh.write(line + b"\n")
        self._fh.flush()
        if sync and self.fsync:
            os.fsync(self._fh.fileno())
        self.io_seconds += time.perf_counter() - t0
        self._prev_hash = line_hash(line)
        seq = self._next_seq
        self._next_seq += 1
        self._records_in_segment += 1
        return seq

    # ------------------------------------------------------------------ #
    def append(self, kind: str, data: Any, *, sync: bool = False) -> int:
        """Append one record; returns its sequence number.

        ``sync=True`` fsyncs before returning (the durability boundary);
        plain appends are flushed to the OS but not forced to disk.
        """
        if self._closed:
            raise JournalError(f"journal writer for {self.path} is closed")
        if self._records_in_segment >= self.segment_max_records:
            self._open_segment()
        return self._append_line(kind, data, sync=sync)

    def _sync(self) -> None:
        if self._fh is not None:
            t0 = time.perf_counter()
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self.io_seconds += time.perf_counter() - t0

    def close(self) -> None:
        """Flush, fsync, and close (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._fh is not None:
            self._sync()
            self._fh.close()
            self._fh = None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def next_seq(self) -> int:
        return self._next_seq

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------- #
def dataset_fingerprint(dataset) -> dict[str, Any]:
    """Content identity of a dataset: shape, names, and a bytes hash.

    Used by resume to refuse fast-forwarding a journal onto a different
    input dataset (which would silently replay the wrong rows).
    """
    digest = hashlib.sha256()
    for name in dataset.X.schema.names:
        digest.update(np.ascontiguousarray(dataset.X.column(name)).tobytes())
    digest.update(np.ascontiguousarray(dataset.y).tobytes())
    return {
        "n": int(dataset.n),
        "columns": list(dataset.X.schema.names),
        "label_names": list(dataset.label_names),
        "sha": digest.hexdigest()[:16],
    }


def config_snapshot(config) -> dict[str, Any]:
    """The trajectory-determining config fields (see resume validation)."""
    return {f: getattr(config, f) for f in CONFIG_SNAPSHOT_FIELDS}


def rng_snapshot(rng: np.random.Generator) -> dict[str, Any]:
    """Restorable bit-generator state (JSON keeps Python bigints exact)."""
    return {
        "bit_generator": type(rng.bit_generator).__name__,
        "state": rng.bit_generator.state,
    }


class SessionJournal:
    """Durable observer of one edit session.

    Attach to an :class:`~repro.engine.state.EditState` *before* the
    engine runs; every ``ProgressEvent`` becomes a journal record:

    ``run-meta`` (at ``started``)
        Config snapshot, input-dataset fingerprint, budgets, RNG
        identity — everything resume must validate.
    ``iteration`` (at ``accepted`` / ``rejected`` / ``empty-batch``)
        The full :class:`~repro.engine.state.IterationRecord` payload
        plus stage timings, the post-iteration RNG state, and — for
        accepted iterations — the generated batch's rows, labels, and
        per-rule counts.  Fsynced: this is the crash-resume boundary.
    ``run-finished`` (at ``finished``)
        Closing totals.

    The journal listener is engine-isolated like any other listener (a
    failure lands in ``EditState.listener_errors`` with its event kind
    and iteration), so a full disk cannot take down the edit loop.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        meta: dict[str, Any] | None = None,
        fsync: bool = True,
        fresh: bool = False,
        segment_max_records: int = DEFAULT_SEGMENT_RECORDS,
    ) -> None:
        base = {"journal_kind": "session"}
        base.update(meta or {})
        self.writer = JournalWriter(
            path,
            meta=base,
            fsync=fsync,
            fresh=fresh,
            segment_max_records=segment_max_records,
        )
        self._state = None

    @property
    def path(self) -> Path:
        return self.writer.path

    @property
    def io_seconds(self) -> float:
        return self.writer.io_seconds

    # ------------------------------------------------------------------ #
    def attach(self, state) -> "SessionJournal":
        """Subscribe to ``state``'s progress events (appended last, so
        user listeners observe each event before it becomes durable)."""
        self._state = state
        state.listeners.append(self._on_event)
        return self

    def _on_event(self, event) -> None:
        state = self._state
        if state is None:
            return
        if event.kind == "started":
            self.writer.append(KIND_RUN_META, self._run_meta(state), sync=True)
        elif event.kind == "ruleset":
            # A feedback delta just landed: journal the full resulting
            # rule set (self-contained — replay reconstructs the rule
            # timeline without re-running aggregation), fsynced like
            # iteration records so crash-resume sees every applied rule.
            self.writer.append(
                KIND_RULESET, self._ruleset_data(state, event), sync=True
            )
        elif event.kind == "schema":
            # A schema migration just landed: journal the delta plus its
            # lineage tokens, fsynced — crash-resume must fast-forward
            # through migrations before it can re-append later batches
            # (their journaled columns are keyed by the migrated schema).
            from repro.engine.migration import migration_to_jsonable

            self.writer.append(
                KIND_SCHEMA, migration_to_jsonable(event.schema), sync=True
            )
        elif event.record is not None:
            self.writer.append(
                KIND_ITERATION, self._iteration_data(state, event), sync=True
            )
        elif event.kind == "finished":
            self.writer.append(
                KIND_RUN_FINISHED,
                {
                    "iterations": state.iteration,
                    "n_added": state.n_added,
                    "best_loss": state.best_loss,
                    "stopped": state.stopped,
                },
                sync=True,
            )

    # ------------------------------------------------------------------ #
    def _run_meta(self, state) -> dict[str, Any]:
        config = state.config
        seed = config.random_state
        return {
            "config": config_snapshot(config),
            "random_state": seed if isinstance(seed, (int, type(None))) else None,
            "seedable": isinstance(seed, (int, type(None))),
            "dataset": dataset_fingerprint(state.input_dataset),
            "bit_generator": type(state.rng.bit_generator).__name__,
            "start_iteration": state.iteration,
            "eta": state.eta,
            "quota": state.quota,
            "max_iteration": state.max_iteration,
            "n_active": state.active.n,
            "n_relabelled": state.n_relabelled,
            "n_dropped": state.n_dropped,
            "initial_loss": state.best_loss,
            "warm_start": state.warm_start,
            "n_rules": len(tuple(state.frs)),
        }

    def _ruleset_data(self, state, event) -> dict[str, Any]:
        from repro.feedback.delta import delta_to_jsonable

        data = delta_to_jsonable(event.ruleset)
        data["n_rules"] = len(tuple(state.frs))
        return data

    def _iteration_data(self, state, event) -> dict[str, Any]:
        record = event.record
        data: dict[str, Any] = {
            "kind": event.kind,
            "iteration": record.iteration,
            "candidate_loss": record.candidate_loss,
            "accepted": record.accepted,
            "n_generated": record.n_generated,
            "n_added_total": record.n_added_total,
            "external_score": record.external_score,
            "best_loss": state.best_loss,
            "n_active": state.active.n,
            "stage_seconds": event.stage_seconds,
            "rng": rng_snapshot(state.rng),
        }
        if record.accepted:
            batch = state.batch
            data["per_rule_counts"] = list(state.per_rule_counts)
            data["batch"] = {
                "columns": {
                    name: batch.table.column(name)
                    for name in batch.table.schema.names
                },
                "labels": batch.labels,
            }
        return data

    # ------------------------------------------------------------------ #
    def record_resumed(self, state, *, fast_forwarded: int) -> None:
        """Mark a journal-based resume: the chain continues, the next
        ``iteration`` records extend the same logical run."""
        self.writer.append(
            KIND_RUN_RESUMED,
            {
                "iteration": state.iteration,
                "n_added": state.n_added,
                "best_loss": state.best_loss,
                "fast_forwarded": fast_forwarded,
                "rng": rng_snapshot(state.rng),
            },
            sync=True,
        )

    def close(self) -> None:
        self.writer.close()

    def __enter__(self) -> "SessionJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
