"""Replay and crash-resume: rebuilding run state from the journal alone.

Two consumers of a session journal live here:

:class:`SessionReplay`
    The post-hoc debugger.  From the journal alone it reconstructs the
    full per-iteration history — accepted/rejected/empty-batch verdicts,
    candidate losses, the objective trajectory, stage wall-time
    breakdowns, batch sizes — as :class:`ReplayIteration` rows whose
    :meth:`~ReplayIteration.to_record` projections match the live run's
    ``FroteResult.history`` field-for-field (pinned by
    ``tests/journal/test_replay_parity.py``).

:func:`run_journaled`
    Journal-based crash-resume.  Re-running a journaled session
    fast-forwards through every committed iteration instead of
    recomputing it: accepted batches are re-applied from their journaled
    rows (O(batch) builder appends), the model is refit once at the
    resume point, and the RNG is restored to its journaled
    post-iteration state — so the continuation consumes the exact random
    stream the uninterrupted run would have.

Exactness contract
------------------
With the default full-refit path (``incremental=False``), a resumed run
is **bit-identical** to the uninterrupted one: every stage input at the
resume point — active dataset bytes, model (a deterministic function of
those bytes), RNG stream position — is reproduced exactly.  This holds
for out-of-core configs too (same bytes, different storage).  With
``incremental=True`` the live run's model is a chain of in-place partial
refits that the journal cannot replay; resume refits from scratch at the
resume point, which is the documented online-continuation semantics —
mathematically equivalent, not guaranteed bit-identical.  Two smaller
divergences: ``state.evaluation`` between events is recomputed over the
post-append dataset (the live loop carries the candidate evaluation over
the pre-append rows — event payload only, never loop numerics), and an
``AcceptanceStage(patience=...)`` rejection streak does not survive the
boundary (the journal records verdicts, not the early-stop counter's
in-flight state).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.journal.reader import JournalReader, ScanResult, Truncation
from repro.journal.records import (
    KIND_ITERATION,
    KIND_RULESET,
    KIND_RUN_FINISHED,
    KIND_RUN_META,
    KIND_RUN_RESUMED,
    KIND_SCHEMA,
    Record,
)
from repro.journal.writer import (
    SessionJournal,
    config_snapshot,
    dataset_fingerprint,
)


class JournalResumeError(RuntimeError):
    """The journal cannot be fast-forwarded onto this session."""


@dataclass(frozen=True)
class ReplayIteration:
    """One iteration reconstructed from its journal record."""

    iteration: int
    kind: str  # accepted | rejected | empty-batch
    candidate_loss: float
    accepted: bool
    n_generated: int
    n_added_total: int
    external_score: float | None
    best_loss: float
    n_active: int
    t: float
    stage_seconds: dict[str, float] | None = None
    rng: dict[str, Any] | None = None
    per_rule_counts: list[int] | None = None
    batch: dict[str, Any] | None = None

    @classmethod
    def from_record(cls, record: Record) -> "ReplayIteration":
        data = record.data
        return cls(
            iteration=int(data["iteration"]),
            kind=str(data["kind"]),
            candidate_loss=float(data["candidate_loss"]),
            accepted=bool(data["accepted"]),
            n_generated=int(data["n_generated"]),
            n_added_total=int(data["n_added_total"]),
            external_score=data.get("external_score"),
            best_loss=float(data["best_loss"]),
            n_active=int(data["n_active"]),
            t=record.t,
            stage_seconds=data.get("stage_seconds"),
            rng=data.get("rng"),
            per_rule_counts=data.get("per_rule_counts"),
            batch=data.get("batch"),
        )

    def to_record(self):
        """Project onto the live loop's :class:`IterationRecord`."""
        from repro.engine.state import IterationRecord

        return IterationRecord(
            iteration=self.iteration,
            candidate_loss=self.candidate_loss,
            accepted=self.accepted,
            n_generated=self.n_generated,
            n_added_total=self.n_added_total,
            external_score=self.external_score,
        )

    @property
    def iteration_seconds(self) -> float | None:
        if self.stage_seconds is None:
            return None
        return sum(self.stage_seconds.values())


@dataclass
class _Span:
    """One logical run within a journal: a run-meta plus its iterations.

    A ``run-meta`` record starts a new span; ``run-resumed`` continues
    the latest one (crash-resume keeps extending the same logical run).
    Iterations are keyed by number with later-wins semantics, so an
    iteration that was journaled, lost to a crash *after* the fsync, and
    re-emitted by the resumed process resolves to its latest record.
    """

    meta: Record
    iterations: dict[int, Record] = field(default_factory=dict)
    resumes: list[Record] = field(default_factory=list)
    finished: Record | None = None
    #: ``ruleset-delta`` records in write order.  Unlike iterations these
    #: are kept as a list: a crash between a delta's fsync and its
    #: iteration's commit makes the resumed process re-apply (and
    #: re-journal) the same delta, so consumers dedupe by content key
    #: (see :func:`_delta_key`) rather than by position.
    rulesets: list[Record] = field(default_factory=list)
    #: ``schema-delta`` records in write order, content-deduped the same
    #: way (see :func:`_schema_key`).
    schemas: list[Record] = field(default_factory=list)


def _session_spans(records: list[Record]) -> list[_Span]:
    spans: list[_Span] = []
    for record in records:
        if record.kind == KIND_RUN_META:
            spans.append(_Span(meta=record))
        elif not spans:
            continue  # segment headers / foreign kinds before any run
        elif record.kind == KIND_ITERATION:
            spans[-1].iterations[int(record.data["iteration"])] = record
        elif record.kind == KIND_RUN_RESUMED:
            spans[-1].resumes.append(record)
        elif record.kind == KIND_RUN_FINISHED:
            spans[-1].finished = record
        elif record.kind == KIND_RULESET:
            spans[-1].rulesets.append(record)
        elif record.kind == KIND_SCHEMA:
            spans[-1].schemas.append(record)
    return spans


def _delta_key(data: dict[str, Any]) -> tuple[int, str, str]:
    """Content identity of one journaled ruleset delta.

    A crashed-then-resumed run re-journals the delta it re-applies at the
    resume boundary; the (iteration, kind, rules-added) triple identifies
    it regardless of how many times it was written.
    """
    return (
        int(data["iteration"]),
        str(data["kind"]),
        json.dumps(data["rules_added"], sort_keys=True, separators=(",", ":")),
    )


def _dedupe_deltas(records: list[Record]) -> list[Record]:
    seen: set[tuple[int, str, str]] = set()
    out: list[Record] = []
    for record in records:
        key = _delta_key(record.data)
        if key in seen:
            continue
        seen.add(key)
        out.append(record)
    return out


def _schema_key(data: dict[str, Any]) -> tuple[int, str]:
    """Content identity of one journaled schema delta.

    Same contract as :func:`_delta_key`: a crashed-then-resumed run
    re-applies (and re-journals) the migration at the resume boundary,
    so the (iteration, canonical delta) pair identifies it regardless of
    how many times it was written.
    """
    return (
        int(data["iteration"]),
        json.dumps(data["delta"], sort_keys=True, separators=(",", ":")),
    )


def _dedupe_schemas(records: list[Record]) -> list[Record]:
    seen: set[tuple[int, str]] = set()
    out: list[Record] = []
    for record in records:
        key = _schema_key(record.data)
        if key in seen:
            continue
        seen.add(key)
        out.append(record)
    return out


def _committed(span: _Span) -> list[ReplayIteration]:
    """The contiguous committed iteration prefix of a span."""
    start = int(span.meta.data.get("start_iteration", 0))
    out: list[ReplayIteration] = []
    i = start
    while i in span.iterations:
        out.append(ReplayIteration.from_record(span.iterations[i]))
        i += 1
    return out


class SessionReplay:
    """Post-hoc view of one journaled session."""

    def __init__(
        self,
        path: Path,
        scan: ScanResult,
        spans: list[_Span],
    ) -> None:
        self.path = path
        self.scan = scan
        self.spans = spans

    @classmethod
    def load(cls, path: str | Path) -> "SessionReplay":
        scan = JournalReader(path).scan()
        return cls(Path(path), scan, _session_spans(scan.records))

    # ------------------------------------------------------------------ #
    @property
    def truncation(self) -> Truncation | None:
        return self.scan.truncation

    @property
    def span(self) -> _Span | None:
        """The latest logical run (replay and resume both use it)."""
        return self.spans[-1] if self.spans else None

    @property
    def meta(self) -> dict[str, Any] | None:
        return dict(self.span.meta.data) if self.span else None

    @property
    def finished(self) -> dict[str, Any] | None:
        span = self.span
        return dict(span.finished.data) if span and span.finished else None

    @property
    def iterations(self) -> list[ReplayIteration]:
        span = self.span
        if span is None:
            return []
        return [
            ReplayIteration.from_record(span.iterations[i])
            for i in sorted(span.iterations)
        ]

    def history(self):
        """The run's ``FroteResult.history``, reconstructed."""
        return [it.to_record() for it in self.iterations]

    def objective_trajectory(self) -> list[float]:
        """Best-loss-so-far after each iteration."""
        return [it.best_loss for it in self.iterations]

    def committed(self) -> list[ReplayIteration]:
        """The contiguous prefix crash-resume would fast-forward."""
        span = self.span
        return _committed(span) if span else []

    def rule_timeline(self) -> list[dict[str, Any]]:
        """The run's rule-set evolution, from the journal alone.

        One row per applied ruleset delta (content-deduped across crash
        boundaries), in application order: when each rule arrived, whether
        it appended or forced a carve-out rebuild, and the resulting
        rule-set size.  This is the feedback-layer analogue of
        :meth:`history` — served ``feed(...)`` sessions replay to the
        same timeline as the live run (pinned by
        ``tests/serve/test_serve_feed.py``).
        """
        span = self.span
        if span is None:
            return []
        rows = []
        for record in _dedupe_deltas(span.rulesets):
            data = record.data
            rows.append(
                {
                    "iteration": int(data["iteration"]),
                    "kind": str(data["kind"]),
                    "rules": [
                        r.get("name", "") for r in data.get("rules_added", [])
                    ],
                    "rules_added": len(data.get("rules_added", [])),
                    "n_rules": int(
                        data.get("n_rules", len(data.get("ruleset", [])))
                    ),
                    "provenance": str(data.get("provenance", "")),
                    "t": record.t,
                }
            )
        return rows

    def schema_timeline(self) -> list[dict[str, Any]]:
        """The run's feature-space evolution, from the journal alone.

        One row per applied schema delta (content-deduped across crash
        boundaries), in application order, carrying the delta itself plus
        the content-hashed version lineage — so an audit can reconstruct
        ``SchemaVersion`` history without the dataset.
        """
        span = self.span
        if span is None:
            return []
        rows = []
        for record in _dedupe_schemas(span.schemas):
            data = record.data
            rows.append(
                {
                    "iteration": int(data["iteration"]),
                    "op": str(data["delta"].get("op", "")),
                    "column": str(data["delta"].get("column", "")),
                    "delta": dict(data["delta"]),
                    "version": str(data["version"]),
                    "parent": str(data["parent"]),
                    "provenance": str(data.get("provenance", "")),
                    "model_refit": bool(data.get("model_refit", True)),
                    "t": record.t,
                }
            )
        return rows

    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, Any]:
        iterations = self.iterations
        accepted = [it for it in iterations if it.accepted]
        rejected = [it for it in iterations if it.kind == "rejected"]
        empty = [it for it in iterations if it.kind == "empty-batch"]
        meta = self.meta or {}
        finished = self.finished
        timed = [
            it.iteration_seconds
            for it in iterations
            if it.iteration_seconds is not None
        ]
        return {
            "path": str(self.path),
            "runs": len(self.spans),
            "resumes": len(self.span.resumes) if self.span else 0,
            "iterations": len(iterations),
            "accepted": len(accepted),
            "rejected": len(rejected),
            "empty": len(empty),
            "n_added": iterations[-1].n_added_total if iterations else 0,
            "ruleset_deltas": len(self.rule_timeline()),
            "schema_deltas": len(self.schema_timeline()),
            "initial_loss": meta.get("initial_loss"),
            "best_loss": iterations[-1].best_loss if iterations else meta.get("initial_loss"),
            "finished": finished is not None,
            "stopped": bool(finished and finished.get("stopped")),
            "seconds": sum(timed) if timed else None,
            "truncation": (
                f"{self.truncation.reason} (last good seq "
                f"{self.truncation.last_good_seq})"
                if self.truncation
                else None
            ),
        }


# ---------------------------------------------------------------------- #
# Crash-resume.
# ---------------------------------------------------------------------- #
def _validate_resume(state, meta: dict[str, Any]) -> None:
    config = state.config
    if not meta.get("seedable") or not isinstance(config.random_state, int):
        raise JournalResumeError(
            "journal resume requires an integer random_state (the original "
            "run's RNG stream must be reconstructible); rerun with "
            "journal_resume=False for a fresh journal"
        )
    if meta.get("random_state") != config.random_state:
        raise JournalResumeError(
            f"journal was written with random_state="
            f"{meta.get('random_state')!r}, session has "
            f"{config.random_state!r}"
        )
    snapshot = config_snapshot(config)
    journaled = meta.get("config", {})
    mismatched = {
        key: (journaled.get(key), value)
        for key, value in snapshot.items()
        if journaled.get(key) != value
    }
    if mismatched:
        raise JournalResumeError(
            f"journaled config disagrees with session config on "
            f"{sorted(mismatched)}: {mismatched}"
        )
    live_fp = dataset_fingerprint(state.input_dataset)
    if meta.get("dataset") != live_fp:
        raise JournalResumeError(
            "journaled input-dataset fingerprint does not match this "
            "session's dataset; refusing to replay foreign rows"
        )
    if meta.get("bit_generator") != type(state.rng.bit_generator).__name__:
        raise JournalResumeError(
            f"journal used bit generator {meta.get('bit_generator')!r}, "
            f"session has {type(state.rng.bit_generator).__name__!r}"
        )
    if int(meta.get("start_iteration", 0)) != state.iteration:
        raise JournalResumeError(
            f"journal starts at iteration {meta.get('start_iteration')}, "
            f"session starts at {state.iteration} (warm-start mismatch)"
        )


def _apply_journaled_ruleset(state, record: Record) -> None:
    """Install one journaled ruleset delta without re-running aggregation.

    Deltas are self-contained (they carry the complete resulting rule
    set), so fast-forward swaps the rule set in and invalidates the
    derived caches; the per-iteration ``best_loss`` bookkeeping stays
    authoritative for committed iterations, and the tail recompute in
    :func:`fast_forward` covers deltas at the resume boundary.  Rules are
    marked applied on the session's feedback pipeline so re-polled
    sources (scripted schedules re-deliver on resume) dedupe instead of
    double-applying.
    """
    from repro.feedback.delta import delta_from_jsonable

    delta = delta_from_jsonable(record.data)
    state.frs = delta.ruleset
    state.assign_cache = None
    state.evaluation_cache = None
    state.population_stale = True
    state.ruleset_log.append(delta)
    if state.feedback is not None:
        for rule in delta.rules_added:
            state.feedback.mark_applied(rule)


def _apply_journaled_schema(state, record: Record) -> None:
    """Re-apply one journaled schema migration during fast-forward.

    Unlike ruleset deltas, a schema delta cannot be installed as pure
    bookkeeping: the active table's columns, the rule set's attribute
    names, and the fitted encoder all change shape, and every later
    journaled batch is keyed by the *migrated* schema's column names.  So
    fast-forward re-runs :func:`~repro.engine.migration.apply_schema_delta`
    — the same deterministic function the live boundary ran — and then
    checks the resulting content-hashed version token against the
    journaled one, which pins the whole schema lineage bit-for-bit.
    """
    from repro.engine.migration import apply_schema_delta, migration_from_jsonable

    migration = migration_from_jsonable(record.data)
    applied = apply_schema_delta(
        state, migration.delta, provenance=migration.provenance
    )
    if applied.version != migration.version:
        raise JournalResumeError(
            f"replaying the schema delta at iteration {migration.iteration} "
            f"produced version {applied.version!r}; journal recorded "
            f"{migration.version!r} (schema lineage diverged)"
        )
    if state.feedback is not None:
        state.feedback.mark_migrated(migration.delta)


def fast_forward(
    state,
    entries: list[ReplayIteration],
    ruleset_records: list[Record] = (),  # type: ignore[assignment]
    schema_records: list[Record] = (),  # type: ignore[assignment]
):
    """Re-apply committed iterations onto a freshly initialized state.

    Must be called right after ``engine.initialize(state)``: setup
    (modification, initial fit, budgets) is deterministically re-run by
    the engine, then each journaled iteration is replayed as pure
    bookkeeping — no model fits, no generation — with accepted batches
    re-appended from their journaled rows, journaled schema migrations
    re-applied, and journaled ruleset deltas re-installed at the
    iteration boundaries where they were applied (migrations before
    rules, matching the live feedback stage's drain order).  Finishes by
    refitting the model once and restoring the journaled RNG state.
    """
    from repro.data.table import Table

    by_iter: dict[int, list[Record]] = {}
    for record in _dedupe_deltas(list(ruleset_records)):
        by_iter.setdefault(int(record.data["iteration"]), []).append(record)
    schema_by_iter: dict[int, list[Record]] = {}
    for record in _dedupe_schemas(list(schema_records)):
        schema_by_iter.setdefault(int(record.data["iteration"]), []).append(record)

    any_accepted = False
    any_delta = False
    for entry in entries:
        if entry.iteration != state.iteration:
            raise JournalResumeError(
                f"journal iteration {entry.iteration} does not follow "
                f"live iteration {state.iteration}"
            )
        # Deltas journaled at iteration k were applied by the feedback
        # stage *before* k's loop body ran — schema migrations first
        # (live drain order), so a same-boundary rule that references a
        # just-landed column installs against the migrated schema, and
        # the batch re-appended below matches the active column layout.
        # The entry's best_loss already reflects them, so the bookkeeping
        # below overwrites whatever the re-applies compute.
        for record in schema_by_iter.pop(entry.iteration, []):
            _apply_journaled_schema(state, record)
            any_delta = True
        for record in by_iter.pop(entry.iteration, []):
            _apply_journaled_ruleset(state, record)
            any_delta = True
        if entry.accepted:
            if entry.batch is None or entry.per_rule_counts is None:
                raise JournalResumeError(
                    f"accepted iteration {entry.iteration} was journaled "
                    "without its batch payload"
                )
            schema = state.active.X.schema
            table = Table(
                schema,
                {name: entry.batch["columns"][name] for name in schema.names},
            )
            labels = np.asarray(entry.batch["labels"], dtype=np.int64)
            builder = state.active_builder
            if builder is None or builder.n_rows != state.active.n:
                state.active_builder = builder = state.make_builder(state.active)
                state.active = builder.snapshot()
            candidate = builder.stage(table, labels)
            builder.commit(candidate.n)
            state.active = candidate
            state.n_added += entry.n_generated
            state.provenance = state.provenance.extend_synthetic(
                [int(c) for c in entry.per_rule_counts], entry.iteration
            )
            state.population_stale = True
            state.record_append(entry.n_generated, "journal-resume")
            any_accepted = True
            if state.active.n != entry.n_active:
                raise JournalResumeError(
                    f"replaying iteration {entry.iteration} produced "
                    f"{state.active.n} active rows; journal recorded "
                    f"{entry.n_active}"
                )
        state.best_loss = entry.best_loss
        state.history.append(entry.to_record())
        state.iteration = entry.iteration + 1
    # Deltas at the resume boundary: journaled by a feedback stage whose
    # iteration then crashed before committing.  The continuation's
    # feedback stage would re-deliver them anyway (sources re-poll);
    # installing them here keeps the journal authoritative and makes the
    # re-delivery a dedup no-op.  Schema migrations apply before rules at
    # each boundary, mirroring the committed loop above.
    tail_deltas = False
    for iteration in sorted(set(by_iter) | set(schema_by_iter)):
        if iteration > state.iteration:
            raise JournalResumeError(
                f"journaled delta at iteration {iteration} is "
                f"beyond the committed prefix (resume point "
                f"{state.iteration})"
            )
        for record in schema_by_iter.get(iteration, []):
            _apply_journaled_schema(state, record)
            any_delta = tail_deltas = True
        for record in by_iter.get(iteration, []):
            _apply_journaled_ruleset(state, record)
            any_delta = tail_deltas = True
    if any_accepted:
        state.model = state.algorithm(state.active)
    if any_accepted or any_delta:
        state.evaluation = state.evaluate_active()
    if tail_deltas:
        # Committed iterations carried their own journaled best_loss; a
        # tail delta post-dates the last commit, so recompute exactly as
        # the live apply_rule did at this boundary.
        state.best_loss = state.loss_of(state.evaluation)
    if entries:
        rng = entries[-1].rng
        if rng is None:
            raise JournalResumeError(
                f"iteration {entries[-1].iteration} carries no RNG state"
            )
        bitgen = state.rng.bit_generator
        if type(bitgen).__name__ != rng["bit_generator"]:
            raise JournalResumeError(
                f"journaled RNG is {rng['bit_generator']!r}, live is "
                f"{type(bitgen).__name__!r}"
            )
        bitgen.state = rng["state"]
    return state


def run_journaled(session):
    """``EditSession.run()`` with a durable journal and crash-resume.

    The session's config must carry ``journal_dir`` (see
    ``EditSession.journaled(...)``).  If the journal directory already
    holds committed iterations for this exact session (validated by
    config snapshot, dataset fingerprint, seed, and RNG identity) and
    ``journal_resume`` is on, they are fast-forwarded instead of
    recomputed; otherwise the run starts fresh (wiping the journal only
    when ``journal_resume=False``).
    """
    state = session.build_state()
    engine = session.build_engine()
    config = state.config
    if not config.journal_dir:
        raise ValueError("run_journaled requires FroteConfig(journal_dir=...)")
    name = config.journal_name or "session"
    path = Path(config.journal_dir) / name
    meta = {"name": name}

    entries: list[ReplayIteration] = []
    ruleset_records: list[Record] = []
    schema_records: list[Record] = []
    if config.journal_resume and JournalReader(path).exists:
        scan = JournalReader(path).scan()
        if scan.truncation is not None and not scan.truncation.repairable:
            raise JournalResumeError(
                f"journal at {path} is corrupt ({scan.truncation.reason}: "
                f"{scan.truncation.detail}); move it aside or pass "
                "journal_resume=False"
            )
        spans = _session_spans(scan.records)
        if spans:
            _validate_resume(state, dict(spans[-1].meta.data))
            entries = _committed(spans[-1])
            ruleset_records = spans[-1].rulesets
            schema_records = spans[-1].schemas

    if entries:
        engine.initialize(state)
        fast_forward(state, entries, ruleset_records, schema_records)
        journal = SessionJournal(path, meta=meta).attach(state)
        journal.record_resumed(state, fast_forwarded=len(entries))
        try:
            while not state.done:
                engine.step(state)
            return engine.finalize(state)
        finally:
            journal.close()

    journal = SessionJournal(
        path, meta=meta, fresh=not config.journal_resume
    ).attach(state)
    try:
        return engine.run(state)
    finally:
        journal.close()
