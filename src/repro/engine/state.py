"""The state threaded through the edit pipeline, and its outputs.

:class:`EditState` is the single mutable object every :class:`~repro.engine
.stages.Stage` reads and writes; :class:`IterationRecord` /
:class:`FroteResult` are the per-iteration and run-level outputs (defined
here, re-exported from :mod:`repro.core.frote` for compatibility); and
:class:`ProgressEvent` is the structured notification the engine emits to
session listeners — the generalization of the old single ``eval_callback``.
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.audit import EditAudit, RowProvenance
from repro.data.builder import DatasetBuilder
from repro.data.dataset import Dataset
from repro.engine.delta import DatasetDelta, DeltaJournal
from repro.rules.ruleset import FeedbackRuleSet


@dataclass(frozen=True)
class IterationRecord:
    """One augmentation-loop iteration for progress analysis (paper Fig. 9)."""

    iteration: int
    candidate_loss: float
    accepted: bool
    n_generated: int
    n_added_total: int
    external_score: float | None = None  # eval_callback output, if any


@dataclass
class FroteResult:
    """Output of a FROTE run."""

    dataset: Dataset  # the augmented dataset D̂
    model: Any  # TableModel trained on D̂
    initial_evaluation: Any
    final_evaluation: Any
    history: list[IterationRecord] = field(default_factory=list)
    n_added: int = 0
    iterations: int = 0
    n_relabelled: int = 0
    n_dropped: int = 0
    provenance: RowProvenance | None = None
    #: The feedback rule set the run *ended* with.  Differs from the
    #: starting set when streaming feedback applied ruleset deltas; the
    #: deltas themselves are in ``ruleset_log``.
    frs: FeedbackRuleSet | None = None
    ruleset_log: list = field(default_factory=list)
    #: Every :class:`~repro.engine.migration.SchemaMigrationRecord`
    #: applied during the run, in order — the feature-space timeline
    #: (empty for frozen-schema runs).
    schema_log: list = field(default_factory=list)

    @property
    def accepted_iterations(self) -> int:
        return sum(1 for rec in self.history if rec.accepted)

    def audit(self, frs: FeedbackRuleSet, *, mod_strategy: str = "", **metadata) -> EditAudit:
        """Governance-ready audit record of this edit (paper §6)."""
        return EditAudit.from_run(
            frs, self, mod_strategy=mod_strategy, metadata=metadata
        )

    @property
    def added_fraction(self) -> float:
        """Δ#Ins / |D| as reported in the paper's Table 4."""
        base = self.dataset.n - self.n_added
        return self.n_added / base if base else 0.0


@dataclass(frozen=True)
class ProgressEvent:
    """A structured notification from the edit loop.

    ``kind`` is one of ``"started"``, ``"accepted"``, ``"rejected"``,
    ``"empty-batch"``, ``"ruleset"``, ``"schema"``, or ``"finished"``.
    ``record`` is the :class:`IterationRecord` just appended (``None`` for
    ``started`` / ``ruleset`` / ``schema`` / ``finished``); ``model`` and
    ``evaluation`` describe the *current best* model at emission time.
    """

    kind: str
    iteration: int
    n_added: int
    record: IterationRecord | None = None
    model: Any = None
    evaluation: Any = None
    #: Wall-clock seconds per pipeline stage for the iteration just
    #: finished (stage class name → seconds); ``None`` for events emitted
    #: outside the loop or by drivers that do not time stages.
    stage_seconds: dict[str, float] | None = None
    #: The :class:`~repro.feedback.delta.RuleSetDelta` just applied
    #: (``"ruleset"`` events only).
    ruleset: Any = None
    #: The :class:`~repro.engine.migration.SchemaMigrationRecord` just
    #: applied (``"schema"`` events only).
    schema: Any = None

    @property
    def accepted(self) -> bool:
        return self.kind == "accepted"

    @property
    def iteration_seconds(self) -> float | None:
        """Total stage wall time of the iteration (``None`` when untimed)."""
        if self.stage_seconds is None:
            return None
        return sum(self.stage_seconds.values())


EventListener = Callable[[ProgressEvent], None]


@dataclass(frozen=True)
class ListenerError:
    """One swallowed listener exception, attributable to its event.

    ``event_kind`` and ``iteration`` locate exactly which notification
    the listener dropped — so a gap in a consumer (a journal missing an
    iteration record, a serving queue missing an event) can be traced to
    the failure that caused it instead of guessing from counts.
    """

    event_kind: str
    iteration: int
    error: Exception

    def __iter__(self):
        # Back-compat with the old ``(kind, exc)`` tuple entries:
        # ``for kind, exc in state.listener_errors`` keeps working.
        return iter((self.event_kind, self.error))

# Process-global source of dataset-version cache tokens (see
# EditState.bump_dataset_version).
_DATASET_VERSIONS = itertools.count(1)


@dataclass
class EditState:
    """Everything the pipeline stages share while editing one dataset.

    A stage may read or write any field; the conventional flow is
    documented per field group below.  Fields default so a state can be
    built incrementally by :class:`~repro.engine.session.EditSession` or
    directly in tests.
    """

    # Inputs — fixed for the whole run.
    input_dataset: Dataset = None  # type: ignore[assignment]
    frs: FeedbackRuleSet = None  # type: ignore[assignment]
    algorithm: Callable[[Dataset], Any] = None  # type: ignore[assignment]
    config: Any = None  # FroteConfig
    rng: np.random.Generator = None  # type: ignore[assignment]

    # The evolving dataset and model.  ``active`` is a snapshot of
    # ``active_builder`` when the default stages drive the loop; custom
    # stage chains may leave the builder unset and assign ``active``
    # directly (the concat path).
    active: Dataset | None = None
    active_builder: DatasetBuilder | None = None
    model: Any = None
    evaluation: Any = None
    initial_evaluation: Any = None
    best_loss: float = float("inf")

    # Budgets (set by ModificationStage, or by the session on warm start).
    eta: int = 0
    quota: int = 0
    max_iteration: int = 0

    # Strategies (built from the config registries unless pre-seeded).
    selector: Any = None
    objective: Callable[[Any, Any], float] | None = None

    # Per-rule working set, refreshed whenever ``population_stale``.
    bp: Any = None  # BasePopulation
    generators: list = field(default_factory=list)
    pools: list = field(default_factory=list)  # per-rule base-population tables
    population_stale: bool = True

    # Iteration-scoped caches.  ``dataset_version`` moves to a fresh
    # process-globally-unique value whenever ``active`` changes (setup and
    # every accepted batch); anything derived purely from the active
    # dataset — model predictions, the FRS row assignment, fitted
    # neighbour indices — is memoized against it so rejected iterations
    # never recompute unchanged work.  ``journal`` records *how* each
    # version relates to its parent (appended row range vs rebuild), so
    # caches can extend themselves by the delta instead of starting over
    # (see :meth:`record_append`).  The version default is drawn from the
    # same counter so two states never share a token even before setup.
    dataset_version: int = field(default_factory=lambda: next(_DATASET_VERSIONS))
    journal: DeltaJournal = field(default_factory=DeltaJournal)
    predictions_cache: tuple[int, Any, np.ndarray] | None = None
    assign_cache: tuple[int, np.ndarray] | None = None
    evaluation_cache: tuple[int, Any, Any, Any] | None = None
    stage_seconds: dict[str, float] = field(default_factory=dict)

    # Streaming rule feedback (None unless the session enabled it):
    # ``feedback`` is the run's :class:`~repro.feedback.pipeline
    # .FeedbackPipeline`, drained by ``FeedbackStage`` at iteration
    # boundaries; ``ruleset_log`` accumulates every applied
    # :class:`~repro.feedback.delta.RuleSetDelta` in order — the run's
    # rule timeline.
    feedback: Any = None
    ruleset_log: list = field(default_factory=list)

    # Schema evolution (see repro.engine.migration): the content-hashed
    # :class:`~repro.data.evolution.SchemaVersion` lineage node of the
    # active dataset's schema (``None`` until the first migration — a
    # frozen-schema run never touches it), and the ordered log of applied
    # :class:`~repro.engine.migration.SchemaMigrationRecord` s.
    schema_version: Any = None
    schema_log: list = field(default_factory=list)

    # Transient slots written by one stage, consumed by the next.
    predictions: np.ndarray | None = None
    per_rule_positions: list = field(default_factory=list)
    batch: Any = None  # GeneratedBatch
    per_rule_counts: list = field(default_factory=list)

    # Bookkeeping.
    provenance: RowProvenance | None = None
    history: list[IterationRecord] = field(default_factory=list)
    iteration: int = 0
    run_start_iteration: int = 0  # first iteration of *this* run (warm starts resume later)
    n_added: int = 0
    n_relabelled: int = 0
    n_dropped: int = 0
    warm_start: bool = False
    stopped: bool = False

    # Notifications.
    eval_callback: Callable[[Any], float] | None = None
    listeners: list[EventListener] = field(default_factory=list)
    #: :class:`ListenerError` records (event kind, iteration, exception)
    #: from listeners that raised during :meth:`emit`.  Listener failures
    #: are *isolated*: the engine's own bookkeeping (history append,
    #: iteration advance, cache seeding) must never be corrupted by
    #: observer code, so exceptions are recorded here (and warned about
    #: once per listener) instead of propagating mid-step.
    listener_errors: list[ListenerError] = field(default_factory=list)
    _warned_listener_ids: set = field(default_factory=set, repr=False)

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """Loop guard of Algorithm 1: τ exhausted, quota used, or stopped."""
        return (
            self.stopped
            or self.iteration >= self.max_iteration
            or self.n_added > self.quota
        )

    @property
    def incremental(self) -> bool:
        """Whether the opt-in incremental compute path is enabled
        (``FroteConfig(incremental=True)``): partial model refits and
        delta-extended prediction caches.  The always-exact delta
        machinery — O(batch) appends and incremental FRS assignment — is
        on regardless."""
        return bool(getattr(self.config, "incremental", False))

    # ------------------------------------------------------------------ #
    # The delta journal: every mutation of ``active`` is recorded so
    # consumers can ask "what changed since version v?".
    def record_rebuild(self, provenance: str = "") -> DatasetDelta:
        """Move to a fresh dataset version sharing nothing with the last.

        Called whenever ``active`` is (re)established wholesale — setup,
        modification, warm start.  Every memoized value keyed on the old
        version (predictions, FRS assignment, fitted neighbour indices)
        is recomputed lazily on next use, and the append builder is
        dropped — a rebuilt ``active`` no longer corresponds to the
        builder's rows, so staging onto them would resurrect stale data
        (the acceptance stage re-establishes a builder on the next
        accepted batch).  Versions are drawn from a process-global
        counter so tokens never collide across states — a strategy
        instance shared between sessions (``with_selector`` accepts
        instances) cannot be handed a stale cache hit.
        """
        parent = self.dataset_version
        self.dataset_version = next(_DATASET_VERSIONS)
        self.predictions_cache = None
        self.assign_cache = None
        self.active_builder = None
        return self.journal.record_rebuild(parent, self.dataset_version, provenance)

    def record_append(self, n_appended: int, provenance: str = "") -> DatasetDelta:
        """Move to a fresh dataset version that appended ``n_appended`` rows.

        Unlike :meth:`record_rebuild`, caches are *not* cleared: the
        journal remembers the appended row range, and cache reads extend
        the memoized value over just those rows (assignment always;
        predictions only when the cached model is the live one).  Call
        *after* ``active`` already reflects the appended rows.
        """
        parent = self.dataset_version
        n = self.active.n
        self.dataset_version = next(_DATASET_VERSIONS)
        # A prediction cache can only be extended for the model object it
        # was computed with; acceptance re-seeds it for the new model.
        return self.journal.record_append(
            parent, self.dataset_version, n - n_appended, n, provenance
        )

    def record_schema_delta(self, schema_delta: Any, provenance: str = "") -> DatasetDelta:
        """Move to a fresh dataset version across a schema migration.

        Row count and identity are preserved but the feature space
        changed, so the append builder (whose staged columns follow the
        old schema) is dropped — the acceptance stage re-homes the
        active dataset on the next accepted batch.  Cache survival is
        *selective*, decided per delta kind by
        :func:`repro.engine.migration.apply_schema_delta` (which calls
        this); the journal entry carries the schema delta so any other
        consumer can classify for itself.
        """
        parent = self.dataset_version
        self.dataset_version = next(_DATASET_VERSIONS)
        self.active_builder = None
        return self.journal.record_schema(
            parent, self.dataset_version, schema_delta, provenance
        )

    def make_builder(self, dataset: Dataset) -> DatasetBuilder:
        """Home ``dataset`` in a fresh append builder under the config's
        storage policy.

        With ``FroteConfig(max_resident_mb=...)`` the builder shards its
        column buffers and spills cold chunks to memory-mapped files
        (the out-of-core path); otherwise storage is dense, exactly as
        before.  A fresh policy (and spill directory) per builder keeps
        residency accounting scoped to the builder's own shards — a
        rebuild drops the old builder, and its spill files vanish once
        no snapshot references them.
        """
        from repro.data.shards import spill_policy_for

        return DatasetBuilder.from_dataset(
            dataset, policy=spill_policy_for(self.config)
        )

    def bump_dataset_version(self) -> None:
        """Invalidate every active-dataset-derived cache.

        .. deprecated::
            Compatibility shim for pre-delta custom stages; equivalent to
            ``record_rebuild("bump")``.  New code should record an
            explicit :class:`~repro.engine.delta.DatasetDelta` via
            :meth:`record_append` / :meth:`record_rebuild` so caches can
            stay warm across accepted batches (see ``docs/migration.md``).
        """
        self.record_rebuild("bump")

    # ------------------------------------------------------------------ #
    def active_predictions(self) -> np.ndarray:
        """Current model's predictions on the active dataset, memoized.

        The (model, active) pair only changes when a batch is accepted, so
        between acceptances every iteration reuses one prediction pass.
        After an acceptance the cache is version-stale but — in
        incremental mode — extendable: see :meth:`predict_cached`.
        """
        return self.predict_cached()

    def predict_cached(self) -> np.ndarray:
        """Delta-aware memoized predictions of ``model`` on ``active``.

        Cache hits require the same dataset version *and* the same model
        object.  On a version miss where the cached model **is** the live
        model and the journal proves the path is append-only, only the
        appended rows are predicted and the cached array is extended —
        O(batch) instead of O(n).  The extension is gated on
        :attr:`incremental` because row-sliced prediction, while
        mathematically identical, is not guaranteed bit-identical for
        every BLAS-backed model; the default path keeps the seed's exact
        full-pass behaviour.
        """
        cached = self.predictions_cache
        if cached is not None:
            version, model, preds = cached
            if model is self.model:
                if version == self.dataset_version:
                    return preds
                if self.incremental:
                    span = self.journal.appended_between(
                        version, self.dataset_version
                    )
                    if span is not None and span[0] == preds.shape[0]:
                        fresh = self.model.predict(
                            self.active.X.row_slice(span[0], span[1])
                        )
                        preds = np.concatenate([preds, fresh])
                        self.predictions_cache = (
                            self.dataset_version, self.model, preds,
                        )
                        return preds
        preds = self.model.predict(self.active.X)
        self.predictions_cache = (self.dataset_version, self.model, preds)
        return preds

    def seed_predictions(self, model: Any, preds: np.ndarray) -> None:
        """Install already-computed predictions of ``model`` on ``active``.

        The acceptance stage predicts every candidate model on the active
        dataset anyway; seeding the cache with that pass means the next
        iteration's selection step starts warm — and in incremental mode
        extends it over the accepted batch instead of re-predicting n
        rows.
        """
        self.predictions_cache = (self.dataset_version, model, preds)

    def active_assignment(self) -> np.ndarray:
        """First-match FRS rule assignment over the active dataset, memoized.

        Rule coverage masks are pure per-row functions of the active
        table, so on an append-only version change the cached assignment
        is *extended* by assigning just the appended rows — bit-identical
        to a full pass, and O(batch · rules) instead of O(n · rules).
        Full recomputation only happens after a rebuild delta.
        """
        cached = self.assign_cache
        if cached is not None:
            version, assign = cached
            if version == self.dataset_version:
                return assign
            span = self.journal.appended_between(version, self.dataset_version)
            if span is not None and span[0] == assign.shape[0]:
                fresh = self.frs.assign(self.active.X.row_slice(span[0], span[1]))
                assign = np.concatenate([assign, fresh])
                self.assign_cache = (self.dataset_version, assign)
                return assign
        assign = self.frs.assign(self.active.X)
        self.assign_cache = (self.dataset_version, assign)
        return assign

    def evaluate_active(self) -> Any:
        """Current model's evaluation on (active dataset, FRS), memoized.

        Keyed on (dataset version, model identity, rule-set identity), so
        the boundary work of applying a ruleset delta is free when
        nothing changed since the last evaluation, and a delta-refreshed
        evaluation is reused verbatim by :meth:`EditEngine.finalize`.
        The computation routes through the prediction and assignment
        caches exactly like the setup/finalize paths always did — values
        are bit-identical to an uncached call.
        """
        cached = self.evaluation_cache
        if (
            cached is not None
            and cached[0] == self.dataset_version
            and cached[1] is self.model
            and cached[2] is self.frs
        ):
            return cached[3]
        from repro.core.objective import evaluate_predictions

        evaluation = evaluate_predictions(
            self.active_predictions(), self.active, self.frs,
            assign=self.active_assignment(),
        )
        self.evaluation_cache = (
            self.dataset_version, self.model, self.frs, evaluation,
        )
        return evaluation

    def loss_of(self, evaluation: Any) -> float:
        """Score an evaluation with the configured acceptance objective."""
        if self.objective is None:
            from repro.engine.registry import OBJECTIVES

            self.objective = OBJECTIVES.get(self.config.objective)
        return self.objective(evaluation, self.config)

    def emit(
        self,
        kind: str,
        record: IterationRecord | None = None,
        *,
        ruleset: Any = None,
        schema: Any = None,
    ) -> None:
        """Notify all listeners, isolating any that raise.

        A listener exception must not corrupt engine state mid-step
        (events fire between a history append and the iteration advance,
        and the serving layer fans them out to per-session queues), so
        failures are swallowed into :attr:`listener_errors` and reported
        via a :class:`RuntimeWarning` once per listener; every remaining
        listener still sees the event.
        """
        if not self.listeners:
            return
        event = ProgressEvent(
            kind=kind,
            iteration=self.iteration,
            n_added=self.n_added,
            record=record,
            model=self.model,
            evaluation=self.evaluation,
            stage_seconds=dict(self.stage_seconds) if self.stage_seconds else None,
            ruleset=ruleset,
            schema=schema,
        )
        for listener in self.listeners:
            try:
                listener(event)
            except Exception as exc:
                self.listener_errors.append(
                    ListenerError(kind, self.iteration, exc)
                )
                if id(listener) not in self._warned_listener_ids:
                    self._warned_listener_ids.add(id(listener))
                    warnings.warn(
                        f"progress listener {listener!r} raised "
                        f"{type(exc).__name__}: {exc} (event {kind!r}); "
                        "suppressed — listeners must not affect the edit loop",
                        RuntimeWarning,
                        stacklevel=2,
                    )

    def to_result(self, final_evaluation: Any) -> FroteResult:
        return FroteResult(
            dataset=self.active,
            model=self.model,
            initial_evaluation=self.initial_evaluation,
            final_evaluation=final_evaluation,
            history=self.history,
            n_added=self.n_added,
            iterations=self.iteration,
            n_relabelled=self.n_relabelled,
            n_dropped=self.n_dropped,
            provenance=self.provenance,
            frs=self.frs,
            ruleset_log=list(self.ruleset_log),
            schema_log=list(self.schema_log),
        )
