"""The state threaded through the edit pipeline, and its outputs.

:class:`EditState` is the single mutable object every :class:`~repro.engine
.stages.Stage` reads and writes; :class:`IterationRecord` /
:class:`FroteResult` are the per-iteration and run-level outputs (defined
here, re-exported from :mod:`repro.core.frote` for compatibility); and
:class:`ProgressEvent` is the structured notification the engine emits to
session listeners — the generalization of the old single ``eval_callback``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.core.audit import EditAudit, RowProvenance
from repro.data.dataset import Dataset
from repro.rules.ruleset import FeedbackRuleSet


@dataclass(frozen=True)
class IterationRecord:
    """One augmentation-loop iteration for progress analysis (paper Fig. 9)."""

    iteration: int
    candidate_loss: float
    accepted: bool
    n_generated: int
    n_added_total: int
    external_score: float | None = None  # eval_callback output, if any


@dataclass
class FroteResult:
    """Output of a FROTE run."""

    dataset: Dataset  # the augmented dataset D̂
    model: Any  # TableModel trained on D̂
    initial_evaluation: Any
    final_evaluation: Any
    history: list[IterationRecord] = field(default_factory=list)
    n_added: int = 0
    iterations: int = 0
    n_relabelled: int = 0
    n_dropped: int = 0
    provenance: RowProvenance | None = None

    @property
    def accepted_iterations(self) -> int:
        return sum(1 for rec in self.history if rec.accepted)

    def audit(self, frs: FeedbackRuleSet, *, mod_strategy: str = "", **metadata) -> EditAudit:
        """Governance-ready audit record of this edit (paper §6)."""
        return EditAudit.from_run(
            frs, self, mod_strategy=mod_strategy, metadata=metadata
        )

    @property
    def added_fraction(self) -> float:
        """Δ#Ins / |D| as reported in the paper's Table 4."""
        base = self.dataset.n - self.n_added
        return self.n_added / base if base else 0.0


@dataclass(frozen=True)
class ProgressEvent:
    """A structured notification from the edit loop.

    ``kind`` is one of ``"started"``, ``"accepted"``, ``"rejected"``,
    ``"empty-batch"``, or ``"finished"``.  ``record`` is the
    :class:`IterationRecord` just appended (``None`` for ``started`` /
    ``finished``); ``model`` and ``evaluation`` describe the *current best*
    model at emission time.
    """

    kind: str
    iteration: int
    n_added: int
    record: IterationRecord | None = None
    model: Any = None
    evaluation: Any = None

    @property
    def accepted(self) -> bool:
        return self.kind == "accepted"


EventListener = Callable[[ProgressEvent], None]

# Process-global source of dataset-version cache tokens (see
# EditState.bump_dataset_version).
_DATASET_VERSIONS = itertools.count(1)


@dataclass
class EditState:
    """Everything the pipeline stages share while editing one dataset.

    A stage may read or write any field; the conventional flow is
    documented per field group below.  Fields default so a state can be
    built incrementally by :class:`~repro.engine.session.EditSession` or
    directly in tests.
    """

    # Inputs — fixed for the whole run.
    input_dataset: Dataset = None  # type: ignore[assignment]
    frs: FeedbackRuleSet = None  # type: ignore[assignment]
    algorithm: Callable[[Dataset], Any] = None  # type: ignore[assignment]
    config: Any = None  # FroteConfig
    rng: np.random.Generator = None  # type: ignore[assignment]

    # The evolving dataset and model.
    active: Dataset | None = None
    model: Any = None
    evaluation: Any = None
    initial_evaluation: Any = None
    best_loss: float = float("inf")

    # Budgets (set by ModificationStage, or by the session on warm start).
    eta: int = 0
    quota: int = 0
    max_iteration: int = 0

    # Strategies (built from the config registries unless pre-seeded).
    selector: Any = None
    objective: Callable[[Any, Any], float] | None = None

    # Per-rule working set, refreshed whenever ``population_stale``.
    bp: Any = None  # BasePopulation
    generators: list = field(default_factory=list)
    pools: list = field(default_factory=list)  # per-rule base-population tables
    population_stale: bool = True

    # Iteration-scoped caches.  ``dataset_version`` moves to a fresh
    # process-globally-unique value whenever ``active`` changes (setup and
    # every accepted batch); anything derived purely from the active
    # dataset — model predictions, the FRS row assignment, fitted
    # neighbour indices — is memoized against it so rejected iterations
    # never recompute unchanged work.  The default is drawn from the same
    # counter so two states never share a token even before setup runs.
    dataset_version: int = field(default_factory=lambda: next(_DATASET_VERSIONS))
    predictions_cache: tuple[int, np.ndarray] | None = None
    assign_cache: tuple[int, np.ndarray] | None = None

    # Transient slots written by one stage, consumed by the next.
    predictions: np.ndarray | None = None
    per_rule_positions: list = field(default_factory=list)
    batch: Any = None  # GeneratedBatch
    per_rule_counts: list = field(default_factory=list)

    # Bookkeeping.
    provenance: RowProvenance | None = None
    history: list[IterationRecord] = field(default_factory=list)
    iteration: int = 0
    run_start_iteration: int = 0  # first iteration of *this* run (warm starts resume later)
    n_added: int = 0
    n_relabelled: int = 0
    n_dropped: int = 0
    warm_start: bool = False
    stopped: bool = False

    # Notifications.
    eval_callback: Callable[[Any], float] | None = None
    listeners: list[EventListener] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """Loop guard of Algorithm 1: τ exhausted, quota used, or stopped."""
        return (
            self.stopped
            or self.iteration >= self.max_iteration
            or self.n_added > self.quota
        )

    def bump_dataset_version(self) -> None:
        """Invalidate every active-dataset-derived cache.

        Called whenever ``active`` is (re)established — at setup and after
        each accepted batch.  Memoized values keyed on the old version
        (predictions, FRS assignment, fitted neighbour indices) are
        recomputed lazily on next use.  Versions are drawn from a
        process-global counter so tokens never collide across states —
        a strategy instance shared between sessions (``with_selector``
        accepts instances) cannot be handed a stale cache hit.
        """
        self.dataset_version = next(_DATASET_VERSIONS)
        self.predictions_cache = None
        self.assign_cache = None

    def active_predictions(self) -> np.ndarray:
        """Current model's predictions on the active dataset, memoized.

        The (model, active) pair only changes when a batch is accepted, so
        between acceptances every iteration reuses one prediction pass.
        """
        cached = self.predictions_cache
        if cached is not None and cached[0] == self.dataset_version:
            return cached[1]
        preds = self.model.predict(self.active.X)
        self.predictions_cache = (self.dataset_version, preds)
        return preds

    def active_assignment(self) -> np.ndarray:
        """First-match FRS rule assignment over the active dataset, memoized.

        Rule coverage masks are pure functions of the active table, so the
        assignment is recomputed only when ``dataset_version`` moves.
        """
        cached = self.assign_cache
        if cached is not None and cached[0] == self.dataset_version:
            return cached[1]
        assign = self.frs.assign(self.active.X)
        self.assign_cache = (self.dataset_version, assign)
        return assign

    def loss_of(self, evaluation: Any) -> float:
        """Score an evaluation with the configured acceptance objective."""
        if self.objective is None:
            from repro.engine.registry import OBJECTIVES

            self.objective = OBJECTIVES.get(self.config.objective)
        return self.objective(evaluation, self.config)

    def emit(self, kind: str, record: IterationRecord | None = None) -> None:
        """Notify all listeners; listeners must not raise."""
        if not self.listeners:
            return
        event = ProgressEvent(
            kind=kind,
            iteration=self.iteration,
            n_added=self.n_added,
            record=record,
            model=self.model,
            evaluation=self.evaluation,
        )
        for listener in self.listeners:
            listener(event)

    def to_result(self, final_evaluation: Any) -> FroteResult:
        return FroteResult(
            dataset=self.active,
            model=self.model,
            initial_evaluation=self.initial_evaluation,
            final_evaluation=final_evaluation,
            history=self.history,
            n_added=self.n_added,
            iterations=self.iteration,
            n_relabelled=self.n_relabelled,
            n_dropped=self.n_dropped,
            provenance=self.provenance,
        )
