"""The pluggable edit engine: registries, pipeline stages, and the session
façade.

Three layers, lowest first:

* :mod:`repro.engine.registry` — string-keyed strategy registries
  (:data:`SELECTORS`, :data:`MODIFIERS`, :data:`SAMPLERS`,
  :data:`OBJECTIVES`) with ``register_*`` decorators for user plugins;
* :mod:`repro.engine.stages` — the editing loop decomposed into
  :class:`Stage` objects over a shared :class:`EditState`, driven by
  :class:`EditEngine`;
* :mod:`repro.engine.session` — the fluent :class:`EditSession` façade
  behind :func:`repro.edit`.

The legacy :class:`repro.FROTE` API is a thin compatibility layer over
this package.
"""

from repro.engine.registry import (
    DISTANCE_BACKENDS,
    MODIFIERS,
    OBJECTIVES,
    SAMPLERS,
    SELECTORS,
    InfoRegistry,
    Registry,
    RegistryError,
    UnknownEntryError,
    register_distance_backend,
    register_modifier,
    register_objective,
    register_sampler,
    register_selector,
)
from repro.engine.delta import DatasetDelta, DeltaJournal
from repro.engine.migration import SchemaMigrationRecord, apply_schema_delta
from repro.engine.session import EditSession, edit
from repro.engine.stages import (
    AcceptanceStage,
    EditEngine,
    FeedbackStage,
    GenerationStage,
    ModificationStage,
    PreselectStage,
    SelectionStage,
    Stage,
    default_setup_stages,
    default_stages,
)
from repro.engine.state import (
    EditState,
    FroteResult,
    IterationRecord,
    ListenerError,
    ProgressEvent,
)

__all__ = [
    "Registry",
    "InfoRegistry",
    "RegistryError",
    "UnknownEntryError",
    "SELECTORS",
    "MODIFIERS",
    "SAMPLERS",
    "OBJECTIVES",
    "DISTANCE_BACKENDS",
    "register_selector",
    "register_modifier",
    "register_sampler",
    "register_objective",
    "register_distance_backend",
    "Stage",
    "FeedbackStage",
    "ModificationStage",
    "PreselectStage",
    "SelectionStage",
    "GenerationStage",
    "AcceptanceStage",
    "EditEngine",
    "default_stages",
    "default_setup_stages",
    "EditState",
    "DatasetDelta",
    "DeltaJournal",
    "SchemaMigrationRecord",
    "apply_schema_delta",
    "ListenerError",
    "ProgressEvent",
    "IterationRecord",
    "FroteResult",
    "EditSession",
    "edit",
]
