"""The dataset delta journal: "what changed since version v?".

Every mutation of the edit loop's active dataset is recorded as a
:class:`DatasetDelta` — either an **append** of a contiguous row range
(an accepted batch) or a **rebuild** (setup, modification, warm start:
anything that may have touched arbitrary rows).  Deltas form a version
graph keyed by the process-global dataset-version tokens that
:class:`~repro.engine.state.EditState` hands out, and
:class:`DeltaJournal.appended_between` answers the one question every
cache needs: *is the dataset at version ``v_new`` exactly the dataset at
``v_old`` plus appended rows — and if so, which rows?*

Consumers (memoized predictions, the FRS row assignment, fitted neighbour
indices, partial model refits) use the answer to extend cached values by
the delta instead of recomputing them over the full dataset, which is the
core of the incremental compute path.  Any non-append mutation, or a
version the journal no longer remembers, answers ``None`` — the caller
falls back to a full recompute, so the journal can never produce a wrong
result, only a slower one.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["DatasetDelta", "DeltaJournal"]

#: Delta kinds: ``append`` adds rows ``[start, stop)`` at the end of the
#: parent version's dataset; ``rebuild`` invalidates everything;
#: ``schema`` changes the feature space itself (row count preserved) —
#: the recorded :class:`~repro.data.evolution.SchemaDelta` rides along so
#: consumers can classify what survives (see ``EditState
#: .apply_schema_delta``).
APPEND = "append"
REBUILD = "rebuild"
SCHEMA = "schema"


@dataclass(frozen=True)
class DatasetDelta:
    """One recorded mutation of the active dataset.

    Attributes
    ----------
    version:
        Dataset-version token *after* the mutation.
    parent:
        Token of the version this delta was applied to.
    start, stop:
        Appended row range ``[start, stop)`` for ``kind="append"``;
        ``(0, 0)`` for rebuilds.
    kind:
        ``"append"`` or ``"rebuild"``.
    provenance:
        Who recorded the delta (``"accepted-batch"``, ``"setup"``, ...),
        for audits and progress displays.
    """

    version: int
    parent: int
    start: int = 0
    stop: int = 0
    kind: str = APPEND
    provenance: str = ""
    #: The :class:`~repro.data.evolution.SchemaDelta` behind a
    #: ``kind="schema"`` entry (``None`` for row deltas).
    schema_delta: object = None

    @property
    def n_appended(self) -> int:
        """Number of rows this delta appended (0 for rebuilds)."""
        return self.stop - self.start

    @property
    def is_append(self) -> bool:
        return self.kind == APPEND

    @property
    def is_schema(self) -> bool:
        return self.kind == SCHEMA


class DeltaJournal:
    """Bounded log of :class:`DatasetDelta` s forming a version graph.

    Parameters
    ----------
    max_entries:
        Oldest deltas are evicted past this size; asking about an evicted
        version simply answers "unknown" (→ full recompute).  The edit
        loop's consumers are at most a handful of versions behind, so a
        small bound suffices.
    """

    def __init__(self, *, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._deltas: OrderedDict[int, DatasetDelta] = OrderedDict()

    def __len__(self) -> int:
        return len(self._deltas)

    def __iter__(self):
        return iter(self._deltas.values())

    # ------------------------------------------------------------------ #
    def record(self, delta: DatasetDelta) -> DatasetDelta:
        """Add a delta to the journal (evicting the oldest past the bound)."""
        self._deltas[delta.version] = delta
        while len(self._deltas) > self.max_entries:
            self._deltas.popitem(last=False)
        return delta

    def record_append(
        self, parent: int, version: int, start: int, stop: int, provenance: str = ""
    ) -> DatasetDelta:
        """Record that ``version`` is ``parent`` plus rows ``[start, stop)``."""
        if stop < start:
            raise ValueError(f"invalid appended range [{start}, {stop})")
        return self.record(
            DatasetDelta(version, parent, start, stop, APPEND, provenance)
        )

    def record_rebuild(
        self, parent: int, version: int, provenance: str = ""
    ) -> DatasetDelta:
        """Record that ``version`` shares nothing cacheable with ``parent``."""
        return self.record(
            DatasetDelta(version, parent, 0, 0, REBUILD, provenance)
        )

    def record_schema(
        self, parent: int, version: int, schema_delta, provenance: str = ""
    ) -> DatasetDelta:
        """Record that ``version`` is ``parent`` after a schema migration.

        Row count and row identity are preserved, but columns changed;
        :meth:`appended_between` treats the boundary as uncrossable (the
        safe answer), while schema-aware consumers can inspect
        ``delta.schema_delta`` to decide per-cache survival.
        """
        return self.record(
            DatasetDelta(version, parent, 0, 0, SCHEMA, provenance, schema_delta)
        )

    # ------------------------------------------------------------------ #
    def get(self, version: int) -> DatasetDelta | None:
        """The delta that *produced* ``version``, if still remembered."""
        return self._deltas.get(version)

    def appended_between(self, old: int, new: int) -> tuple[int, int] | None:
        """Row range appended between versions ``old`` and ``new``.

        Returns ``(start, stop)`` — rows of the ``new``-version dataset
        not present at ``old`` — when the path from ``old`` to ``new``
        consists purely of appends; the ranges of a multi-append path are
        contiguous by construction, so they merge into one.  Equal
        versions answer ``(0, 0)``.  Returns ``None`` when a rebuild lies
        on the path or the path left the journal window.
        """
        if old == new:
            return (0, 0)
        stop: int | None = None
        start = 0
        cursor = new
        # Walk parent pointers; bounded by the journal size.
        for _ in range(len(self._deltas) + 1):
            delta = self._deltas.get(cursor)
            if delta is None or not delta.is_append:
                return None
            if stop is None:
                stop = delta.stop
            start = delta.start
            cursor = delta.parent
            if cursor == old:
                assert stop is not None
                return (start, stop)
        return None
