"""String-keyed strategy registries — the extension points of the engine.

FROTE's knobs (``selection``, ``mod_strategy``, the sampler used for
generation, the acceptance objective) were historically validated against
frozen allowlists.  This module replaces those with open registries: each
strategy family is a :class:`Registry` that user code extends with a
decorator, no edits under ``repro/`` required::

    from repro.engine import register_selector

    @register_selector("confidence")
    class ConfidenceSelector:
        def select(self, bp, eta, ctx):
            ...

    session = repro.edit(data).configure(selection="confidence")

Built-in strategies are pre-registered *lazily* (by dotted path), so merely
importing :mod:`repro.engine.registry` — e.g. to validate a
:class:`~repro.core.config.FroteConfig` — does not import the strategy
modules; the class is resolved on first :meth:`Registry.create`.
"""

from __future__ import annotations

import difflib
import importlib
from typing import Any, Callable, Iterator


class RegistryError(ValueError):
    """Unknown or conflicting strategy name (a :class:`ValueError`)."""


class UnknownEntryError(RegistryError, KeyError):
    """Unknown registry name.

    Doubles as a :class:`KeyError` so registries can back mapping-style
    lookups (``DATASETS[name]``, ``MODELS[name]``) without changing the
    exception contract of the legacy ``dict``-based APIs, while still
    carrying the registry's did-you-mean message.
    """

    def __str__(self) -> str:  # KeyError would repr()-quote the message
        return Exception.__str__(self)


class _LazyEntry:
    """A registration by dotted path, resolved on first use."""

    __slots__ = ("path",)

    def __init__(self, path: str) -> None:
        self.path = path

    def resolve(self) -> Any:
        module_name, _, attr = self.path.partition(":")
        module = importlib.import_module(module_name)
        return getattr(module, attr)


class Registry:
    """A named mapping from strategy names to factories.

    Parameters
    ----------
    kind:
        Human-readable family name used in error messages
        (``"selection strategy"``, ``"sampler"``, ...).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    def register(
        self, name: str, obj: Any = None, *, overwrite: bool = False
    ) -> Any:
        """Register ``obj`` under ``name``; usable as a decorator.

        Re-registering a name raises unless ``overwrite=True`` — except
        that resolving a lazy (dotted-path) placeholder with a concrete
        object is always allowed, so built-in modules may decorate their
        classes with the same names the registry pre-declares.
        """
        if obj is None:
            return lambda target: self.register(name, target, overwrite=overwrite)
        existing = self._entries.get(name)
        if existing is not None and not overwrite and not isinstance(existing, _LazyEntry):
            raise RegistryError(
                f"{self.kind} {name!r} is already registered "
                f"(pass overwrite=True to replace it)"
            )
        self._entries[name] = obj
        return obj

    def register_lazy(self, name: str, path: str) -> None:
        """Pre-declare a built-in under ``name`` as ``"module:attr"``."""
        if name not in self._entries:
            self._entries[name] = _LazyEntry(path)

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def names(self) -> tuple[str, ...]:
        """Registered names, sorted — lazy built-ins included."""
        return tuple(sorted(self._entries))

    def validate(self, name: str) -> str:
        """Check membership without importing anything; returns ``name``."""
        if name not in self._entries:
            raise UnknownEntryError(self._unknown_message(name))
        return name

    def get(self, name: str) -> Any:
        """The registered factory (resolving lazy entries in place)."""
        try:
            entry = self._entries[name]
        except KeyError:
            raise UnknownEntryError(self._unknown_message(name)) from None
        if isinstance(entry, _LazyEntry):
            entry = entry.resolve()
            self._entries[name] = entry
        return entry

    def create(self, name: str, /, *args, **kwargs) -> Any:
        """Instantiate the strategy: ``factory(*args, **kwargs)``.

        Non-callable registrations (e.g. plain function strategies wrapped
        in no class) are returned as-is when called with no arguments.
        """
        factory = self.get(name)
        if not callable(factory):
            if args or kwargs:
                raise TypeError(
                    f"{self.kind} {name!r} is not callable; "
                    f"cannot apply arguments {args} {kwargs}"
                )
            return factory
        return factory(*args, **kwargs)

    # ------------------------------------------------------------------ #
    def _unknown_message(self, name: str) -> str:
        known = self.names()
        msg = f"unknown {self.kind} {name!r}; registered: {', '.join(known) or '(none)'}"
        close = difflib.get_close_matches(name, known, n=2, cutoff=0.6)
        if not close:
            # Case-insensitive fallback: "lr" should still suggest 'LR'.
            folded = {k.lower(): k for k in known}
            close = [
                folded[c]
                for c in difflib.get_close_matches(
                    name.lower(), list(folded), n=2, cutoff=0.6
                )
            ]
        if close:
            quoted = " or ".join(repr(c) for c in close)
            msg += f" — did you mean {quoted}?"
        return msg


class InfoRegistry(Registry):
    """A :class:`Registry` of metadata entries with mapping-style access.

    Strategy registries store *factories*; some registries (datasets,
    models, run kinds) instead store descriptive info records that callers
    read directly.  This subclass adds the ``dict`` surface those callers
    expect — ``registry[name]``, ``.values()``, ``.items()`` — on top of
    the same did-you-mean error handling, so legacy ``DATASETS[name]``
    code keeps working against a live registry.
    """

    def __getitem__(self, name: str) -> Any:
        return self.get(name)

    def values(self) -> list[Any]:
        return [self.get(name) for name in self.names()]

    def items(self) -> list[tuple[str, Any]]:
        return [(name, self.get(name)) for name in self.names()]


# --------------------------------------------------------------------- #
# The strategy families of the edit engine.

SELECTORS = Registry("selection strategy")
MODIFIERS = Registry("modification strategy")
SAMPLERS = Registry("sampler")
OBJECTIVES = Registry("objective")
DISTANCE_BACKENDS = Registry("distance backend")


def _make_decorator(registry: Registry) -> Callable:
    def decorator(name: str, obj: Any = None, *, overwrite: bool = False) -> Any:
        return registry.register(name, obj, overwrite=overwrite)

    decorator.__name__ = f"register_{registry.kind.split()[0]}"
    decorator.__doc__ = f"Register a {registry.kind} by name (decorator form)."
    return decorator


register_selector = _make_decorator(SELECTORS)
register_modifier = _make_decorator(MODIFIERS)
register_sampler = _make_decorator(SAMPLERS)
register_objective = _make_decorator(OBJECTIVES)
register_distance_backend = _make_decorator(DISTANCE_BACKENDS)


# Built-ins, declared lazily so config validation needs no heavy imports.
SELECTORS.register_lazy("random", "repro.core.selection:RandomSelector")
SELECTORS.register_lazy("ip", "repro.core.selection:IPSelector")
SELECTORS.register_lazy("online", "repro.core.online_proxy:OnlineProxySelector")

MODIFIERS.register_lazy("none", "repro.core.modification:NoModification")
MODIFIERS.register_lazy("relabel", "repro.core.modification:RelabelModification")
MODIFIERS.register_lazy("drop", "repro.core.modification:DropModification")

SAMPLERS.register_lazy("smote", "repro.sampling.smote:SMOTE")
SAMPLERS.register_lazy("borderline", "repro.sampling.borderline:BorderlineSMOTE")
SAMPLERS.register_lazy("adasyn", "repro.sampling.adasyn:ADASYN")

OBJECTIVES.register_lazy("equal", "repro.core.objective:equal_weight_objective")
OBJECTIVES.register_lazy("weighted", "repro.core.objective:coverage_weighted_objective")

# Distance backends are registered as *instances* (singletons), not
# classes: warn-once / compiled-kernel state must persist across lookups.
DISTANCE_BACKENDS.register_lazy("numpy", "repro.neighbors.kernels:NUMPY_BACKEND")
DISTANCE_BACKENDS.register_lazy("numba", "repro.neighbors.kernels:NUMBA_BACKEND")
