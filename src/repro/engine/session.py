"""The fluent editing façade: ``repro.edit(dataset)...run()``.

:class:`EditSession` assembles an :class:`~repro.engine.state.EditState`
and an :class:`~repro.engine.stages.EditEngine` from chained configuration
calls::

    result = (
        repro.edit(data)
        .with_rules("age < 29 AND education = 'bachelors' => >50K")
        .with_algorithm("RF")
        .configure(tau=30, q=0.5)
        .on_iteration(lambda ev: print(ev.iteration, ev.kind))
        .run()
    )

Sessions support incremental rule addition (each ``with_rules`` call
appends — the multi-expert scenario), warm-starting from a prior
:class:`~repro.engine.state.FroteResult`, structured progress events, and
fully pluggable strategies/stages.  ``run()`` leaves the session reusable:
calling it again replays the same edit (same seed), while
``resume_from(result)`` continues augmenting where a previous run stopped.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Iterable

from repro.data.dataset import Dataset
from repro.engine.stages import EditEngine, Stage
from repro.engine.state import EditState, EventListener, FroteResult, ProgressEvent
from repro.rules.rule import FeedbackRule
from repro.rules.ruleset import FeedbackRuleSet


class EditSession:
    """Builder for one model edit over ``dataset``.

    Every ``with_*`` / ``configure`` / ``on_*`` method returns ``self`` so
    calls chain; nothing heavy happens until :meth:`run`.
    """

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self._rules: list[FeedbackRule] = []
        self._algorithm: Callable[[Dataset], Any] | None = None
        self._config_kwargs: dict[str, Any] = {}
        self._listeners: list[EventListener] = []
        self._eval_callback: Callable[[Any], float] | None = None
        self._selector: Any = None
        self._engine: EditEngine | None = None
        self._stages: tuple[Stage, ...] | None = None
        self._prior: FroteResult | None = None
        self._resolve_strategy: str | None = None
        # Streaming feedback (see with_feedback / with_scheduled_rules).
        self._feedback_enabled = False
        self._feedback_sources: list[Any] = []
        self._feedback_policy: Any = "unanimous"
        self._feedback_policy_kwargs: dict[str, Any] = {}
        self._feedback_resolve: str = "carve"
        self._feedback_mixture_weight: float = 0.5
        self._scheduled_rules: dict[int, list[Any]] = {}
        self._schema_migrations: dict[int, list[Any]] = {}

    # ------------------------------------------------------------------ #
    # Rules (incremental — the multi-expert scenario).
    def with_rules(self, *rules: Any) -> "EditSession":
        """Append feedback rules: :class:`FeedbackRule` objects, whole
        :class:`FeedbackRuleSet` s, plain rule strings (parsed against the
        dataset's schema), or iterables of any of those."""
        for rule in rules:
            self._add_rule(rule)
        return self

    def _add_rule(self, rule: Any) -> None:
        self._rules.extend(self._coerce_rules(rule))

    def _coerce_rules(self, rule: Any) -> list[FeedbackRule]:
        if isinstance(rule, FeedbackRule):
            return [rule]
        if isinstance(rule, FeedbackRuleSet):
            return list(rule)
        if isinstance(rule, str):
            from repro.rules.parser import parse_rule

            return [parse_rule(rule, self.dataset.X.schema, self.dataset.label_names)]
        if isinstance(rule, Iterable):
            out: list[FeedbackRule] = []
            for r in rule:
                out.extend(self._coerce_rules(r))
            return out
        raise TypeError(
            f"cannot interpret {type(rule).__name__} as a feedback rule; "
            "pass a FeedbackRule, FeedbackRuleSet, rule string, or an "
            "iterable of those"
        )

    def resolve_conflicts(self, strategy: str = "carve") -> "EditSession":
        """Resolve overlapping contradictory rules at run time
        (``"carve"`` or ``"mixture"``, paper §3.1)."""
        self._resolve_strategy = strategy
        return self

    # ------------------------------------------------------------------ #
    # Streaming feedback (rules arriving *during* the run).
    def with_feedback(
        self,
        *sources: Any,
        policy: Any = None,
        resolve: str | None = None,
        mixture_weight: float | None = None,
        **policy_kwargs: Any,
    ) -> "EditSession":
        """Attach streaming feedback sources (see :mod:`repro.feedback`).

        Each source is polled at every iteration boundary; its
        proposals/verdicts flow through a
        :class:`~repro.feedback.aggregate.FeedbackAggregator` (``policy``
        — registry name or instance, default ``"unanimous"``;
        ``policy_kwargs`` forward to a named policy's constructor), and
        approved rules land on the running engine as
        :class:`~repro.feedback.delta.RuleSetDelta` s — append deltas
        when coverage-compatible, carve-out rebuilds (``resolve``:
        ``"carve"`` or ``"mixture"``) otherwise.  Rules apply at
        iteration boundaries only, never mid-iteration.  A session may
        start with no batch rules at all: the run begins with an empty
        rule set and rules stream in.
        """
        self._feedback_enabled = True
        for source in sources:
            if not hasattr(source, "poll"):
                raise TypeError(
                    f"feedback source must expose poll(iteration); got "
                    f"{type(source).__name__}"
                )
            self._feedback_sources.append(source)
        if policy is not None:
            self._feedback_policy = policy
        if policy_kwargs:
            self._feedback_policy_kwargs.update(policy_kwargs)
        if resolve is not None:
            self._feedback_resolve = resolve
        if mixture_weight is not None:
            self._feedback_mixture_weight = float(mixture_weight)
        return self

    def with_scheduled_rules(self, iteration: int, *rules: Any) -> "EditSession":
        """Schedule rules to activate at iteration boundary ``iteration``.

        The rules are held by the session ("present but inactive") and
        applied unconditionally — no aggregation — the first time the
        loop reaches that boundary, through the same delta path streamed
        rules take.  This is the reference half of the streamed-parity
        contract: a run receiving an append-only rule from a source at
        iteration k is bit-identical to one scheduling it at k.
        """
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration}")
        self._feedback_enabled = True
        bucket = self._scheduled_rules.setdefault(int(iteration), [])
        for rule in rules:
            bucket.extend(self._coerce_scheduled(rule))
        return self

    def _coerce_scheduled(self, rule: Any) -> list[Any]:
        """Like :meth:`_coerce_rules`, but rule strings referencing columns
        the dataset does not define yet defer instead of failing — they
        park in the pipeline until a scheduled migration lands the column
        (see :meth:`with_schema_migration`)."""
        if isinstance(rule, str):
            from repro.feedback.sources import parse_rule_or_defer

            return [
                parse_rule_or_defer(
                    rule, self.dataset.X.schema, self.dataset.label_names
                )
            ]
        if isinstance(rule, Iterable) and not isinstance(rule, (FeedbackRule, FeedbackRuleSet)):
            out: list[Any] = []
            for r in rule:
                out.extend(self._coerce_scheduled(r))
            return out
        return self._coerce_rules(rule)

    def with_schema_migration(self, iteration: int, *deltas: Any) -> "EditSession":
        """Schedule feature-space migrations at iteration boundary
        ``iteration``.

        Each delta is a :class:`~repro.data.evolution.SchemaDelta` (or a
        whole :class:`~repro.data.evolution.Migration`, expanded in
        order).  At the boundary they replay over the live run — active
        dataset, rules, fitted model, caches — through
        :func:`repro.engine.migration.apply_schema_delta`, *before* any
        rule scheduled or streamed at the same boundary, so a rule
        referencing a just-landed column applies in the same drain.
        Journaled runs persist every applied delta and fast-forward
        through migrations bit-identically on crash-resume.
        """
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration}")
        from repro.data.evolution import Migration, SchemaDelta

        self._feedback_enabled = True
        bucket = self._schema_migrations.setdefault(int(iteration), [])
        for delta in deltas:
            if isinstance(delta, SchemaDelta):
                bucket.append(delta)
            elif isinstance(delta, Migration):
                bucket.extend(delta.deltas)
            else:
                raise TypeError(
                    "with_schema_migration accepts SchemaDelta or Migration "
                    f"objects; got {type(delta).__name__}"
                )
        return self

    # ------------------------------------------------------------------ #
    # Algorithm and knobs.
    def with_algorithm(self, algorithm: Any) -> "EditSession":
        """The black-box trainer: a ``Dataset -> model`` callable, or one
        of the paper's names (``"LR"``, ``"RF"``, ``"LGBM"``, ...)."""
        if isinstance(algorithm, str):
            from repro.models import paper_algorithm

            algorithm = paper_algorithm(algorithm)
        if not callable(algorithm):
            raise TypeError("algorithm must be callable: Dataset -> model")
        self._algorithm = algorithm
        return self

    def configure(self, **kwargs: Any) -> "EditSession":
        """Set :class:`~repro.core.config.FroteConfig` fields; successive
        calls merge (later wins), validated when :meth:`run` builds the
        config.

        Accepts the typed option groups (``storage=StorageOptions(...)``,
        ``journal=JournalOptions(...)``, ``kernel=KernelOptions(...)``)
        alongside scalar fields.  A group expands into its flat fields
        at this call — the whole concern at once, so a later group wins
        over earlier flat settings of the same fields and vice versa.
        Passing a *grouped* field flat (``max_resident_mb=...``,
        ``journal_dir=...``, ``incremental=...``, ...) still works but
        is deprecated in favor of the groups; the dedicated sugars
        (:meth:`out_of_core`, :meth:`journaled`, :meth:`incremental`)
        are unaffected.
        """
        from repro.core.options import (
            JOURNAL_FIELD_MAP,
            KERNEL_FIELD_MAP,
            STORAGE_FIELD_MAP,
        )

        field_maps = {
            "storage": STORAGE_FIELD_MAP,
            "journal": JOURNAL_FIELD_MAP,
            "kernel": KERNEL_FIELD_MAP,
        }
        groups = {
            key: kwargs.pop(key)
            for key in tuple(field_maps)
            if kwargs.get(key) is not None
        }
        grouped_flat = {
            flat: key
            for key, field_map in field_maps.items()
            for flat in field_map.values()
        }
        deprecated = sorted(k for k in kwargs if k in grouped_flat)
        if deprecated:
            hints = ", ".join(
                f"{k} -> {grouped_flat[k]}=...Options(...)" for k in deprecated
            )
            warnings.warn(
                f"passing {deprecated} flat to configure() is deprecated; "
                f"use the typed option groups instead ({hints}) — see "
                "docs/migration.md",
                DeprecationWarning,
                stacklevel=2,
            )
        self._config_kwargs.update(kwargs)
        for key, group in groups.items():
            for group_field, flat in field_maps[key].items():
                value = getattr(group, group_field)
                if flat in kwargs and kwargs[flat] != value:
                    raise ValueError(
                        f"conflicting values for {flat!r} in one "
                        f"configure() call: {kwargs[flat]!r} flat vs "
                        f"{type(group).__name__}.{group_field}={value!r}"
                    )
                self._config_kwargs[flat] = value
        return self

    def incremental(self, enabled: bool = True) -> "EditSession":
        """Opt into the delta-proportional compute path (sugar for
        ``configure(kernel=KernelOptions(incremental=True))``): O(batch)
        partial model refits where supported and delta-extended
        prediction caches.  See :class:`~repro.core.config.FroteConfig`
        for the exactness contract."""
        self._config_kwargs["incremental"] = enabled
        return self

    def out_of_core(
        self,
        max_resident_mb: float,
        *,
        shard_rows: int | None = None,
        spill_dir: str | None = None,
    ) -> "EditSession":
        """Opt into out-of-core sharded storage for the active dataset
        (sugar for ``configure(max_resident_mb=...)``).

        The active dataset's column buffers are sharded into
        ``shard_rows``-row chunks; sealed chunks beyond the
        ``max_resident_mb`` budget spill to memory-mapped files under
        ``spill_dir`` (default: the platform temp dir) and stream back
        on demand.  Results are bit-identical to the dense path.  The
        budget bounds the dataset's *storage* footprint — full model
        fit/predict passes still materialize transient O(n) encoded
        matrices — so pair with :meth:`incremental` and a
        partial-update model to keep full-dataset passes off the hot
        loop (see :class:`~repro.core.config.FroteConfig`).
        """
        # Only set the knobs the caller actually passed — configure()
        # documents merge semantics, and a bare out_of_core(budget) must
        # not clobber a shard_rows/spill_dir from an earlier call.
        self._config_kwargs["max_resident_mb"] = max_resident_mb
        if shard_rows is not None:
            self._config_kwargs["shard_rows"] = shard_rows
        if spill_dir is not None:
            self._config_kwargs["spill_dir"] = spill_dir
        return self

    def journaled(
        self,
        journal_dir: str,
        *,
        name: str | None = None,
        resume: bool = True,
    ) -> "EditSession":
        """Opt into the durable run journal (sugar for
        ``configure(journal_dir=...)``).

        :meth:`run` then appends every iteration — verdict, losses,
        stage timings, accepted batch rows, RNG state — to an
        append-only crash-safe journal at ``journal_dir/name`` and, on
        re-run, fast-forwards through already-committed iterations
        instead of recomputing them (journal-based crash-resume; see
        :mod:`repro.journal` for the exactness contract).  Requires an
        integer ``random_state`` when ``resume`` is on.  Pass
        ``resume=False`` to wipe any prior journal and start fresh.
        """
        self._config_kwargs["journal_dir"] = str(journal_dir)
        self._config_kwargs["journal_resume"] = resume
        if name is not None:
            self._config_kwargs["journal_name"] = name
        return self

    def with_selector(self, selector: Any) -> "EditSession":
        """Use a selection strategy directly (bypasses the registry; handy
        for one-off strategies and tests).

        Accepts either a strategy *instance* (an object with ``select``) or
        a zero-argument *factory* returning one.  Pass a factory when the
        strategy keeps state across ``select`` calls: an instance is shared
        by every ``run()`` of this session, while a factory builds a fresh
        strategy per run, keeping reruns seed-identical.
        """
        self._selector = selector
        return self

    def with_stages(self, *stages: Stage) -> "EditSession":
        """Replace the per-iteration stage chain of the default engine."""
        self._stages = tuple(stages)
        return self

    def with_engine(self, engine: EditEngine) -> "EditSession":
        """Use a fully custom :class:`EditEngine` (overrides
        :meth:`with_stages`)."""
        self._engine = engine
        return self

    # ------------------------------------------------------------------ #
    # Progress.
    def on_event(self, listener: EventListener) -> "EditSession":
        """Subscribe to every :class:`ProgressEvent` the engine emits."""
        self._listeners.append(listener)
        return self

    def on_iteration(self, listener: EventListener) -> "EditSession":
        """Subscribe to per-iteration events (accepted / rejected /
        empty-batch)."""

        def filtered(event: ProgressEvent) -> None:
            if event.record is not None:
                listener(event)

        self._listeners.append(filtered)
        return self

    def on_accept(self, listener: EventListener) -> "EditSession":
        """Subscribe to accepted-batch events only."""

        def filtered(event: ProgressEvent) -> None:
            if event.accepted:
                listener(event)

        self._listeners.append(filtered)
        return self

    def track_metric(self, scorer: Callable[[Any], float]) -> "EditSession":
        """Score every accepted model (e.g. on held-out data); the value is
        recorded as ``external_score`` in the iteration history — the
        session-level equivalent of the legacy ``eval_callback``."""
        self._eval_callback = scorer
        return self

    # ------------------------------------------------------------------ #
    # Warm start.
    def resume_from(self, prior: FroteResult) -> "EditSession":
        """Continue augmenting from a prior result: start at its dataset,
        carry its history/provenance, and keep its quota accounting."""
        self._prior = prior
        return self

    warm_start = resume_from  # alias

    # ------------------------------------------------------------------ #
    def build_state(self) -> EditState:
        """Assemble the initial :class:`EditState` (exposed for tests and
        custom drivers)."""
        # Imported here: repro.core.config consults the engine registries at
        # import time, so importing it at module level would be circular.
        from repro.core.config import FroteConfig
        from repro.utils.rng import check_random_state

        if self._algorithm is None:
            raise ValueError(
                "no training algorithm; call .with_algorithm('RF') or pass "
                "a Dataset -> model callable"
            )
        if not self._rules and not self._feedback_enabled:
            raise ValueError(
                "no feedback rules; call .with_rules(...) first (or attach "
                "a stream with .with_feedback(...))"
            )
        frs = FeedbackRuleSet(tuple(self._rules))
        if self._resolve_strategy is not None:
            frs = frs.resolve_conflicts(
                self.dataset.X.schema, strategy=self._resolve_strategy
            )
        config = FroteConfig(**self._config_kwargs)
        selector = self._selector
        if selector is not None and (
            isinstance(selector, type)
            or (callable(selector) and not hasattr(selector, "select"))
        ):
            selector = selector()  # factory form: fresh strategy per run
        state = EditState(
            input_dataset=self.dataset,
            frs=frs,
            algorithm=self._algorithm,
            config=config,
            rng=check_random_state(config.random_state),
            selector=selector,
            eval_callback=self._eval_callback,
            listeners=list(self._listeners),
        )
        if self._prior is not None:
            prior = self._prior
            state.warm_start = True
            state.active = prior.dataset
            state.history = list(prior.history)
            state.iteration = prior.iterations
            state.n_added = prior.n_added
            state.n_relabelled = prior.n_relabelled
            state.n_dropped = prior.n_dropped
            state.provenance = prior.provenance
        if self._feedback_enabled:
            from repro.feedback.pipeline import FeedbackPipeline

            # A fresh pipeline per run keeps reruns deterministic;
            # scripted sources rewind, live queue sources keep whatever
            # has been pushed (their feeds are external inputs).
            for source in self._feedback_sources:
                reset = getattr(source, "reset", None)
                if callable(reset):
                    reset()
            state.feedback = FeedbackPipeline(
                list(self._feedback_sources),
                policy=self._feedback_policy,
                policy_kwargs=dict(self._feedback_policy_kwargs),
                resolve=self._feedback_resolve,
                mixture_weight=self._feedback_mixture_weight,
                schedule={
                    it: list(rules) for it, rules in self._scheduled_rules.items()
                },
                migrations={
                    it: list(deltas)
                    for it, deltas in self._schema_migrations.items()
                },
            )
        return state

    def build_engine(self) -> EditEngine:
        if self._engine is not None:
            return self._engine
        stages: tuple[Stage, ...] | None = self._stages
        if self._feedback_enabled:
            from repro.engine.stages import FeedbackStage, default_stages

            return EditEngine(
                stages=(FeedbackStage(), *(stages if stages is not None else default_stages()))
            )
        if stages is not None:
            return EditEngine(stages=stages)
        return EditEngine()

    def run(self) -> FroteResult:
        """Execute the edit and return the :class:`FroteResult`.

        With ``journal_dir`` configured (see :meth:`journaled`) the run
        is journaled and crash-resumable; the result is identical
        either way.
        """
        if self._config_kwargs.get("journal_dir"):
            from repro.journal.replay import run_journaled

            return run_journaled(self)
        return self.build_engine().run(self.build_state())


def edit(dataset: Dataset) -> EditSession:
    """Start an :class:`EditSession` on ``dataset`` (the library's
    one-liner entry point: ``repro.edit(data).with_rules(...).run()``)."""
    return EditSession(dataset)
