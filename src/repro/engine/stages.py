"""Composable pipeline stages and the :class:`EditEngine` driver.

Algorithm 1 of the paper, decomposed: each phase of the editing loop is a
:class:`Stage` operating on a shared :class:`~repro.engine.state.EditState`,
and :class:`EditEngine` is the driver that runs setup stages once and the
loop stages until the state reports :attr:`~repro.engine.state.EditState
.done`.  Alternative loops — early-stop policies, multi-candidate
acceptance, different generation back-ends — are stage swaps, not forks::

    engine = EditEngine(stages=(
        PreselectStage(),
        SelectionStage(),
        GenerationStage(),
        AcceptanceStage(patience=5),   # stop after 5 straight rejections
    ))
    result = engine.run(state)

The default stage chain reproduces the paper's loop bit-for-bit (same RNG
consumption order), which :mod:`tests.test_legacy_api` asserts.
"""

from __future__ import annotations

import time
from typing import Iterable, Protocol, runtime_checkable

import numpy as np

from repro.core.modification import apply_modification
from repro.core.objective import evaluate_predictions
from repro.core.preselect import preselect_base_population
from repro.core.selection import SelectionContext
from repro.data.dataset import Dataset
from repro.engine.registry import SELECTORS
from repro.engine.state import EditState, IterationRecord


@runtime_checkable
class Stage(Protocol):
    """One phase of the edit pipeline: read and advance the shared state."""

    def run(self, state: EditState) -> None:
        ...


class ModificationStage:
    """Setup: apply the input-dataset choice, train the initial model, and
    fix the run's budgets (η, quota, iteration ceiling).

    On a warm start the modification is skipped — the active dataset
    already reflects a prior run — but the model and budgets are still
    (re)established against it.
    """

    def run(self, state: EditState) -> None:
        cfg = state.config
        if not state.warm_start:
            mod = apply_modification(
                state.input_dataset, state.frs, cfg.mod_strategy, random_state=state.rng
            )
            state.active = mod.dataset
            state.n_relabelled = mod.n_relabelled
            state.n_dropped = mod.n_dropped
            state.provenance = self._initial_provenance(state, mod)
        elif state.active is None:
            state.active = state.input_dataset

        # Budgets are relative to the non-synthetic base, so a resumed
        # session keeps the same quota accounting as a fresh one.
        base = state.active.n - state.n_added
        state.eta = cfg.effective_eta(base)
        state.quota = cfg.oversampling_quota(base)
        state.run_start_iteration = state.iteration
        state.max_iteration = state.iteration + cfg.tau

        # Record the rebuild first (it drops any builder from a prior
        # run), then move the active dataset into a fresh append builder:
        # accepted batches cost O(batch) from here on, and
        # ``state.active`` is always a zero-copy snapshot of the
        # builder's committed rows.  The builder's storage follows the
        # config: dense in RAM by default, sharded-with-spill under
        # ``max_resident_mb`` (the out-of-core path).
        state.record_rebuild("setup")
        state.active_builder = state.make_builder(state.active)
        state.active = state.active_builder.snapshot()
        state.model = state.algorithm(state.active)
        # Routing the initial evaluation through the prediction cache
        # seeds it for the first SelectionStage — one full predict pass
        # at setup instead of two (values identical either way); going
        # through evaluate_active additionally seeds the evaluation
        # cache a feedback delta at iteration 0 would otherwise redo.
        state.evaluation = state.evaluate_active()
        state.best_loss = state.loss_of(state.evaluation)
        state.initial_evaluation = state.evaluation

        if state.selector is None:
            state.selector = SELECTORS.create(cfg.selection)
        state.population_stale = True

    @staticmethod
    def _initial_provenance(state: EditState, mod):
        from repro.core.audit import RowProvenance

        provenance = RowProvenance.for_input(state.input_dataset.n)
        if mod.n_dropped:
            drop_mask = np.zeros(state.input_dataset.n, dtype=bool)
            drop_mask[mod.touched_rows] = True
            provenance = provenance.drop_rows(drop_mask)
        elif mod.n_relabelled:
            provenance.mark_relabelled(
                mod.touched_rows, mod.touched_rules, mod.original_labels
            )
        return provenance


class FeedbackStage:
    """Drain streamed rule feedback at the iteration boundary.

    Prepended to the loop chain by :meth:`EditSession.build_engine` when
    the session enabled feedback — it runs *first*, so a rule delivered
    "at iteration k" is visible to iteration k's preselect/selection
    (the streamed-parity contract's definition of delivery time).  The
    default chain never includes it: sessions without feedback keep the
    seed-identical stage sequence.
    """

    def run(self, state: EditState) -> None:
        if state.feedback is not None:
            state.feedback.drain(state)


class PreselectStage:
    """Recompute per-rule base populations and generators when stale
    (paper Algorithm 2; re-run after every accepted batch)."""

    def run(self, state: EditState) -> None:
        if not state.population_stale:
            return
        from repro.sampling.rule_generation import RuleConstrainedGenerator

        state.bp = preselect_base_population(
            state.active, state.frs, k=state.config.k
        )
        state.generators = [
            RuleConstrainedGenerator(
                rule,
                state.active.X,
                k=state.config.k,
                distance_backend=getattr(state.config, "distance_backend", None),
            )
            for rule in state.frs
        ]
        # Materialize each rule's base-population table once; generation
        # reuses it (and the fitted neighbour index keyed on the dataset
        # version) until the next accepted batch marks the population stale.
        state.pools = [
            state.active.X.take(pop.indices) if pop.size else None
            for pop in state.bp.per_rule
        ]
        state.population_stale = False


class SelectionStage:
    """Pick base instances for this iteration via the selection strategy."""

    def run(self, state: EditState) -> None:
        state.predictions = (
            state.active_predictions()
            if getattr(state.selector, "needs_predictions", True)
            else None
        )
        ctx = SelectionContext(
            state.active,
            state.predictions,
            k=state.config.k,
            rng=state.rng,
            frs=state.frs,
            cache_token=state.dataset_version,
            distance_backend=getattr(state.config, "distance_backend", None),
        )
        state.per_rule_positions = state.selector.select(state.bp, state.eta, ctx)


class GenerationStage:
    """Synthesize one rule-constrained batch from the selected bases."""

    def run(self, state: EditState) -> None:
        from repro.data.table import Table
        from repro.sampling.rule_generation import GeneratedBatch

        tables = []
        labels = []
        counts = [0] * len(state.bp.per_rule)
        for r, (pop, positions, gen) in enumerate(
            zip(state.bp.per_rule, state.per_rule_positions, state.generators)
        ):
            if positions.size == 0 or pop.size == 0:
                continue
            # The default PreselectStage materializes per-rule pools; fall
            # back to building one so custom preselect stages that only set
            # bp/generators (the pre-pools contract) keep working.
            pool = state.pools[r] if r < len(state.pools) else None
            if pool is None:
                pool = state.active.X.take(pop.indices)
            out = gen.generate(
                pool, positions, state.rng, cache_token=state.dataset_version
            )
            if out.n:
                tables.append(out.table)
                labels.append(out.labels)
                counts[r] = out.n
        if not tables:
            state.batch = GeneratedBatch(
                Table.empty(state.active.X.schema), np.empty(0, dtype=np.int64)
            )
        else:
            state.batch = GeneratedBatch(
                Table.concat(tables), np.concatenate(labels)
            )
        state.per_rule_counts = counts


class AcceptanceStage:
    """Retrain on the tentative dataset and keep the batch iff ĵ improves.

    The tentative dataset is *staged* in the state's
    :class:`~repro.data.builder.DatasetBuilder`: its rows are written past
    the committed length, so building the candidate costs O(batch), a
    rejected candidate costs nothing to discard (the next stage call
    overwrites it), and an accepted one is committed by advancing the
    length.  With ``FroteConfig(incremental=True)`` and a model that
    supports the partial-update protocol, the candidate model is an
    in-place O(batch) partial refit (rolled back on rejection) instead of
    a from-scratch ``algorithm(candidate)`` fit.

    Parameters
    ----------
    patience:
        Optional early-stop policy: end the run after this many
        *consecutive* non-accepted iterations (the paper runs all τ).
    """

    def __init__(self, *, patience: int | None = None) -> None:
        if patience is not None and patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = patience

    def run(self, state: EditState) -> None:
        t0 = time.perf_counter()
        if state.batch.n == 0:
            record = IterationRecord(
                state.iteration, state.best_loss, False, 0, state.n_added
            )
            self._finish_iteration(state, record, "empty-batch", t0)
            return

        candidate, staged = self._stage_candidate(state)

        # Train the candidate model: a partial refit when the incremental
        # path is on and the model supports it, else a full fit.
        partial_token = None
        if state.incremental and getattr(
            state.model, "supports_partial_update", False
        ):
            partial_token = state.model.checkpoint()
            delta = candidate.row_slice(state.active.n, candidate.n)
            cand_model = state.model.partial_update(delta)
        else:
            cand_model = state.algorithm(candidate)

        # ĵ is evaluated over the current active dataset D̂ (line 11); its
        # FRS row assignment is memoized per dataset version, so only the
        # candidate model's prediction pass is fresh work here.
        cand_pred = cand_model.predict(state.active.X)
        cand_eval = evaluate_predictions(
            cand_pred, state.active, state.frs, assign=state.active_assignment()
        )
        cand_loss = state.loss_of(cand_eval)
        improved = (
            cand_loss <= state.best_loss
            if state.config.accept_equal
            else cand_loss < state.best_loss
        )
        external: float | None = None
        if improved:
            if staged:
                state.active_builder.commit(candidate.n)
                state.active = candidate
            else:
                # Concat fallback accepted: re-home the active dataset
                # into a fresh builder (same storage policy as setup) so
                # later batches append in O(batch) again.
                state.active_builder = state.make_builder(candidate)
                state.active = state.active_builder.snapshot()
            state.n_added += state.batch.n
            state.best_loss = cand_loss
            state.model = cand_model
            state.evaluation = cand_eval
            state.provenance = state.provenance.extend_synthetic(
                state.per_rule_counts, state.iteration
            )
            state.population_stale = True
            # The candidate predictions over the pre-batch rows seed the
            # prediction cache before the version moves, so the appended
            # rows are all the next prediction pass has left to cover
            # (incremental mode) — and the append delta keeps the FRS
            # assignment cache extendable in every mode.
            state.seed_predictions(cand_model, cand_pred)
            state.record_append(state.batch.n, "accepted-batch")
            if state.eval_callback is not None:
                external = float(state.eval_callback(state.model))
        elif partial_token is not None:
            # Rejected in-place partial refit: restore the model state.
            state.model.rollback(partial_token)
        record = IterationRecord(
            state.iteration,
            cand_loss,
            improved,
            state.batch.n,
            state.n_added,
            external,
        )
        self._finish_iteration(
            state, record, "accepted" if improved else "rejected", t0
        )

    @staticmethod
    def _stage_candidate(state: EditState) -> tuple[Dataset, bool]:
        """The tentative dataset D̂ ∪ batch, staged without copying D̂.

        Returns ``(candidate, staged)``: ``staged`` says the candidate
        lives in the state's builder (commit on acceptance).  Falls back
        to a concat when no builder owns the active dataset — custom
        stages that assign ``state.active`` directly and record a
        rebuild delta (which drops the builder) keep working, at the
        legacy O(n) cost for that one acceptance.
        """
        builder = state.active_builder
        if builder is not None and builder.n_rows == state.active.n:
            return builder.stage(state.batch.table, state.batch.labels), True
        return (
            Dataset.concat(
                [
                    state.active,
                    Dataset(
                        state.batch.table, state.batch.labels, state.active.label_names
                    ),
                ]
            ),
            False,
        )

    def _finish_iteration(
        self,
        state: EditState,
        record: IterationRecord,
        kind: str,
        t0: float | None = None,
    ) -> None:
        if t0 is not None:
            # Self-timed so the per-iteration event carries a complete
            # stage breakdown (the engine's own measurement of this stage
            # lands only after run() returns, past the emit below).
            state.stage_seconds[type(self).__name__] = time.perf_counter() - t0
        state.history.append(record)
        state.emit(kind, record)
        state.iteration += 1
        if self.patience is not None:
            # Only this run's iterations count: a warm-started session must
            # not stop on rejections inherited from the prior run's history.
            if state.iteration - state.run_start_iteration < self.patience:
                return
            tail = state.history[-self.patience :]
            if not any(r.accepted for r in tail):
                state.stopped = True


def default_setup_stages() -> tuple[Stage, ...]:
    return (ModificationStage(),)


def default_stages() -> tuple[Stage, ...]:
    """The paper's loop: preselect → select → generate → accept."""
    return (
        PreselectStage(),
        SelectionStage(),
        GenerationStage(),
        AcceptanceStage(),
    )


class EditEngine:
    """Drive an edit: run setup stages once, then loop stages until done.

    Parameters
    ----------
    stages:
        Per-iteration stage chain; defaults to :func:`default_stages`.
    setup_stages:
        One-time preparation chain; defaults to
        :func:`default_setup_stages`.
    """

    def __init__(
        self,
        stages: Iterable[Stage] | None = None,
        *,
        setup_stages: Iterable[Stage] | None = None,
    ) -> None:
        self.setup_stages: tuple[Stage, ...] = (
            tuple(setup_stages) if setup_stages is not None else default_setup_stages()
        )
        self.stages: tuple[Stage, ...] = (
            tuple(stages) if stages is not None else default_stages()
        )

    def initialize(self, state: EditState) -> EditState:
        """Run the setup stages and announce the run to listeners."""
        state.stage_seconds = {}
        for stage in self.setup_stages:
            stage.run(state)
        state.emit("started")
        return state

    def step(self, state: EditState) -> EditState:
        """Advance the state by one full pass over the loop stages.

        Each stage is timed into ``state.stage_seconds`` (stage class
        name → seconds, reset every step) so per-iteration progress
        events carry a structured wall-time breakdown — incremental
        savings are observable without the perf harness.
        """
        state.stage_seconds = {}
        for stage in self.stages:
            t0 = time.perf_counter()
            stage.run(state)
            state.stage_seconds[type(stage).__name__] = time.perf_counter() - t0
        return state

    def finalize(self, state: EditState):
        """Score the final dataset, emit ``finished``, package the result.

        Exposed separately from :meth:`run` so external drivers — the
        async serving layer interleaves many sessions at
        :meth:`initialize`/:meth:`step`/:meth:`finalize` granularity —
        can reproduce ``run()`` exactly, one quantum at a time.
        """
        # The delta-aware prediction cache was seeded by the last accepted
        # batch, so this costs one pass over at most the appended rows in
        # incremental mode (and matches evaluate_model exactly otherwise);
        # a ruleset delta applied at the final boundary already left the
        # identical evaluation in the cache.
        final_evaluation = state.evaluate_active()
        # Out-of-loop events carry no stage breakdown (the last
        # iteration's timings already went out with its own event).
        state.stage_seconds = {}
        state.emit("finished")
        return state.to_result(final_evaluation)

    def run(self, state: EditState):
        """Initialize, loop to completion, and package the result."""
        self.initialize(state)
        while not state.done:
            self.step(state)
        return self.finalize(state)
