"""Applying schema deltas to a live edit state.

This is the engine-side half of :mod:`repro.data.evolution` — the
analogue of :mod:`repro.feedback.delta` for the *feature-space* axis.  A
:class:`~repro.data.evolution.SchemaDelta` arriving at an iteration
boundary is applied by :func:`apply_schema_delta`, which

1. migrates the feedback rule set first (refusing destructive deltas on
   referenced columns *before* anything mutates),
2. replays the delta over the active dataset,
3. records a ``schema`` entry in the row-delta journal and advances the
   content-hashed :class:`~repro.data.evolution.SchemaVersion` lineage,
4. classifies every derived artifact as **survive vs refit**: the FRS
   row-assignment cache survives any migratable delta (coverage reads
   only referenced columns), the fitted encoder/model and prediction
   cache survive a pure rename (the encoder migrates symbolically) and
   are deterministically refit otherwise, and the per-rule populations /
   generators / evaluation are always recomputed.

Everything here is a pure function of (state, delta), so journal replay
re-applying the same deltas at the same boundaries reconstructs the
live run bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.data.evolution import (
    SchemaDelta,
    SchemaVersion,
    delta_from_jsonable,
    delta_to_jsonable,
    migrate_ruleset,
)

__all__ = [
    "SchemaMigrationRecord",
    "apply_schema_delta",
    "migration_to_jsonable",
    "migration_from_jsonable",
]


@dataclass(frozen=True)
class SchemaMigrationRecord:
    """One applied schema migration on a run's timeline.

    Self-contained like :class:`~repro.feedback.delta.RuleSetDelta`: the
    delta plus the lineage tokens around it, so journals and audits can
    reconstruct the schema timeline without replaying data.
    """

    delta: SchemaDelta
    iteration: int
    #: Content-hashed schema-version tokens after/before the delta.
    version: str
    parent: str
    provenance: str = ""
    #: Whether the model was deterministically refit (False: the fitted
    #: encoder migrated symbolically — pure renames only).
    model_refit: bool = True


def migration_to_jsonable(record: SchemaMigrationRecord) -> dict[str, Any]:
    return {
        "delta": delta_to_jsonable(record.delta),
        "iteration": int(record.iteration),
        "version": record.version,
        "parent": record.parent,
        "provenance": record.provenance,
        "model_refit": bool(record.model_refit),
    }


def migration_from_jsonable(data: dict[str, Any]) -> SchemaMigrationRecord:
    return SchemaMigrationRecord(
        delta=delta_from_jsonable(data["delta"]),
        iteration=int(data["iteration"]),
        version=str(data["version"]),
        parent=str(data["parent"]),
        provenance=str(data.get("provenance", "")),
        model_refit=bool(data.get("model_refit", True)),
    )


def apply_schema_delta(
    state, delta: SchemaDelta, *, provenance: str = "migration"
) -> SchemaMigrationRecord:
    """Apply one schema delta to a live :class:`EditState` at a boundary.

    Raises :class:`~repro.data.evolution.SchemaMigrationError` — with the
    state untouched — when the delta cannot apply (dropping/retyping a
    column an active rule references, unknown column, bad cast).
    """
    old_schema = state.active.X.schema
    if state.schema_version is None or state.schema_version.schema != old_schema:
        state.schema_version = SchemaVersion.genesis(old_schema)

    # Migrate rules and data first: both raise on an inapplicable delta
    # before any state mutates, so a refused migration is a clean no-op.
    new_frs = migrate_ruleset(state.frs, delta)
    new_active = delta.apply_to_dataset(state.active)

    old_predictions = state.predictions_cache
    old_assign = state.assign_cache
    parent_version = state.dataset_version
    state.record_schema_delta(delta, provenance)
    state.active = new_active
    state.frs = new_frs
    state.schema_version = state.schema_version.advance(delta)

    # Survive-vs-refit: the fitted encoder/model.
    refit = True
    if delta.model_survives and state.model is not None:
        encoder = getattr(state.model, "encoder_", None)
        if encoder is not None and hasattr(encoder, "migrate"):
            try:
                encoder.migrate(new_active.X.schema)
                refit = False
            except ValueError:
                refit = True  # layout changed after all — refit below
    if refit and state.model is not None and state.algorithm is not None:
        state.model = state.algorithm(state.active)

    # Survive-vs-refit: caches.  Rule coverage reads only referenced
    # columns, and migrate_ruleset succeeding proves no referenced column
    # was dropped or retyped, so a fresh assignment pass would be
    # bit-identical — re-key the cached one to the new version.  The
    # prediction cache only survives when the model object itself did.
    if old_assign is not None and old_assign[0] == parent_version:
        state.assign_cache = (state.dataset_version, old_assign[1])
    if (
        not refit
        and old_predictions is not None
        and old_predictions[0] == parent_version
        and old_predictions[1] is state.model
    ):
        state.predictions_cache = (
            state.dataset_version, state.model, old_predictions[2],
        )
    state.evaluation_cache = None

    # Per-rule populations, generators, and pools hold old-schema tables.
    state.population_stale = True
    state.bp = None
    state.generators = []
    state.pools = []

    # Re-evaluate under the migrated (dataset, rules, model) so the next
    # acceptance compares like-with-like — mirrors the ruleset-delta
    # rebuild path.
    evaluation = state.evaluate_active()
    state.evaluation = evaluation
    state.best_loss = state.loss_of(evaluation)

    record = SchemaMigrationRecord(
        delta=delta,
        iteration=state.iteration,
        version=state.schema_version.version,
        parent=state.schema_version.parent or "",
        provenance=provenance,
        model_refit=refit,
    )
    state.schema_log.append(record)
    state.emit("schema", schema=record)
    return record
