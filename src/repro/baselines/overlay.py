"""Overlay (Daly et al., 2021) — the post-processing baseline of Table 2.

Overlay never retrains the model.  It holds a *Full Knowledge Rule Set*
(FKRS): a rule-set description of the model (here learned with the
BRCG-substitute :class:`~repro.rules.learning.GreedyRuleLearner`) with the
user's feedback rules substituted in at highest priority.  Two modes, per
the FROTE paper's description:

* **Hard constraints** — the feedback is authoritative: any instance
  matched by an FKRS rule receives that rule's class (feedback rules
  checked first); unmatched instances fall through to the model.  High MRA
  inside coverage, but the imperfect rule surrogate degrades
  outside-coverage F1 — the failure mode Tables 2/7/8 show.
* **Soft constraints** — the feedback transforms the *input*: an instance
  matched by a feedback rule targeting class ``c`` is mapped into the
  model's own region for ``c`` (the attributes of a model rule predicting
  ``c`` are set to satisfying values) and the model's prediction on the
  transformed instance is returned.  The model stays in charge, so the
  method degrades when the feedback is far from the model's boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.models.base import TableModel
from repro.rules.learning import GreedyRuleLearner
from repro.rules.predicate import EQ, GE, GT, LE, LT, NE, Predicate
from repro.rules.rule import FeedbackRule
from repro.rules.ruleset import FeedbackRuleSet
from repro.sampling.rule_generation import window_from_conditions

SOFT, HARD = "soft", "hard"


def _satisfying_value(
    preds: tuple[Predicate, ...],
    spec,
    attr_range: tuple[float, float],
    current: float | int,
) -> float | int:
    """A raw column value satisfying all predicates on one attribute."""
    if spec.is_numeric:
        window = window_from_conditions(preds)
        if window.eq is not None:
            return float(window.eq)
        if window.contains(float(current)):
            return float(current)
        lo = window.lo if np.isfinite(window.lo) else attr_range[0]
        hi = window.hi if np.isfinite(window.hi) else attr_range[1]
        if lo > hi:  # window outside observed range; trust the window
            lo, hi = min(window.lo, window.hi), max(window.lo, window.hi)
        mid = (lo + hi) / 2.0
        if not window.contains(mid):
            # Degenerate window: nudge off the strict boundary.
            mid = np.nextafter(lo, np.inf) if window.lo_strict else lo
        return float(mid)
    allowed = set(range(len(spec.categories)))
    for p in preds:
        code = spec.categories.index(str(p.value))
        if p.operator == EQ:
            allowed &= {code}
        elif p.operator == NE:
            allowed -= {code}
    if int(current) in allowed:
        return int(current)
    if not allowed:
        return int(current)
    return int(sorted(allowed)[0])


class Overlay:
    """Post-processing layer combining a frozen model with feedback rules.

    Parameters
    ----------
    model:
        The trained model being patched (never retrained).
    feedback:
        The user's feedback rules (FROTE's FRS, Overlay's modified FKRS
        entries).
    reference:
        Training table: provides the model-explanation rules and attribute
        ranges for soft-constraint transformations.
    mode:
        ``"soft"`` or ``"hard"``.
    learner:
        Rule learner used to describe the model (defaults to the
        BRCG-substitute with its default settings).
    """

    def __init__(
        self,
        model: TableModel,
        feedback: FeedbackRuleSet,
        reference: Table,
        *,
        mode: str = SOFT,
        learner: GreedyRuleLearner | None = None,
    ) -> None:
        if mode not in (SOFT, HARD):
            raise ValueError(f"mode must be 'soft' or 'hard', got {mode!r}")
        self.model = model
        self.feedback = feedback
        self.mode = mode
        n_classes = model.n_classes_
        if n_classes is None:
            raise ValueError("model must be fitted")
        self.n_classes = n_classes
        learner = learner or GreedyRuleLearner()
        self.model_rules: list[FeedbackRule] = learner.learn(
            reference, model.predict(reference), n_classes
        )
        self._ranges: dict[str, tuple[float, float]] = {}
        for name in reference.schema.numeric_names:
            col = reference.column(name)
            self._ranges[name] = (
                (float(col.min()), float(col.max())) if col.size else (0.0, 1.0)
            )

    # ------------------------------------------------------------------ #
    def predict(self, table: Table) -> np.ndarray:
        if self.mode == HARD:
            return self._predict_hard(table)
        return self._predict_soft(table)

    def _predict_hard(self, table: Table) -> np.ndarray:
        out = self.model.predict(table)
        # Model-explanation rules fire first (lowest priority)...
        for rule in reversed(self.model_rules):
            out[rule.coverage_mask(table)] = rule.target_class
        # ...then feedback rules override (highest priority).
        for rule in reversed(self.feedback.rules):
            out[rule.coverage_mask(table)] = rule.target_class
        return out

    def _predict_soft(self, table: Table) -> np.ndarray:
        out = self.model.predict(table)
        assign = self.feedback.assign(table)
        covered = np.flatnonzero(assign >= 0)
        if covered.size == 0:
            return out
        transformed = self._transform(table, assign)
        out[covered] = self.model.predict(transformed.take(covered))
        return out

    def _transform(self, table: Table, assign: np.ndarray) -> Table:
        """Map feedback-covered rows toward the model's region for the
        feedback class.

        Faithful to Daly et al.'s transformation semantics: only attributes
        the feedback rule itself constrains are rewritten (the
        transformation maps between the feedback rule's conditions and the
        original rule's conditions on those attributes).  When the feedback
        deviates structurally from the model's rules — conditions on
        attributes the model's region does not share — the transformed
        instance may land outside that region and Soft constraints
        underperform, the limitation the FROTE paper highlights.
        """
        columns = {name: table.column(name).copy() for name in table.schema.names}
        by_class: dict[int, FeedbackRule] = {}
        for r in self.model_rules:
            by_class.setdefault(r.target_class, r)
        for i in np.flatnonzero(assign >= 0):
            fb_rule = self.feedback[int(assign[i])]
            target = fb_rule.target_class
            model_rule = self._closest_model_rule(fb_rule, by_class.get(target))
            if model_rule is None:
                continue  # model has no region for this class; model decides
            shared = set(model_rule.clause.attributes) & set(fb_rule.clause.attributes)
            for attr in shared:
                spec = table.schema[attr]
                preds = model_rule.clause.predicates_on(attr)
                columns[attr][i] = _satisfying_value(
                    preds, spec, self._ranges.get(attr, (0.0, 1.0)), columns[attr][i]
                )
        return Table(table.schema, columns, copy=False)

    def _closest_model_rule(
        self, fb_rule: FeedbackRule, default: FeedbackRule | None
    ) -> FeedbackRule | None:
        """Model rule for the feedback class sharing the most attributes."""
        target = fb_rule.target_class
        fb_attrs = set(fb_rule.clause.attributes)
        best, best_shared = default, -1
        for r in self.model_rules:
            if r.target_class != target:
                continue
            shared = len(fb_attrs & set(r.clause.attributes))
            if shared > best_shared:
                best, best_shared = r, shared
        return best
