"""Baselines FROTE is compared against (paper Table 2)."""

from repro.baselines.overlay import HARD, SOFT, Overlay

__all__ = ["Overlay", "SOFT", "HARD"]
