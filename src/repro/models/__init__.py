"""From-scratch classifiers and the black-box training-algorithm wrapper.

The three model families the paper evaluates — random forest, logistic
regression, and a LightGBM-style GBDT — plus the online logistic regression
used by the supplement's objective-approximation proxy.

Models are registered by name in :data:`MODELS`, an
:class:`~repro.engine.registry.InfoRegistry`.  Register your own and every
experiment surface (``ExperimentSpec``, drivers, CLI) accepts the name::

    from repro.models import register_model

    register_model("MLP", lambda: MyMLP(hidden=64), standardize=True)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.registry import InfoRegistry
from repro.models.base import (
    MatrixClassifier,
    TableModel,
    TrainingAlgorithm,
    make_algorithm,
    predict_from_proba,
)
from repro.models.boosting import GradientBoostingClassifier
from repro.models.forest import RandomForestClassifier
from repro.models.knn import KNeighborsClassifier
from repro.models.logistic import LogisticRegression, softmax
from repro.models.naive_bayes import GaussianNB
from repro.models.online import OnlineLogisticRegression
from repro.models.tree import DecisionTreeClassifier

__all__ = [
    "MatrixClassifier",
    "TableModel",
    "TrainingAlgorithm",
    "make_algorithm",
    "predict_from_proba",
    "LogisticRegression",
    "softmax",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "GradientBoostingClassifier",
    "OnlineLogisticRegression",
    "GaussianNB",
    "KNeighborsClassifier",
    "ModelInfo",
    "MODELS",
    "register_model",
    "algorithm",
    "paper_algorithm",
    "extended_algorithm",
    "PAPER_MODELS",
    "EXTENDED_MODELS",
]


@dataclass(frozen=True)
class ModelInfo:
    """Registry entry: zero-argument classifier factory plus training hints.

    ``standardize`` — wrap training with feature standardization (distance-
    and likelihood-based models want it; trees are scale-invariant).
    ``paper`` — one of the paper's three §5.1 configurations.
    """

    name: str
    factory: Callable[[], object]
    standardize: bool = False
    paper: bool = False


#: Live model registry; supports ``MODELS[name]`` / ``in`` / iteration.
MODELS: InfoRegistry = InfoRegistry("model")


def register_model(
    name: str,
    factory: Callable[[], object],
    *,
    standardize: bool = False,
    paper: bool = False,
    overwrite: bool = False,
) -> ModelInfo:
    """Register a classifier factory under ``name``; returns its entry."""
    info = ModelInfo(name, factory, standardize=standardize, paper=paper)
    MODELS.register(name, info, overwrite=overwrite)
    return info


# The paper's three model configurations (§5.1): scikit-learn defaults with
# max_iter=500 for LR, max_depth=3 for RF, LightGBM defaults.
register_model("LR", lambda: LogisticRegression(max_iter=500),
               standardize=True, paper=True)
register_model("RF", lambda: RandomForestClassifier(max_depth=3, random_state=42),
               paper=True)
register_model("LGBM", lambda: GradientBoostingClassifier(), paper=True)

# Extension models (beyond the paper) for the model-agnostic ablations.
register_model("NB", lambda: GaussianNB(), standardize=True)
register_model("KNN", lambda: KNeighborsClassifier(k=5), standardize=True)


def algorithm(name: str, *, warm_start: bool = False) -> TrainingAlgorithm:
    """Training algorithm for any registered model (did-you-mean errors).

    ``warm_start=True`` seeds each refit's optimizer with the previous
    fit's coefficients for estimators that support it (``"LR"``); see
    :func:`repro.models.base.make_algorithm`.  Opt-in: the default path
    cold-starts every fit and stays parity-pinned.
    """
    info: ModelInfo = MODELS[name]
    return make_algorithm(
        info.factory, standardize=info.standardize, warm_start=warm_start
    )


# Name → factory views kept for backwards compatibility; the registry is
# the source of truth (snapshots taken at import, built-ins only).
PAPER_MODELS = {n: MODELS[n].factory for n in MODELS if MODELS[n].paper}
EXTENDED_MODELS = {n: MODELS[n].factory for n in MODELS}


def paper_algorithm(name: str) -> TrainingAlgorithm:
    """Training algorithm for one of the paper's model names (LR/RF/LGBM)."""
    if name not in PAPER_MODELS:
        raise KeyError(f"unknown model {name!r}; choose from {sorted(PAPER_MODELS)}")
    return algorithm(name)


def extended_algorithm(name: str) -> TrainingAlgorithm:
    """Training algorithm from the full registry (paper's 3 + NB + KNN + plugins)."""
    return algorithm(name)
