"""From-scratch classifiers and the black-box training-algorithm wrapper.

The three model families the paper evaluates — random forest, logistic
regression, and a LightGBM-style GBDT — plus the online logistic regression
used by the supplement's objective-approximation proxy.
"""

from repro.models.base import (
    MatrixClassifier,
    TableModel,
    TrainingAlgorithm,
    make_algorithm,
    predict_from_proba,
)
from repro.models.boosting import GradientBoostingClassifier
from repro.models.forest import RandomForestClassifier
from repro.models.knn import KNeighborsClassifier
from repro.models.logistic import LogisticRegression, softmax
from repro.models.naive_bayes import GaussianNB
from repro.models.online import OnlineLogisticRegression
from repro.models.tree import DecisionTreeClassifier

__all__ = [
    "MatrixClassifier",
    "TableModel",
    "TrainingAlgorithm",
    "make_algorithm",
    "predict_from_proba",
    "LogisticRegression",
    "softmax",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "GradientBoostingClassifier",
    "OnlineLogisticRegression",
    "GaussianNB",
    "KNeighborsClassifier",
]

# The paper's three model configurations (§5.1): scikit-learn defaults with
# max_iter=500 for LR, max_depth=3 for RF, LightGBM defaults.
PAPER_MODELS = {
    "LR": lambda: LogisticRegression(max_iter=500),
    "RF": lambda: RandomForestClassifier(max_depth=3, random_state=42),
    "LGBM": lambda: GradientBoostingClassifier(),
}


def paper_algorithm(name: str) -> TrainingAlgorithm:
    """Training algorithm for one of the paper's model names (LR/RF/LGBM)."""
    if name not in PAPER_MODELS:
        raise KeyError(f"unknown model {name!r}; choose from {sorted(PAPER_MODELS)}")
    # Trees are scale-invariant; only LR benefits from standardization.
    return make_algorithm(PAPER_MODELS[name], standardize=(name == "LR"))


# Extension models (beyond the paper) for the model-agnostic ablations.
EXTENDED_MODELS = {
    **PAPER_MODELS,
    "NB": lambda: GaussianNB(),
    "KNN": lambda: KNeighborsClassifier(k=5),
}

# Distance- and likelihood-based models want standardized features.
_STANDARDIZE = {"LR", "NB", "KNN"}


def extended_algorithm(name: str) -> TrainingAlgorithm:
    """Training algorithm from the extended registry (paper's 3 + NB + KNN)."""
    if name not in EXTENDED_MODELS:
        raise KeyError(
            f"unknown model {name!r}; choose from {sorted(EXTENDED_MODELS)}"
        )
    return make_algorithm(EXTENDED_MODELS[name], standardize=(name in _STANDARDIZE))
