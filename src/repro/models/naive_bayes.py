"""Gaussian naive Bayes classifier.

A fourth model family beyond the paper's three (LR/RF/LGBM), used in the
extension ablations to stress FROTE's model-agnostic claim — the black-box
contract only needs ``fit``/``predict_proba``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array_1d, check_array_2d


class GaussianNB:
    """Per-class diagonal Gaussian likelihoods with a shared variance floor.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every per-class
        variance for numerical stability (scikit-learn convention).
    """

    #: Partial-refit protocol: sufficient statistics (per-class counts,
    #: means, and centred second moments) update in place in
    #: O(batch · d) — see :meth:`partial_update`.
    supports_partial_update = True

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise ValueError(f"var_smoothing must be >= 0, got {var_smoothing}")
        self.var_smoothing = var_smoothing
        self.theta_: np.ndarray | None = None  # (n_classes, d) means
        self.var_: np.ndarray | None = None  # (n_classes, d) variances
        self.class_log_prior_: np.ndarray | None = None
        self.n_classes_: int | None = None
        # Sufficient statistics for incremental refits: per-class counts,
        # means, and centred second moments (M2, à la Welford/Chan), plus
        # the same trio over all rows for the smoothing eps and the
        # absent-class fallback.
        self._count: np.ndarray | None = None  # (n_classes,)
        self._mean: np.ndarray | None = None  # (n_classes, d)
        self._m2: np.ndarray | None = None  # (n_classes, d)
        self._g_n: int = 0
        self._g_mean: np.ndarray | None = None  # (d,)
        self._g_m2: np.ndarray | None = None  # (d,)

    def fit(self, X: np.ndarray, y: np.ndarray, *, n_classes: int | None = None) -> "GaussianNB":
        X = check_array_2d(X, name="X")
        y = check_array_1d(y, name="y", dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if n_classes is None:
            n_classes = int(y.max()) + 1
        self.n_classes_ = n_classes
        n, d = X.shape
        theta = np.zeros((n_classes, d))
        var = np.ones((n_classes, d))
        prior = np.full(n_classes, 1e-10)
        count = np.zeros(n_classes)
        mean = np.zeros((n_classes, d))
        m2 = np.zeros((n_classes, d))
        global_var = X.var(axis=0).max() if n > 1 else 1.0
        eps = self.var_smoothing * max(global_var, 1e-12)
        for c in range(n_classes):
            rows = y == c
            cnt = int(rows.sum())
            if cnt == 0:
                # Absent class: keep a vague prior-centered Gaussian.
                theta[c] = X.mean(axis=0)
                var[c] = max(global_var, 1.0)
                continue
            prior[c] = cnt
            count[c] = cnt
            mean[c] = X[rows].mean(axis=0)
            m2[c] = X[rows].var(axis=0) * cnt
            theta[c] = mean[c]
            var[c] = X[rows].var(axis=0) + eps + 1e-12
        self.theta_ = theta
        self.var_ = var
        self.class_log_prior_ = np.log(prior / prior.sum())
        self._count = count
        self._mean = mean
        self._m2 = m2
        self._g_n = n
        self._g_mean = X.mean(axis=0)
        self._g_m2 = X.var(axis=0) * n
        return self

    # ------------------------------------------------------------------ #
    # Incremental refits.
    @staticmethod
    def _merge(
        n_a: np.ndarray, mean_a: np.ndarray, m2_a: np.ndarray,
        n_b: np.ndarray, mean_b: np.ndarray, m2_b: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Chan's parallel merge of (count, mean, M2) moment triples."""
        n = n_a + n_b
        safe_n = np.where(n > 0, n, 1.0)
        delta = mean_b - mean_a
        mean = mean_a + delta * (n_b / safe_n)
        m2 = m2_a + m2_b + delta * delta * (n_a * n_b / safe_n)
        return n, mean, m2

    def partial_update(self, X_new: np.ndarray, y_new: np.ndarray) -> "GaussianNB":
        """Fold appended rows into the sufficient statistics in place.

        Mathematically equivalent to refitting on the concatenated data:
        means, variances, the shared smoothing eps, and the class priors
        are all recomputed from exactly-merged moments — only
        floating-point association differs from a batch ``fit``, so
        parameters agree to rounding error and predictions agree wherever
        the class posteriors are not exactly tied.

        Parameters
        ----------
        X_new : ndarray of shape (n_new, n_features)
            Appended feature rows.
        y_new : ndarray of shape (n_new,)
            Their labels (codes within the fitted ``n_classes_``).
        """
        if self.theta_ is None or self._count is None or self.n_classes_ is None:
            raise RuntimeError("GaussianNB is not fitted")
        X_new = check_array_2d(X_new, name="X_new")
        y_new = check_array_1d(y_new, name="y_new", dtype=np.int64)
        if X_new.shape[0] != y_new.shape[0]:
            raise ValueError("X_new and y_new have different numbers of rows")
        if y_new.size and (y_new.min() < 0 or y_new.max() >= self.n_classes_):
            raise ValueError(f"y_new has codes outside [0, {self.n_classes_})")
        if X_new.shape[0] == 0:
            return self
        n_b = X_new.shape[0]
        mean_b = X_new.mean(axis=0)
        m2_b = X_new.var(axis=0) * n_b
        g_n, self._g_mean, self._g_m2 = self._merge(
            np.float64(self._g_n), self._g_mean, self._g_m2,
            np.float64(n_b), mean_b, m2_b,
        )
        self._g_n = int(g_n)
        for c in np.unique(y_new):
            rows = y_new == c
            cnt = int(rows.sum())
            cm = X_new[rows].mean(axis=0)
            cm2 = X_new[rows].var(axis=0) * cnt
            self._count[c], self._mean[c], self._m2[c] = self._merge(
                self._count[c], self._mean[c], self._m2[c],
                np.float64(cnt), cm, cm2,
            )
        self._refresh_parameters()
        return self

    def _refresh_parameters(self) -> None:
        """Recompute (theta, var, prior) from the sufficient statistics.

        O(n_classes · d) — independent of the number of training rows.
        The smoothing eps depends on the *global* variance, so every
        class refreshes, not just the ones the batch touched.
        """
        assert self._count is not None and self._mean is not None
        assert self._m2 is not None and self._g_mean is not None
        global_var = float((self._g_m2 / self._g_n).max()) if self._g_n > 1 else 1.0
        eps = self.var_smoothing * max(global_var, 1e-12)
        present = self._count > 0
        counts = np.where(present, self._count, 1.0)
        theta = np.where(present[:, None], self._mean, self._g_mean[None, :])
        var = np.where(
            present[:, None],
            self._m2 / counts[:, None] + eps + 1e-12,
            max(global_var, 1.0),
        )
        prior = np.where(present, self._count, 1e-10)
        self.theta_ = theta
        self.var_ = var
        self.class_log_prior_ = np.log(prior / prior.sum())

    def checkpoint(self):
        """Cheap state token (O(n_classes · d) copies) for :meth:`rollback`."""
        if self.theta_ is None or self._count is None:
            raise RuntimeError("GaussianNB is not fitted")
        return (
            self.theta_.copy(), self.var_.copy(), self.class_log_prior_.copy(),
            self._count.copy(), self._mean.copy(), self._m2.copy(),
            self._g_n, self._g_mean.copy(), self._g_m2.copy(),
        )

    def rollback(self, token) -> None:
        """Restore the state captured by :meth:`checkpoint`."""
        (
            self.theta_, self.var_, self.class_log_prior_,
            self._count, self._mean, self._m2,
            self._g_n, self._g_mean, self._g_m2,
        ) = token

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        assert self.theta_ is not None and self.var_ is not None
        assert self.class_log_prior_ is not None
        X = check_array_2d(X, name="X")
        n_classes = self.theta_.shape[0]
        jll = np.empty((X.shape[0], n_classes))
        for c in range(n_classes):
            diff = X - self.theta_[c]
            log_pdf = -0.5 * (
                np.log(2.0 * np.pi * self.var_[c]) + diff * diff / self.var_[c]
            ).sum(axis=1)
            jll[:, c] = self.class_log_prior_[c] + log_pdf
        return jll

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.theta_ is None:
            raise RuntimeError("GaussianNB is not fitted")
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        P = np.exp(jll)
        P /= P.sum(axis=1, keepdims=True)
        return P

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.theta_ is None:
            raise RuntimeError("GaussianNB is not fitted")
        return np.argmax(self._joint_log_likelihood(X), axis=1).astype(np.int64)
