"""Gaussian naive Bayes classifier.

A fourth model family beyond the paper's three (LR/RF/LGBM), used in the
extension ablations to stress FROTE's model-agnostic claim — the black-box
contract only needs ``fit``/``predict_proba``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array_1d, check_array_2d


class GaussianNB:
    """Per-class diagonal Gaussian likelihoods with a shared variance floor.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every per-class
        variance for numerical stability (scikit-learn convention).
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise ValueError(f"var_smoothing must be >= 0, got {var_smoothing}")
        self.var_smoothing = var_smoothing
        self.theta_: np.ndarray | None = None  # (n_classes, d) means
        self.var_: np.ndarray | None = None  # (n_classes, d) variances
        self.class_log_prior_: np.ndarray | None = None
        self.n_classes_: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray, *, n_classes: int | None = None) -> "GaussianNB":
        X = check_array_2d(X, name="X")
        y = check_array_1d(y, name="y", dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if n_classes is None:
            n_classes = int(y.max()) + 1
        self.n_classes_ = n_classes
        n, d = X.shape
        theta = np.zeros((n_classes, d))
        var = np.ones((n_classes, d))
        prior = np.full(n_classes, 1e-10)
        global_var = X.var(axis=0).max() if n > 1 else 1.0
        eps = self.var_smoothing * max(global_var, 1e-12)
        for c in range(n_classes):
            rows = y == c
            cnt = int(rows.sum())
            if cnt == 0:
                # Absent class: keep a vague prior-centered Gaussian.
                theta[c] = X.mean(axis=0)
                var[c] = max(global_var, 1.0)
                continue
            prior[c] = cnt
            theta[c] = X[rows].mean(axis=0)
            var[c] = X[rows].var(axis=0) + eps + 1e-12
        self.theta_ = theta
        self.var_ = var
        self.class_log_prior_ = np.log(prior / prior.sum())
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        assert self.theta_ is not None and self.var_ is not None
        assert self.class_log_prior_ is not None
        X = check_array_2d(X, name="X")
        n_classes = self.theta_.shape[0]
        jll = np.empty((X.shape[0], n_classes))
        for c in range(n_classes):
            diff = X - self.theta_[c]
            log_pdf = -0.5 * (
                np.log(2.0 * np.pi * self.var_[c]) + diff * diff / self.var_[c]
            ).sum(axis=1)
            jll[:, c] = self.class_log_prior_[c] + log_pdf
        return jll

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.theta_ is None:
            raise RuntimeError("GaussianNB is not fitted")
        jll = self._joint_log_likelihood(X)
        jll -= jll.max(axis=1, keepdims=True)
        P = np.exp(jll)
        P /= P.sum(axis=1, keepdims=True)
        return P

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.theta_ is None:
            raise RuntimeError("GaussianNB is not fitted")
        return np.argmax(self._joint_log_likelihood(X), axis=1).astype(np.int64)
