"""Classifier protocol and the table-level training algorithm wrapper.

FROTE treats the training algorithm as a black box (paper §1): anything that
maps a dataset to a model with ``predict``.  This module defines:

* :class:`MatrixClassifier` — the protocol all from-scratch estimators in
  :mod:`repro.models` implement (``fit(X, y, n_classes)`` on float matrices).
* :class:`TableModel` — pairs a feature encoder with a matrix classifier so
  the rest of the library only ever deals with :class:`~repro.data.Table` /
  :class:`~repro.data.Dataset` objects.
* :func:`make_algorithm` — builds the ``algorithm: Dataset -> model``
  callable that FROTE consumes.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.data.dataset import Dataset
from repro.data.encoding import TabularEncoder
from repro.data.table import Table


@runtime_checkable
class MatrixClassifier(Protocol):
    """Minimal estimator interface over dense float matrices."""

    def fit(self, X: np.ndarray, y: np.ndarray, *, n_classes: int) -> "MatrixClassifier":
        ...

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        ...


def predict_from_proba(proba: np.ndarray) -> np.ndarray:
    """Argmax decision rule shared by every estimator."""
    return np.argmax(proba, axis=1).astype(np.int64)


class TableModel:
    """A trained classifier over tables: encoder + matrix estimator.

    Degenerate training sets (a single class present) fall back to a
    constant predictor, so FROTE never crashes on extreme splits.

    Parameters
    ----------
    estimator:
        An unfitted :class:`MatrixClassifier`.
    standardize:
        Standardize numeric features in the encoder (linear models want
        this; trees are invariant to it).
    """

    def __init__(self, estimator: MatrixClassifier, *, standardize: bool = True) -> None:
        self.estimator = estimator
        self.standardize = standardize
        self.encoder_: TabularEncoder | None = None
        self.n_classes_: int | None = None
        self._constant_class: int | None = None

    def fit(self, dataset: Dataset) -> "TableModel":
        self.n_classes_ = dataset.n_classes
        self.encoder_ = TabularEncoder(standardize=self.standardize).fit(dataset.X)
        present = np.unique(dataset.y)
        if present.size <= 1:
            self._constant_class = int(present[0]) if present.size else 0
            return self
        self._constant_class = None
        X = self.encoder_.transform(dataset.X)
        self.estimator.fit(X, dataset.y, n_classes=dataset.n_classes)
        return self

    # ------------------------------------------------------------------ #
    # Incremental refits (the engine's opt-in `incremental=True` path).
    @property
    def supports_partial_update(self) -> bool:
        """Whether :meth:`partial_update` is an exact delta shortcut.

        "Exact" in the estimator's own contract: a refit-equivalent for
        memory/moment models (KNN, GaussianNB), an exact *online-training
        continuation* for SGD models (``OnlineLogisticRegression`` —
        the supplement's approximation; see its ``partial_update``).

        Three conditions: the estimator implements the partial-update
        protocol (``supports_partial_update`` + ``partial_update`` +
        ``checkpoint``/``rollback``); the encoder holds no standardization
        statistics (scaler means/stds are dataset-global, so any appended
        row would change every encoded row — a delta cannot be exact);
        and the model is not in the degenerate constant-class fallback.
        """
        return (
            self.encoder_ is not None
            and self._constant_class is None
            and getattr(self.encoder_, "_scaler", None) is None
            and getattr(self.estimator, "supports_partial_update", False)
        )

    def partial_update(self, delta: Dataset) -> "TableModel":
        """Refit in O(batch) by folding ``delta``'s rows into the estimator.

        Only valid when :attr:`supports_partial_update` is true; the
        encoder (vocabulary-driven, no fitted statistics) transforms the
        appended rows exactly as a refit would, and the estimator appends
        them to its training state in place.
        """
        if not self.supports_partial_update:
            raise RuntimeError(
                "this TableModel cannot partial-update; check "
                "supports_partial_update and fall back to a full fit"
            )
        X = self.encoder_.transform(delta.X)
        self.estimator.partial_update(X, delta.y)
        return self

    def checkpoint(self):
        """Estimator state token for :meth:`rollback` (rejected candidates)."""
        return self.estimator.checkpoint()

    def rollback(self, token) -> None:
        """Undo every :meth:`partial_update` since ``token``."""
        self.estimator.rollback(token)

    def predict_proba(self, table: Table) -> np.ndarray:
        """Class probabilities per row.

        Sharded tables are predicted in shard-aligned row blocks via
        :meth:`~repro.data.encoding.TabularEncoder.iter_transform_blocks`
        — prediction is row-independent, so only one encoded block plus
        the ``(n, n_classes)`` output is ever resident, never the full
        ``(n, n_features)`` matrix.  Caveat (shared with the incremental
        path, see ``docs/architecture.md``): estimators whose forward pass
        runs through BLAS matmuls (logistic regression) are not guaranteed
        *bitwise*-identical between blocked and whole-matrix evaluation;
        elementwise/per-row estimators (GaussianNB, KNN) are.
        """
        if self.encoder_ is None or self.n_classes_ is None:
            raise RuntimeError("TableModel is not fitted")
        if self._constant_class is not None:
            proba = np.zeros((table.n_rows, self.n_classes_))
            proba[:, self._constant_class] = 1.0
            return proba
        if getattr(table, "shard_rows", None) is not None:
            proba = np.empty((table.n_rows, self.n_classes_), dtype=np.float64)
            for start, stop, X in self.encoder_.iter_transform_blocks(table):
                proba[start:stop] = self.estimator.predict_proba(X)
            return proba
        return self.estimator.predict_proba(self.encoder_.transform(table))

    def predict(self, table: Table) -> np.ndarray:
        return predict_from_proba(self.predict_proba(table))


# The black-box contract of FROTE: dataset in, trained model out.
TrainingAlgorithm = Callable[[Dataset], TableModel]


def make_algorithm(
    estimator_factory: Callable[[], MatrixClassifier],
    *,
    standardize: bool = True,
    warm_start: bool = False,
) -> TrainingAlgorithm:
    """Wrap an estimator factory into a FROTE training algorithm.

    Each invocation builds a fresh estimator so retraining never leaks state
    between FROTE iterations.

    With ``warm_start=True``, estimators exposing ``warm_start_from(coef,
    intercept)`` (batch LR) have each refit's optimizer seeded with the
    previous fit's coefficients — the fresh-estimator contract is kept
    (only a *copy* of the coefficients crosses fits, so a rejected
    candidate's fit can never mutate the retained model), but the
    optimizer starts near the previous optimum instead of at zero.  The
    FROTE loop's successive training sets differ by one small batch, so
    the iterate path shortens substantially (pinned by
    ``tests/models/test_warm_start.py``); because the iterate *path*
    changes, coefficient bits may differ from a cold fit within ``tol``.
    Off by default — the parity-pinned default path always cold-starts.

    Example
    -------
    >>> from repro.models import LogisticRegression, make_algorithm
    >>> algorithm = make_algorithm(lambda: LogisticRegression(max_iter=500))
    >>> model = algorithm(train_dataset)  # doctest: +SKIP
    """

    last_fit: dict[str, np.ndarray] = {}

    def algorithm(dataset: Dataset) -> TableModel:
        estimator = estimator_factory()
        if warm_start and last_fit and hasattr(estimator, "warm_start_from"):
            estimator.warm_start_from(last_fit["coef"], last_fit["intercept"])
        model = TableModel(estimator, standardize=standardize).fit(dataset)
        if (
            warm_start
            and getattr(estimator, "coef_", None) is not None
            and getattr(estimator, "intercept_", None) is not None
        ):
            last_fit["coef"] = estimator.coef_.copy()
            last_fit["intercept"] = estimator.intercept_.copy()
        return model

    return algorithm
