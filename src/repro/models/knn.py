"""K-nearest-neighbours classifier built on the neighbours substrate.

A memory-based fifth model family for the model-agnostic ablations: FROTE
edits it like any other (its "decision boundary" IS the training data, so
augmentation moves it directly).
"""

from __future__ import annotations

import numpy as np

from repro.data.builder import GrowableArray
from repro.neighbors import BallTree, BruteKNN
from repro.utils.validation import check_array_1d, check_array_2d


class KNeighborsClassifier:
    """Majority-vote KNN over an exact index.

    Parameters
    ----------
    k:
        Number of neighbours.
    algorithm:
        ``"ball_tree"`` (default, like the paper's neighbour config) or
        ``"brute"``.
    weights:
        ``"uniform"`` or ``"distance"`` (inverse-distance vote weights).
    """

    #: Partial-refit protocol: an accepted batch updates the training set
    #: in place (index append + label append) instead of refitting — see
    #: :meth:`partial_update`.
    supports_partial_update = True

    def __init__(
        self,
        k: int = 5,
        *,
        algorithm: str = "ball_tree",
        weights: str = "uniform",
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"weights must be 'uniform' or 'distance', got {weights!r}")
        if algorithm not in ("ball_tree", "brute"):
            raise ValueError(f"algorithm must be 'ball_tree' or 'brute', got {algorithm!r}")
        self.k = k
        self.algorithm = algorithm
        self.weights = weights
        self._index: BallTree | BruteKNN | None = None
        self._y: GrowableArray | None = None
        self.n_classes_: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray, *, n_classes: int | None = None) -> "KNeighborsClassifier":
        X = check_array_2d(X, name="X")
        y = check_array_1d(y, name="y", dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if n_classes is None:
            n_classes = int(y.max()) + 1
        self.n_classes_ = n_classes
        index = BallTree() if self.algorithm == "ball_tree" else BruteKNN()
        self._index = index.fit(X)
        self._y = GrowableArray(np.int64, initial=y)
        return self

    # ------------------------------------------------------------------ #
    # Incremental refits: the "decision boundary" of a KNN IS its training
    # data, so appending rows to the index and the label store is an
    # *exact* refit in O(batch) amortized.
    def partial_update(self, X_new: np.ndarray, y_new: np.ndarray) -> "KNeighborsClassifier":
        """Add training rows in place; equivalent to refitting on the
        concatenated data (queries are answered against the exact same
        reference set — see :meth:`BallTree.append`).

        Parameters
        ----------
        X_new : ndarray of shape (n_new, n_features)
            Appended feature rows.
        y_new : ndarray of shape (n_new,)
            Their labels (codes within the fitted ``n_classes_``).
        """
        if self._index is None or self._y is None or self.n_classes_ is None:
            raise RuntimeError("KNeighborsClassifier is not fitted")
        X_new = check_array_2d(X_new, name="X_new")
        y_new = check_array_1d(y_new, name="y_new", dtype=np.int64)
        if X_new.shape[0] != y_new.shape[0]:
            raise ValueError("X_new and y_new have different numbers of rows")
        if y_new.size and (y_new.min() < 0 or y_new.max() >= self.n_classes_):
            raise ValueError(
                f"y_new has codes outside [0, {self.n_classes_})"
            )
        self._index.append(X_new)
        self._y.append(y_new)
        return self

    def checkpoint(self):
        """Cheap state token; :meth:`rollback` undoes later partial updates."""
        if self._index is None or self._y is None:
            raise RuntimeError("KNeighborsClassifier is not fitted")
        return (self._index.checkpoint(), self._y.n)

    def rollback(self, token) -> None:
        """Undo every :meth:`partial_update` since ``token`` in O(1)."""
        if self._index is None or self._y is None:
            raise RuntimeError("KNeighborsClassifier is not fitted")
        index_token, n_labels = token
        self._index.rollback(index_token)
        self._y.truncate(n_labels)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._index is None or self._y is None or self.n_classes_ is None:
            raise RuntimeError("KNeighborsClassifier is not fitted")
        X = check_array_2d(X, name="X")
        y = self._y.view()
        k_eff = min(self.k, y.shape[0])
        dists, idx = self._index.kneighbors(X, k_eff)
        labels = y[idx]
        proba = np.zeros((X.shape[0], self.n_classes_))
        if self.weights == "uniform":
            w = np.ones_like(dists)
        else:
            w = 1.0 / np.maximum(dists, 1e-10)
        for c in range(self.n_classes_):
            proba[:, c] = np.where(labels == c, w, 0.0).sum(axis=1)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1).astype(np.int64)
