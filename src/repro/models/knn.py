"""K-nearest-neighbours classifier built on the neighbours substrate.

A memory-based fifth model family for the model-agnostic ablations: FROTE
edits it like any other (its "decision boundary" IS the training data, so
augmentation moves it directly).
"""

from __future__ import annotations

import numpy as np

from repro.neighbors import BallTree, BruteKNN
from repro.utils.validation import check_array_1d, check_array_2d


class KNeighborsClassifier:
    """Majority-vote KNN over an exact index.

    Parameters
    ----------
    k:
        Number of neighbours.
    algorithm:
        ``"ball_tree"`` (default, like the paper's neighbour config) or
        ``"brute"``.
    weights:
        ``"uniform"`` or ``"distance"`` (inverse-distance vote weights).
    """

    def __init__(
        self,
        k: int = 5,
        *,
        algorithm: str = "ball_tree",
        weights: str = "uniform",
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if weights not in ("uniform", "distance"):
            raise ValueError(f"weights must be 'uniform' or 'distance', got {weights!r}")
        if algorithm not in ("ball_tree", "brute"):
            raise ValueError(f"algorithm must be 'ball_tree' or 'brute', got {algorithm!r}")
        self.k = k
        self.algorithm = algorithm
        self.weights = weights
        self._index: BallTree | BruteKNN | None = None
        self._y: np.ndarray | None = None
        self.n_classes_: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray, *, n_classes: int | None = None) -> "KNeighborsClassifier":
        X = check_array_2d(X, name="X")
        y = check_array_1d(y, name="y", dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on an empty dataset")
        if n_classes is None:
            n_classes = int(y.max()) + 1
        self.n_classes_ = n_classes
        index = BallTree() if self.algorithm == "ball_tree" else BruteKNN()
        self._index = index.fit(X)
        self._y = y
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._index is None or self._y is None or self.n_classes_ is None:
            raise RuntimeError("KNeighborsClassifier is not fitted")
        X = check_array_2d(X, name="X")
        k_eff = min(self.k, self._y.shape[0])
        dists, idx = self._index.kneighbors(X, k_eff)
        labels = self._y[idx]
        proba = np.zeros((X.shape[0], self.n_classes_))
        if self.weights == "uniform":
            w = np.ones_like(dists)
        else:
            w = 1.0 / np.maximum(dists, 1e-10)
        for c in range(self.n_classes_):
            proba[:, c] = np.where(labels == c, w, 0.0).sum(axis=1)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1).astype(np.int64)
