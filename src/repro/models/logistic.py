"""Multinomial logistic regression trained with L-BFGS.

Re-implements the paper's scikit-learn ``LogisticRegression(max_iter=500)``
configuration: softmax cross-entropy with L2 regularization (C = 1.0,
intercept unpenalized), optimized via :func:`scipy.optimize.minimize`.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.utils.validation import check_array_1d, check_array_2d


def softmax(Z: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-subtraction for numerical stability."""
    Z = Z - Z.max(axis=1, keepdims=True)
    np.exp(Z, out=Z)
    Z /= Z.sum(axis=1, keepdims=True)
    return Z


class LogisticRegression:
    """Softmax regression with L2 penalty.

    Parameters
    ----------
    C:
        Inverse regularization strength (scikit-learn convention).
    max_iter:
        L-BFGS iteration cap; the paper uses 500.
    tol:
        Gradient tolerance for convergence.
    warm_start:
        Seed the optimizer with this instance's previous ``coef_`` /
        ``intercept_`` (when shapes still match) instead of zeros.
        Changes the L-BFGS iterate path, not the problem: the objective
        is strictly convex, so the optimum is the same up to ``tol`` —
        but iterates, iteration counts (``n_iter_``), and therefore exact
        coefficient bits may differ from a cold fit.  Off by default;
        the parity-pinned paths never enable it.
    """

    def __init__(
        self,
        C: float = 1.0,
        max_iter: int = 500,
        tol: float = 1e-6,
        warm_start: bool = False,
    ) -> None:
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.C = C
        self.max_iter = max_iter
        self.tol = tol
        self.warm_start = warm_start
        self.coef_: np.ndarray | None = None  # (n_features, n_classes)
        self.intercept_: np.ndarray | None = None  # (n_classes,)
        self.n_classes_: int | None = None
        self.n_iter_: int | None = None  # L-BFGS iterations of the last fit
        self._init_coef: np.ndarray | None = None
        self._init_intercept: np.ndarray | None = None

    def warm_start_from(self, coef: np.ndarray, intercept: np.ndarray) -> "LogisticRegression":
        """Seed the next :meth:`fit`'s optimizer with explicit coefficients.

        Used by :func:`repro.models.base.make_algorithm`'s warm-start
        path, where every refit builds a *fresh* estimator (so the
        previous fit's coefficients must be handed over explicitly
        rather than read off ``self``).  Ignored if the shapes don't
        match the next fit's problem.
        """
        self._init_coef = np.array(coef, dtype=np.float64, copy=True)
        self._init_intercept = np.array(intercept, dtype=np.float64, copy=True)
        return self

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray, *, n_classes: int | None = None) -> "LogisticRegression":
        X = check_array_2d(X, name="X")
        y = check_array_1d(y, name="y", dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if n_classes is None:
            n_classes = int(y.max()) + 1
        if n_classes < 2:
            raise ValueError("need at least 2 classes")
        n, d = X.shape
        self.n_classes_ = n_classes

        Y = np.zeros((n, n_classes))
        Y[np.arange(n), y] = 1.0
        lam = 1.0 / (self.C * max(n, 1))

        def objective(w_flat: np.ndarray) -> tuple[float, np.ndarray]:
            W = w_flat[: d * n_classes].reshape(d, n_classes)
            b = w_flat[d * n_classes :]
            Z = X @ W + b
            # log-sum-exp cross entropy
            Zmax = Z.max(axis=1, keepdims=True)
            logsumexp = Zmax[:, 0] + np.log(np.exp(Z - Zmax).sum(axis=1))
            ll = (Z[np.arange(n), y] - logsumexp).sum()
            P = softmax(Z.copy())
            G = P - Y
            grad_W = X.T @ G / n + 2.0 * lam * W
            grad_b = G.sum(axis=0) / n
            loss = -ll / n + lam * float((W * W).sum())
            return loss, np.concatenate([grad_W.ravel(), grad_b])

        w0 = np.zeros(d * n_classes + n_classes)
        init_coef, init_intercept = self._init_coef, self._init_intercept
        if init_coef is None and self.warm_start and self.coef_ is not None:
            init_coef, init_intercept = self.coef_, self.intercept_
        if (
            init_coef is not None
            and init_intercept is not None
            and init_coef.shape == (d, n_classes)
            and init_intercept.shape == (n_classes,)
        ):
            w0 = np.concatenate([np.ravel(init_coef), init_intercept])
        res = minimize(
            objective,
            w0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        w = res.x
        self.coef_ = w[: d * n_classes].reshape(d, n_classes)
        self.intercept_ = w[d * n_classes :]
        self.n_iter_ = int(res.nit)
        return self

    # ------------------------------------------------------------------ #
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.coef_ is None or self.intercept_ is None:
            raise RuntimeError("LogisticRegression is not fitted")
        X = check_array_2d(X, name="X")
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return softmax(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.decision_function(X), axis=1).astype(np.int64)
