"""Random forest classifier built on :class:`~repro.models.tree.DecisionTreeClassifier`.

Matches the paper's configuration surface: scikit-learn defaults except
``max_depth=3``.  Bootstrap sampling plus per-split feature subsampling
(``max_features="sqrt"``), probabilities averaged across trees.
"""

from __future__ import annotations

import numpy as np

from repro.models.tree import DecisionTreeClassifier
from repro.utils.rng import RandomState, check_random_state, spawn_rng
from repro.utils.validation import check_array_1d, check_array_2d


class RandomForestClassifier:
    """Bagged ensemble of CART trees.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth:
        Per-tree depth cap (paper uses 3).
    max_features:
        Features considered per split; default ``"sqrt"``.
    bootstrap:
        Sample the training set with replacement per tree.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_depth: int | None = 3,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        criterion: str = "gini",
        bootstrap: bool = True,
        random_state: RandomState = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self.bootstrap = bootstrap
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] = []
        self.n_classes_: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray, *, n_classes: int | None = None) -> "RandomForestClassifier":
        X = check_array_2d(X, name="X")
        y = check_array_1d(y, name="y", dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if n_classes is None:
            n_classes = int(y.max()) + 1
        self.n_classes_ = n_classes
        rng = check_random_state(self.random_state)
        rngs = spawn_rng(rng, self.n_estimators)
        self.trees_ = []
        n = X.shape[0]
        for tree_rng in rngs:
            if self.bootstrap:
                sample = tree_rng.integers(0, n, size=n)
                Xb, yb = X[sample], y[sample]
            else:
                Xb, yb = X, y
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                criterion=self.criterion,
                random_state=tree_rng,
            )
            tree.fit(Xb, yb, n_classes=n_classes)
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_ or self.n_classes_ is None:
            raise RuntimeError("RandomForestClassifier is not fitted")
        X = check_array_2d(X, name="X")
        proba = np.zeros((X.shape[0], self.n_classes_))
        for tree in self.trees_:
            proba += tree.predict_proba(X)
        proba /= len(self.trees_)
        return proba

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1).astype(np.int64)
