"""Histogram-based gradient boosting classifier (LightGBM substitute).

Implements the core LightGBM recipe the paper's third model relies on:

* features quantile-binned once up front (``max_bins`` histogram bins);
* regression trees grown **leaf-wise** (best-gain-first) on first- and
  second-order gradients (Newton boosting);
* split gain ``G_L^2/(H_L+λ) + G_R^2/(H_R+λ) - G^2/(H+λ)``;
* logistic loss for binary problems, softmax (one tree per class per
  round) for multiclass.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_array_1d, check_array_2d


class _Binner:
    """Quantile binning of float features into integer histogram bins."""

    def __init__(self, max_bins: int = 255) -> None:
        if not 2 <= max_bins <= 255:
            raise ValueError(f"max_bins must be in [2, 255], got {max_bins}")
        self.max_bins = max_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "_Binner":
        edges = []
        for f in range(X.shape[1]):
            col = X[:, f]
            qs = np.quantile(col, np.linspace(0, 1, self.max_bins + 1)[1:-1])
            edges.append(np.unique(qs))
        self.edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("_Binner is not fitted")
        out = np.empty(X.shape, dtype=np.int32)
        for f, e in enumerate(self.edges_):
            out[:, f] = np.searchsorted(e, X[:, f], side="right")
        return out

    def n_bins(self, f: int) -> int:
        assert self.edges_ is not None
        return len(self.edges_[f]) + 1


@dataclass
class _Leaf:
    idx: np.ndarray
    value: float = 0.0
    # Split bookkeeping (filled by _find_best_split):
    gain: float = -np.inf
    feature: int = -1
    bin_threshold: int = -1


@dataclass
class _SplitNode:
    feature: int
    bin_threshold: int
    left: "int"
    right: "int"


@dataclass
class _HistTree:
    """Flattened tree: ``nodes[i]`` is a _SplitNode or a float leaf value."""

    nodes: list = field(default_factory=list)

    def predict_binned(self, B: np.ndarray) -> np.ndarray:
        out = np.zeros(B.shape[0])
        frontier = [(0, np.arange(B.shape[0], dtype=np.intp))]
        while frontier:
            node_id, rows = frontier.pop()
            if rows.size == 0:
                continue
            node = self.nodes[node_id]
            if isinstance(node, float):
                out[rows] = node
                continue
            go_left = B[rows, node.feature] <= node.bin_threshold
            frontier.append((node.left, rows[go_left]))
            frontier.append((node.right, rows[~go_left]))
        return out


class _HistTreeBuilder:
    """Leaf-wise tree growth on (gradient, hessian) targets."""

    def __init__(
        self,
        binner: _Binner,
        *,
        max_leaves: int,
        max_depth: int | None,
        min_child_samples: int,
        reg_lambda: float,
        min_gain: float,
    ) -> None:
        self.binner = binner
        self.max_leaves = max_leaves
        self.max_depth = max_depth
        self.min_child_samples = min_child_samples
        self.reg_lambda = reg_lambda
        self.min_gain = min_gain

    def build(self, B: np.ndarray, g: np.ndarray, h: np.ndarray) -> _HistTree:
        lam = self.reg_lambda

        def leaf_value(idx: np.ndarray) -> float:
            return float(-g[idx].sum() / (h[idx].sum() + lam))

        def best_split(idx: np.ndarray) -> tuple[float, int, int]:
            """Return (gain, feature, bin_threshold) for the node at ``idx``."""
            G, H = g[idx].sum(), h[idx].sum()
            parent = G * G / (H + lam)
            best = (-np.inf, -1, -1)
            for f in range(B.shape[1]):
                nb = self.binner.n_bins(f)
                if nb < 2:
                    continue
                bins_f = B[idx, f]
                hist_g = np.bincount(bins_f, weights=g[idx], minlength=nb)
                hist_h = np.bincount(bins_f, weights=h[idx], minlength=nb)
                hist_n = np.bincount(bins_f, minlength=nb)
                GL = np.cumsum(hist_g)[:-1]
                HL = np.cumsum(hist_h)[:-1]
                NL = np.cumsum(hist_n)[:-1]
                GR, HR, NR = G - GL, H - HL, idx.size - NL
                valid = (NL >= self.min_child_samples) & (NR >= self.min_child_samples)
                if not np.any(valid):
                    continue
                gain = GL * GL / (HL + lam) + GR * GR / (HR + lam) - parent
                gain[~valid] = -np.inf
                b = int(np.argmax(gain))
                if gain[b] > best[0]:
                    best = (float(gain[b]), f, b)
            return best

        tree = _HistTree()
        root_idx = np.arange(B.shape[0], dtype=np.intp)
        tree.nodes.append(leaf_value(root_idx))
        if root_idx.size < 2 * self.min_child_samples:
            return tree

        # Leaf-wise growth: a heap of candidate splits keyed by -gain.
        heap: list[tuple[float, int, int, int, int, np.ndarray]] = []
        counter = 0  # tiebreaker so ndarray never gets compared

        def push(node_id: int, idx: np.ndarray, depth: int) -> None:
            nonlocal counter
            if self.max_depth is not None and depth >= self.max_depth:
                return
            if idx.size < 2 * self.min_child_samples:
                return
            gain, f, b = best_split(idx)
            if gain > self.min_gain:
                heapq.heappush(heap, (-gain, counter, node_id, f, b, idx, depth))
                counter += 1

        push(0, root_idx, 0)
        n_leaves = 1
        while heap and n_leaves < self.max_leaves:
            _, _, node_id, f, b, idx, depth = heapq.heappop(heap)
            go_left = B[idx, f] <= b
            left_idx, right_idx = idx[go_left], idx[~go_left]
            left_id = len(tree.nodes)
            tree.nodes.append(leaf_value(left_idx))
            right_id = len(tree.nodes)
            tree.nodes.append(leaf_value(right_idx))
            tree.nodes[node_id] = _SplitNode(f, b, left_id, right_id)
            n_leaves += 1
            push(left_id, left_idx, depth + 1)
            push(right_id, right_idx, depth + 1)
        return tree


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class GradientBoostingClassifier:
    """Newton-boosted histogram GBDT with leaf-wise trees.

    Parameters
    ----------
    n_estimators:
        Boosting rounds.
    learning_rate:
        Shrinkage applied to each tree's leaf values.
    max_leaves / max_depth / min_child_samples / reg_lambda:
        Tree growth controls (LightGBM-style defaults).
    max_bins:
        Histogram resolution.
    """

    def __init__(
        self,
        n_estimators: int = 60,
        *,
        learning_rate: float = 0.1,
        max_leaves: int = 31,
        max_depth: int | None = None,
        min_child_samples: int = 20,
        reg_lambda: float = 1.0,
        max_bins: int = 255,
        min_gain: float = 1e-12,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_leaves = max_leaves
        self.max_depth = max_depth
        self.min_child_samples = min_child_samples
        self.reg_lambda = reg_lambda
        self.max_bins = max_bins
        self.min_gain = min_gain
        self.binner_: _Binner | None = None
        self.trees_: list[list[_HistTree]] = []  # [round][class]
        self.base_score_: np.ndarray | None = None
        self.n_classes_: int | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray, *, n_classes: int | None = None) -> "GradientBoostingClassifier":
        X = check_array_2d(X, name="X")
        y = check_array_1d(y, name="y", dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if n_classes is None:
            n_classes = int(y.max()) + 1
        if n_classes < 2:
            raise ValueError("need at least 2 classes")
        self.n_classes_ = n_classes
        n = X.shape[0]
        self.binner_ = _Binner(self.max_bins).fit(X)
        B = self.binner_.transform(X)
        builder = _HistTreeBuilder(
            self.binner_,
            max_leaves=self.max_leaves,
            max_depth=self.max_depth,
            min_child_samples=min(self.min_child_samples, max(1, n // 10)),
            reg_lambda=self.reg_lambda,
            min_gain=self.min_gain,
        )
        self.trees_ = []
        if n_classes == 2:
            pos_rate = np.clip(y.mean(), 1e-6, 1 - 1e-6)
            self.base_score_ = np.array([np.log(pos_rate / (1 - pos_rate))])
            F = np.full(n, self.base_score_[0])
            y_f = y.astype(np.float64)
            for _ in range(self.n_estimators):
                p = _sigmoid(F)
                g = p - y_f
                h = np.maximum(p * (1 - p), 1e-12)
                tree = builder.build(B, g, h)
                F += self.learning_rate * tree.predict_binned(B)
                self.trees_.append([tree])
        else:
            prior = np.bincount(y, minlength=n_classes) / n
            self.base_score_ = np.log(np.clip(prior, 1e-6, None))
            F = np.tile(self.base_score_, (n, 1))
            Y = np.zeros((n, n_classes))
            Y[np.arange(n), y] = 1.0
            for _ in range(self.n_estimators):
                Z = F - F.max(axis=1, keepdims=True)
                P = np.exp(Z)
                P /= P.sum(axis=1, keepdims=True)
                round_trees: list[_HistTree] = []
                for c in range(n_classes):
                    g = P[:, c] - Y[:, c]
                    h = np.maximum(P[:, c] * (1 - P[:, c]), 1e-12)
                    tree = builder.build(B, g, h)
                    F[:, c] += self.learning_rate * tree.predict_binned(B)
                    round_trees.append(tree)
                self.trees_.append(round_trees)
        return self

    # ------------------------------------------------------------------ #
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.binner_ is None or self.base_score_ is None or self.n_classes_ is None:
            raise RuntimeError("GradientBoostingClassifier is not fitted")
        X = check_array_2d(X, name="X")
        B = self.binner_.transform(X)
        if self.n_classes_ == 2:
            F = np.full(X.shape[0], self.base_score_[0])
            for (tree,) in self.trees_:
                F += self.learning_rate * tree.predict_binned(B)
            return F
        F = np.tile(self.base_score_, (X.shape[0], 1))
        for round_trees in self.trees_:
            for c, tree in enumerate(round_trees):
                F[:, c] += self.learning_rate * tree.predict_binned(B)
        return F

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        F = self.decision_function(X)
        if self.n_classes_ == 2:
            p1 = _sigmoid(F)
            return np.column_stack([1 - p1, p1])
        Z = F - F.max(axis=1, keepdims=True)
        P = np.exp(Z)
        P /= P.sum(axis=1, keepdims=True)
        return P

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1).astype(np.int64)
