"""CART decision tree classifier (gini / entropy) built from scratch.

The split search is vectorized per feature: sort the node's values once,
take prefix sums of one-hot class counts, and evaluate the impurity decrease
of every candidate threshold in one pass.  This follows the scikit-learn
performance guidance of replacing inner Python loops with NumPy array
operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import RandomState, check_random_state
from repro.utils.validation import check_array_1d, check_array_2d


@dataclass
class _TreeNode:
    feature: int = -1  # -1 marks a leaf
    threshold: float = 0.0
    left: int = -1  # child node ids
    right: int = -1
    proba: np.ndarray | None = None  # leaf class distribution


def _impurity_from_counts(counts: np.ndarray, criterion: str) -> np.ndarray:
    """Impurity of distributions given as rows of class counts."""
    total = counts.sum(axis=-1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        p = np.where(total > 0, counts / total, 0.0)
    if criterion == "gini":
        return 1.0 - (p * p).sum(axis=-1)
    # entropy
    logp = np.zeros_like(p)
    np.log2(p, out=logp, where=p > 0)
    return -(p * logp).sum(axis=-1)


class DecisionTreeClassifier:
    """Binary-split CART tree on dense float matrices.

    Parameters
    ----------
    max_depth:
        Depth cap (the paper uses ``max_depth=3`` inside its random forest).
        ``None`` grows until purity or the sample minimums bind.
    min_samples_split / min_samples_leaf:
        Standard pre-pruning controls.
    max_features:
        Number of features scanned per split: ``None`` (all), ``"sqrt"``,
        or an int.
    criterion:
        ``"gini"`` (default) or ``"entropy"``.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        *,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        criterion: str = "gini",
        random_state: RandomState = None,
    ) -> None:
        if criterion not in ("gini", "entropy"):
            raise ValueError(f"criterion must be 'gini' or 'entropy', got {criterion!r}")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self.random_state = random_state
        self.nodes_: list[_TreeNode] = []
        self.n_classes_: int | None = None

    # ------------------------------------------------------------------ #
    def fit(self, X: np.ndarray, y: np.ndarray, *, n_classes: int | None = None) -> "DecisionTreeClassifier":
        X = check_array_2d(X, name="X")
        y = check_array_1d(y, name="y", dtype=np.int64)
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y have different numbers of rows")
        if X.shape[0] == 0:
            raise ValueError("cannot fit a tree on an empty dataset")
        if n_classes is None:
            n_classes = int(y.max()) + 1
        self.n_classes_ = n_classes
        rng = check_random_state(self.random_state)
        self.nodes_ = []
        self._n_split_features = self._resolve_max_features(X.shape[1])
        self._build(X, y, np.arange(X.shape[0], dtype=np.intp), depth=0, rng=rng)
        return self

    def _resolve_max_features(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if isinstance(self.max_features, (int, np.integer)):
            return int(np.clip(self.max_features, 1, d))
        raise ValueError(f"invalid max_features: {self.max_features!r}")

    def _leaf(self, y: np.ndarray) -> int:
        assert self.n_classes_ is not None
        counts = np.bincount(y, minlength=self.n_classes_).astype(np.float64)
        node = _TreeNode(proba=counts / counts.sum())
        self.nodes_.append(node)
        return len(self.nodes_) - 1

    def _build(
        self,
        X: np.ndarray,
        y: np.ndarray,
        idx: np.ndarray,
        *,
        depth: int,
        rng: np.random.Generator,
    ) -> int:
        y_node = y[idx]
        n = idx.size
        pure = np.all(y_node == y_node[0])
        depth_done = self.max_depth is not None and depth >= self.max_depth
        if pure or depth_done or n < self.min_samples_split:
            return self._leaf(y_node)

        feat, thr = self._best_split(X, y, idx, rng)
        if feat < 0:
            return self._leaf(y_node)

        node_id = len(self.nodes_)
        self.nodes_.append(_TreeNode(feature=feat, threshold=thr))
        go_left = X[idx, feat] <= thr
        left_id = self._build(X, y, idx[go_left], depth=depth + 1, rng=rng)
        right_id = self._build(X, y, idx[~go_left], depth=depth + 1, rng=rng)
        self.nodes_[node_id].left = left_id
        self.nodes_[node_id].right = right_id
        return node_id

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, idx: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float]:
        """Return (feature, threshold) of the best split, or (-1, 0) if none."""
        assert self.n_classes_ is not None
        n = idx.size
        d = X.shape[1]
        features = (
            rng.choice(d, size=self._n_split_features, replace=False)
            if self._n_split_features < d
            else np.arange(d)
        )
        y_node = y[idx]
        onehot = np.zeros((n, self.n_classes_))
        onehot[np.arange(n), y_node] = 1.0

        best_gain = 1e-12
        best_feat, best_thr = -1, 0.0
        parent_imp = _impurity_from_counts(
            onehot.sum(axis=0)[None, :], self.criterion
        )[0]

        for f in features:
            x = X[idx, f]
            order = np.argsort(x, kind="stable")
            xs = x[order]
            if xs[0] == xs[-1]:
                continue
            counts_sorted = onehot[order]
            left_counts = np.cumsum(counts_sorted, axis=0)[:-1]  # split after i
            total = left_counts[-1] + counts_sorted[-1]
            right_counts = total[None, :] - left_counts
            n_left = np.arange(1, n)
            n_right = n - n_left
            valid = (
                (xs[:-1] < xs[1:])
                & (n_left >= self.min_samples_leaf)
                & (n_right >= self.min_samples_leaf)
            )
            if not np.any(valid):
                continue
            imp_left = _impurity_from_counts(left_counts, self.criterion)
            imp_right = _impurity_from_counts(right_counts, self.criterion)
            weighted = (n_left * imp_left + n_right * imp_right) / n
            gain = parent_imp - weighted
            gain[~valid] = -np.inf
            best_pos = int(np.argmax(gain))
            if gain[best_pos] > best_gain:
                best_gain = float(gain[best_pos])
                best_feat = int(f)
                # Midpoint threshold, matching CART convention.
                best_thr = float((xs[best_pos] + xs[best_pos + 1]) / 2.0)
        return best_feat, best_thr

    # ------------------------------------------------------------------ #
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.nodes_ or self.n_classes_ is None:
            raise RuntimeError("DecisionTreeClassifier is not fitted")
        X = check_array_2d(X, name="X")
        n = X.shape[0]
        out = np.zeros((n, self.n_classes_))
        # Iterative routing: frontier of (node_id, row indices).
        frontier = [(0, np.arange(n, dtype=np.intp))]
        while frontier:
            node_id, rows = frontier.pop()
            if rows.size == 0:
                continue
            node = self.nodes_[node_id]
            if node.feature < 0:
                out[rows] = node.proba
                continue
            go_left = X[rows, node.feature] <= node.threshold
            frontier.append((node.left, rows[go_left]))
            frontier.append((node.right, rows[~go_left]))
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1).astype(np.int64)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes_)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if not self.nodes_:
            raise RuntimeError("DecisionTreeClassifier is not fitted")

        def walk(node_id: int) -> int:
            node = self.nodes_[node_id]
            if node.feature < 0:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(0)
