"""Online (incremental) logistic regression — the Vowpal-Wabbit stand-in.

The FROTE supplement approximates the expensive black-box retraining with
online learning: approximate the current model with a parametric model, then
update it per generated instance instead of retraining from scratch.  This
module provides that proxy: softmax regression trained by AdaGrad SGD with
``partial_fit`` support.
"""

from __future__ import annotations

import numpy as np

from repro.models.logistic import softmax
from repro.utils.rng import RandomState, check_random_state
from repro.utils.validation import check_array_1d, check_array_2d


class OnlineLogisticRegression:
    """Softmax regression trained incrementally with AdaGrad.

    Parameters
    ----------
    learning_rate:
        Base step size; per-coordinate steps adapt as
        ``lr / sqrt(accumulated_grad_sq + eps)``.
    l2:
        L2 penalty weight applied per update.
    epochs:
        Passes over the data in :meth:`fit` (``partial_fit`` always does one).
    shuffle:
        Shuffle sample order per epoch in :meth:`fit`.
    """

    #: Partial-refit protocol: an accepted batch *continues online
    #: training* (one deterministic AdaGrad pass) instead of refitting
    #: from scratch — the FROTE supplement's online approximation.  See
    #: :meth:`partial_update` for the exactness contract.
    supports_partial_update = True

    def __init__(
        self,
        learning_rate: float = 0.5,
        *,
        l2: float = 1e-4,
        epochs: int = 5,
        batch_size: int = 32,
        shuffle: bool = True,
        random_state: RandomState = 0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = learning_rate
        self.l2 = l2
        self.epochs = epochs
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.random_state = random_state
        self.W_: np.ndarray | None = None  # (n_features + 1, n_classes), last row bias
        self._grad_sq: np.ndarray | None = None
        self.n_classes_: int | None = None

    # ------------------------------------------------------------------ #
    def _ensure_initialized(self, n_features: int, n_classes: int) -> None:
        if self.W_ is None:
            self.n_classes_ = n_classes
            self.W_ = np.zeros((n_features + 1, n_classes))
            self._grad_sq = np.zeros_like(self.W_)
        elif self.W_.shape != (n_features + 1, n_classes):
            raise ValueError(
                f"model initialized for shape {self.W_.shape}, "
                f"got {(n_features + 1, n_classes)}"
            )

    def _step(self, Xb: np.ndarray, yb: np.ndarray) -> None:
        assert self.W_ is not None and self._grad_sq is not None
        assert self.n_classes_ is not None
        nb = Xb.shape[0]
        Xa = np.hstack([Xb, np.ones((nb, 1))])
        P = softmax(Xa @ self.W_)
        Y = np.zeros_like(P)
        Y[np.arange(nb), yb] = 1.0
        grad = Xa.T @ (P - Y) / nb + self.l2 * self.W_
        self._grad_sq += grad * grad
        self.W_ -= self.learning_rate * grad / np.sqrt(self._grad_sq + 1e-8)

    # ------------------------------------------------------------------ #
    def partial_fit(
        self, X: np.ndarray, y: np.ndarray, *, n_classes: int | None = None
    ) -> "OnlineLogisticRegression":
        """One incremental pass over ``(X, y)`` in mini-batches."""
        X = check_array_2d(X, name="X")
        y = check_array_1d(y, name="y", dtype=np.int64)
        if n_classes is None:
            n_classes = self.n_classes_ or int(y.max()) + 1
        self._ensure_initialized(X.shape[1], n_classes)
        for start in range(0, X.shape[0], self.batch_size):
            sl = slice(start, start + self.batch_size)
            self._step(X[sl], y[sl])
        return self

    def fit(
        self, X: np.ndarray, y: np.ndarray, *, n_classes: int | None = None
    ) -> "OnlineLogisticRegression":
        """Multi-epoch SGD from scratch (resets any prior state)."""
        X = check_array_2d(X, name="X")
        y = check_array_1d(y, name="y", dtype=np.int64)
        if n_classes is None:
            n_classes = int(y.max()) + 1
        self.W_ = None
        self._ensure_initialized(X.shape[1], n_classes)
        rng = check_random_state(self.random_state)
        for _ in range(self.epochs):
            order = rng.permutation(X.shape[0]) if self.shuffle else np.arange(X.shape[0])
            self.partial_fit(X[order], y[order], n_classes=n_classes)
        return self

    # ------------------------------------------------------------------ #
    # Incremental refits (the engine's opt-in `incremental=True` path).
    def partial_update(
        self, X_new: np.ndarray, y_new: np.ndarray
    ) -> "OnlineLogisticRegression":
        """Continue online training on the appended rows, in place.

        **Exactness contract.**  ``partial_update(X, y)`` is bit-identical
        to ``partial_fit(X, y)`` on the same fitted state: one
        mini-batched AdaGrad pass over the rows *in the given order* —
        deterministic, no shuffling, no RNG consumed.  Unlike
        :meth:`KNeighborsClassifier.partial_update` (exact refit) or
        :meth:`GaussianNB.partial_update` (exact moment merge), it is
        **not** equivalent to ``fit`` on the concatenated data: SGD is
        path-dependent, so weights depend on arrival order and epoch
        count.  This is precisely the FROTE supplement's online-learning
        approximation — fold each accepted batch into the running model
        instead of retraining — and the engine's delta path reproduces
        the *online* training trajectory exactly, batch for batch.

        Parameters
        ----------
        X_new : ndarray of shape (n_new, n_features)
            Appended (encoded) feature rows.
        y_new : ndarray of shape (n_new,)
            Their labels (codes within the fitted ``n_classes_``).
        """
        if self.W_ is None or self.n_classes_ is None:
            raise RuntimeError("OnlineLogisticRegression is not fitted")
        return self.partial_fit(X_new, y_new, n_classes=self.n_classes_)

    def checkpoint(self):
        """State token — copies of ``(W_, _grad_sq)`` — for :meth:`rollback`."""
        if self.W_ is None or self._grad_sq is None:
            raise RuntimeError("OnlineLogisticRegression is not fitted")
        return (self.W_.copy(), self._grad_sq.copy())

    def rollback(self, token) -> None:
        """Restore the state captured by :meth:`checkpoint`.

        Copies the token's arrays (updates mutate ``_grad_sq`` in place),
        so one token survives any number of rollbacks.
        """
        W, grad_sq = token
        self.W_ = W.copy()
        self._grad_sq = grad_sq.copy()

    def clone_state(self) -> "OnlineLogisticRegression":
        """Deep copy of the fitted state (for what-if updates)."""
        c = OnlineLogisticRegression(
            self.learning_rate,
            l2=self.l2,
            epochs=self.epochs,
            batch_size=self.batch_size,
            shuffle=self.shuffle,
            random_state=self.random_state,
        )
        if self.W_ is not None:
            c.W_ = self.W_.copy()
            c._grad_sq = self._grad_sq.copy() if self._grad_sq is not None else None
            c.n_classes_ = self.n_classes_
        return c

    # ------------------------------------------------------------------ #
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.W_ is None:
            raise RuntimeError("OnlineLogisticRegression is not fitted")
        X = check_array_2d(X, name="X")
        Xa = np.hstack([X, np.ones((X.shape[0], 1))])
        return softmax(Xa @ self.W_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1).astype(np.int64)
