"""Interpretable model comparison — "what changed?" after an edit.

Paper §6 recommends pairing FROTE with an interpretable comparison of the
original and edited models (Nair et al., IJCAI 2021) so governance can
verify that an edit changed *only* what the feedback intended.  This module
provides that:

* :func:`diff_models` — where the two models disagree, as a transition
  matrix and per-feedback-rule attribution;
* :func:`explain_changes` — conjunctive rules *describing the changed
  region*, learned with the same greedy rule learner used for
  explanations (the interpretable part of the diff).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.rules.learning import GreedyRuleLearner
from repro.rules.rule import FeedbackRule
from repro.rules.ruleset import FeedbackRuleSet


@dataclass(frozen=True)
class ModelDiff:
    """Prediction-level difference between two models on one dataset.

    Attributes
    ----------
    changed_mask:
        Boolean mask over the dataset rows where predictions differ.
    transitions:
        ``(n_classes, n_classes)`` count matrix: entry (a, b) counts rows
        predicted ``a`` by the first model and ``b`` by the second.
    rule_attribution:
        Per feedback rule (when an FRS is supplied): (covered, changed,
        changed-and-now-agreeing) counts — did the edit move exactly the
        rule's region, and in the intended direction?
    outside_changed:
        Rows changed *outside* all rule coverage — collateral movement the
        governance check should scrutinize.
    """

    changed_mask: np.ndarray
    transitions: np.ndarray
    rule_attribution: tuple[tuple[int, int, int], ...]
    outside_changed: int

    @property
    def n(self) -> int:
        return int(self.changed_mask.size)

    @property
    def n_changed(self) -> int:
        return int(self.changed_mask.sum())

    @property
    def changed_fraction(self) -> float:
        return self.n_changed / self.n if self.n else 0.0


def diff_models(
    model_before,
    model_after,
    dataset: Dataset,
    frs: FeedbackRuleSet | None = None,
) -> ModelDiff:
    """Compare two fitted models' predictions on ``dataset``."""
    pred_a = np.asarray(model_before.predict(dataset.X), dtype=np.int64)
    pred_b = np.asarray(model_after.predict(dataset.X), dtype=np.int64)
    if pred_a.shape != (dataset.n,) or pred_b.shape != (dataset.n,):
        raise ValueError("model predictions do not match the dataset length")
    changed = pred_a != pred_b
    k = dataset.n_classes
    transitions = np.zeros((k, k), dtype=np.int64)
    np.add.at(transitions, (pred_a, pred_b), 1)

    attribution: list[tuple[int, int, int]] = []
    covered_any = np.zeros(dataset.n, dtype=bool)
    if frs is not None:
        for rule in frs:
            mask = rule.coverage_mask(dataset.X)
            covered_any |= mask
            changed_here = changed & mask
            now_agree = changed_here & (pred_b == rule.target_class)
            attribution.append(
                (int(mask.sum()), int(changed_here.sum()), int(now_agree.sum()))
            )
    outside_changed = int((changed & ~covered_any).sum())
    return ModelDiff(
        changed_mask=changed,
        transitions=transitions,
        rule_attribution=tuple(attribution),
        outside_changed=outside_changed,
    )


def explain_changes(
    dataset: Dataset,
    diff: ModelDiff,
    *,
    learner: GreedyRuleLearner | None = None,
) -> list[FeedbackRule]:
    """Learn conjunctive rules describing *where* the models disagree.

    The changed/unchanged indicator becomes a binary target for the greedy
    rule learner; the returned rules (target class 1 = "changed") are the
    interpretable summary of the edit's footprint.
    """
    if diff.changed_mask.shape != (dataset.n,):
        raise ValueError("diff does not match the dataset")
    if diff.n_changed == 0:
        return []
    learner = learner or GreedyRuleLearner(
        max_rules_per_class=4, max_conditions=3, min_coverage_fraction=0.005
    )
    target = diff.changed_mask.astype(np.int64)
    return learner.learn(dataset.X, target, 2, classes=[1])


def format_diff(
    diff: ModelDiff,
    label_names: tuple[str, ...],
    *,
    frs: FeedbackRuleSet | None = None,
    change_rules: list[FeedbackRule] | None = None,
) -> str:
    """Human-readable diff report."""
    lines = [
        "Model comparison (before -> after)",
        f"  rows compared:   {diff.n}",
        f"  changed:         {diff.n_changed} ({100 * diff.changed_fraction:.1f}%)",
    ]
    k = len(label_names)
    nonzero = [
        (a, b)
        for a in range(k)
        for b in range(k)
        if a != b and diff.transitions[a, b] > 0
    ]
    if nonzero:
        lines.append("  transitions:")
        for a, b in sorted(nonzero, key=lambda t: -diff.transitions[t[0], t[1]]):
            lines.append(
                f"    {label_names[a]} -> {label_names[b]}: "
                f"{int(diff.transitions[a, b])}"
            )
    if diff.rule_attribution:
        lines.append("  per feedback rule (covered / changed / now agreeing):")
        for r, (cov, chg, agr) in enumerate(diff.rule_attribution):
            name = f"rule {r}" if frs is None else (frs[r].name or f"rule {r}")
            lines.append(f"    {name}: {cov} / {chg} / {agr}")
        lines.append(f"  changed outside all rule coverage: {diff.outside_changed}")
    if change_rules:
        lines.append("  changed-region description:")
        lines.extend(f"    {r.clause}" for r in change_rules)
    return "\n".join(lines)
