"""Post-edit analysis: interpretable model comparison (paper §6)."""

from repro.analysis.model_diff import (
    ModelDiff,
    diff_models,
    explain_changes,
    format_diff,
)

__all__ = ["ModelDiff", "diff_models", "explain_changes", "format_diff"]
