"""FROTE configuration (the paper's user constraints and knobs)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.rng import RandomState


@dataclass(frozen=True)
class FroteConfig:
    """User constraints and hyper-parameters of Algorithm 1.

    Parameters
    ----------
    tau:
        Iteration limit τ — how many times the user is willing to run the
        training algorithm (paper default 200).
    q:
        Oversampling fraction — allowed augmentation relative to ``|D|``
        (paper default 0.5).
    eta:
        Instances generated per iteration.  ``None`` (default) uses the
        paper's uniform quota ``q·|D|/τ``; the paper's experiments override
        it per dataset (e.g. 200 for Adult, 20 for Breast Cancer).
    k:
        Nearest-neighbour count for generation and relaxation thresholds
        (paper: 5, following SMOTE).
    selection:
        Base-instance selection strategy: ``"random"``, ``"ip"``, or
        ``"online"``.
    mod_strategy:
        Input dataset choice applied before augmentation: ``"none"``,
        ``"relabel"``, or ``"drop"``.
    mra_weight:
        Weight of the MRA term in the in-loop objective (paper: 0.5).
    accept_equal:
        Accept batches that leave the loss exactly unchanged (paper
        requires strict improvement; kept as a knob for ablations).
    random_state:
        Seed for all stochastic steps (paper runs use 42).
    """

    tau: int = 200
    q: float = 0.5
    eta: int | None = None
    k: int = 5
    selection: str = "random"
    mod_strategy: str = "relabel"
    mra_weight: float = 0.5
    accept_equal: bool = False
    random_state: RandomState = 42

    def __post_init__(self) -> None:
        if self.tau < 1:
            raise ValueError(f"tau must be >= 1, got {self.tau}")
        if self.q <= 0:
            raise ValueError(f"q must be positive, got {self.q}")
        if self.eta is not None and self.eta < 1:
            raise ValueError(f"eta must be >= 1, got {self.eta}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not 0.0 <= self.mra_weight <= 1.0:
            raise ValueError(f"mra_weight must be in [0, 1], got {self.mra_weight}")
        if self.selection not in ("random", "ip", "online"):
            raise ValueError(f"unknown selection strategy {self.selection!r}")
        if self.mod_strategy not in ("none", "relabel", "drop"):
            raise ValueError(f"unknown mod strategy {self.mod_strategy!r}")

    def effective_eta(self, n: int) -> int:
        """Per-iteration generation count: explicit η or the uniform quota."""
        if self.eta is not None:
            return self.eta
        return max(1, int(round(self.q * n / self.tau)))

    def oversampling_quota(self, n: int) -> int:
        """Total augmentation budget ``q · |D|``."""
        return int(self.q * n)
