"""FROTE configuration (the paper's user constraints and knobs)."""

from __future__ import annotations

from dataclasses import MISSING, InitVar, dataclass, fields
from math import isinf

from repro.core.options import (
    JOURNAL_FIELD_MAP,
    KERNEL_FIELD_MAP,
    STORAGE_FIELD_MAP,
    JournalOptions,
    KernelOptions,
    StorageOptions,
)
from repro.engine.registry import (
    DISTANCE_BACKENDS,
    MODIFIERS,
    OBJECTIVES,
    SELECTORS,
)
from repro.utils.rng import RandomState


@dataclass(frozen=True)
class FroteConfig:
    """User constraints and hyper-parameters of Algorithm 1.

    Parameters
    ----------
    tau:
        Iteration limit τ — how many times the user is willing to run the
        training algorithm (paper default 200).
    q:
        Oversampling fraction — allowed augmentation relative to ``|D|``
        (paper default 0.5).  Must be in ``(0, MAX_Q]``; pass
        ``math.inf`` for an explicitly unbounded quota (diagnostic
        sweeps).
    eta:
        Instances generated per iteration.  ``None`` (default) uses the
        paper's uniform quota ``q·|D|/τ``; the paper's experiments override
        it per dataset (e.g. 200 for Adult, 20 for Breast Cancer).
    k:
        Nearest-neighbour count for generation and relaxation thresholds
        (paper: 5, following SMOTE).
    selection:
        Base-instance selection strategy — any name in
        :data:`repro.engine.SELECTORS` (built-ins: ``"random"``, ``"ip"``,
        ``"online"``; user plugins register via
        :func:`repro.engine.register_selector`).
    mod_strategy:
        Input dataset choice applied before augmentation — any name in
        :data:`repro.engine.MODIFIERS` (built-ins: ``"none"``,
        ``"relabel"``, ``"drop"``).
    objective:
        Acceptance objective — any name in :data:`repro.engine.OBJECTIVES`
        (built-ins: ``"equal"``, the paper's fixed 0.5/0.5 weighting, and
        ``"weighted"``, the coverage-probability weighting).
    mra_weight:
        Weight of the MRA term in the in-loop objective (paper: 0.5).
    accept_equal:
        Accept batches that leave the loss exactly unchanged (paper
        requires strict improvement; kept as a knob for ablations).
    distance_backend:
        Opt into the blocked float32 distance-kernel layer for every
        neighbour search the run performs (generation samplers, the IP
        selector's borderline analysis, preselect pools) — any name in
        :data:`repro.engine.DISTANCE_BACKENDS` (built-ins: ``"numpy"``,
        ``"numba"``; the numba backend soft-falls back to the numpy
        kernel when numba is absent).  ``None`` (default) keeps the
        exact float64 path, bit-identical to the seed.  The kernel
        layer's precision/tie contract is documented in
        :mod:`repro.neighbors.kernels` and ``docs/architecture.md``.
    incremental:
        Opt into the delta-proportional compute path: candidate models
        partial-refit in O(batch) when they support it (KNN, NB over
        unstandardized encoders) and prediction caches extend over
        appended rows instead of recomputing.  Results are mathematically
        identical to the default rebuild path, but not guaranteed
        bit-identical, hence off by default.  The caveats: NB refits from
        exactly-merged moments (floating-point rounding only), and
        ball-tree KNN may break *exact distance ties* at the k-th
        neighbour differently than a from-scratch build — on tie-heavy
        all-categorical data this can steer the loop down a different
        (equally valid) trajectory.  Brute-force KNN and the
        assignment/table layers are bit-exact always.
    max_resident_mb:
        Opt into the out-of-core path: the active dataset's column
        buffers are sharded into fixed-size chunks whose sealed heap
        copies are bounded by this many MiB — least-recently-used chunks
        spill to memory-mapped files and stream back on demand.
        Results are bit-identical to the dense path (the same bytes are
        read, only from different storage).  The budget bounds the
        dataset's *storage* footprint; whole-column consumers — model
        encoders on a full fit/predict pass, a full ``frs.assign`` —
        still materialize transient O(n) working sets through the
        :meth:`~repro.data.shards.ShardedTable.column` escape hatch, so
        pair with ``incremental=True`` and a partial-update model to
        keep full passes off the loop (chunked encode/predict is the
        ROADMAP follow-up).  The resident floor outside the budget is
        one machine word per row for labels and cached FRS assignments.
        ``None`` (default) keeps every buffer dense in RAM, bit-for-bit
        as before.
    shard_rows:
        Rows per shard for the out-of-core path (default
        :data:`repro.data.shards.DEFAULT_SHARD_ROWS`); requires
        ``max_resident_mb``.
    spill_dir:
        Base directory for spill files (default: the platform temp
        dir); requires ``max_resident_mb``.  A private subdirectory is
        created per run and removed when the run's data is released.
    journal_dir:
        Opt into the durable run journal: ``EditSession.run()`` appends
        every iteration to an append-only, crash-safe journal under
        this directory (see :mod:`repro.journal`) and — when the
        journal already holds committed iterations for this exact
        session — fast-forwards through them instead of recomputing
        (journal-based crash-resume).  ``None`` (default) runs exactly
        as before.
    journal_name:
        Subdirectory name for this session's journal under
        ``journal_dir`` (default ``"session"``); requires
        ``journal_dir``.
    journal_resume:
        Whether re-running a journaled session resumes from its journal
        (default ``True``).  ``False`` wipes the journal and starts
        fresh; requires ``journal_dir`` to matter.
    random_state:
        Seed for all stochastic steps (paper runs use 42).  Journal
        resume requires an integer seed (the RNG stream must be
        reconstructible).
    storage / journal / kernel:
        Typed option groups (:class:`~repro.core.options.StorageOptions`,
        :class:`~repro.core.options.JournalOptions`,
        :class:`~repro.core.options.KernelOptions`) expanding into the
        flat fields above — the structured face of the same
        configuration.  A flat kwarg explicitly set to a value that
        disagrees with its group is a :class:`ValueError` (ambiguous
        intent), and the flat fields remain the storage/equality
        representation, so snapshots, spec hashes, and journal resume
        validation see grouped and flat configs identically.
    """

    tau: int = 200
    q: float = 0.5
    eta: int | None = None
    k: int = 5
    selection: str = "random"
    mod_strategy: str = "relabel"
    objective: str = "equal"
    mra_weight: float = 0.5
    accept_equal: bool = False
    distance_backend: str | None = None
    incremental: bool = False
    max_resident_mb: float | None = None
    shard_rows: int | None = None
    spill_dir: str | None = None
    journal_dir: str | None = None
    journal_name: str | None = None
    journal_resume: bool = True
    random_state: RandomState = 42
    storage: InitVar[StorageOptions | None] = None
    journal: InitVar[JournalOptions | None] = None
    kernel: InitVar[KernelOptions | None] = None

    #: Upper bound on ``q``; the paper sweeps (0, 1], anything past this is
    #: almost certainly a units mistake (e.g. a percentage passed as-is).
    MAX_Q = 10.0

    def __post_init__(
        self,
        storage: StorageOptions | None,
        journal: JournalOptions | None,
        kernel: KernelOptions | None,
    ) -> None:
        self._expand_group(storage, STORAGE_FIELD_MAP)
        self._expand_group(journal, JOURNAL_FIELD_MAP)
        self._expand_group(kernel, KERNEL_FIELD_MAP)
        if self.tau < 1:
            raise ValueError(f"tau must be >= 1, got {self.tau}")
        if self.q <= 0:
            raise ValueError(f"q must be positive, got {self.q}")
        if self.q > self.MAX_Q and not isinf(self.q):
            raise ValueError(
                f"q must be <= {self.MAX_Q} (a fraction of |D|, not a "
                f"percentage), got {self.q}; use q=math.inf for an "
                f"explicitly unbounded quota"
            )
        if self.eta is not None and self.eta < 1:
            raise ValueError(f"eta must be >= 1, got {self.eta}")
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if not 0.0 <= self.mra_weight <= 1.0:
            raise ValueError(f"mra_weight must be in [0, 1], got {self.mra_weight}")
        if self.max_resident_mb is not None and self.max_resident_mb <= 0:
            raise ValueError(
                f"max_resident_mb must be positive, got {self.max_resident_mb}"
            )
        if self.shard_rows is not None:
            if self.shard_rows < 1:
                raise ValueError(f"shard_rows must be >= 1, got {self.shard_rows}")
            if self.max_resident_mb is None:
                raise ValueError(
                    "shard_rows only applies to the out-of-core path; "
                    "set max_resident_mb too"
                )
        if self.spill_dir is not None and self.max_resident_mb is None:
            raise ValueError(
                "spill_dir only applies to the out-of-core path; "
                "set max_resident_mb too"
            )
        if self.journal_name is not None and self.journal_dir is None:
            raise ValueError(
                "journal_name only applies to journaled runs; "
                "set journal_dir too"
            )
        # Registry lookups: unknown names raise with the full registered
        # list (user plugins included) and a did-you-mean suggestion.
        SELECTORS.validate(self.selection)
        MODIFIERS.validate(self.mod_strategy)
        OBJECTIVES.validate(self.objective)
        if self.distance_backend is not None:
            DISTANCE_BACKENDS.validate(self.distance_backend)

    def _expand_group(self, group, field_map: dict) -> None:
        """Expand one typed option group into the flat fields it covers.

        A flat kwarg left at its default yields to the group; a flat
        kwarg explicitly set to the same value is redundant-but-fine; a
        disagreement raises (the caller's intent is ambiguous).
        """
        if group is None:
            return
        defaults = _flat_defaults()
        for group_field, flat in field_map.items():
            value = getattr(group, group_field)
            current = getattr(self, flat)
            if current != defaults[flat] and current != value:
                raise ValueError(
                    f"conflicting values for {flat!r}: flat kwarg "
                    f"{current!r} vs {type(group).__name__}.{group_field}="
                    f"{value!r} — pass one or the other"
                )
            object.__setattr__(self, flat, value)

    # ------------------------------------------------------------------ #
    # Group views: the structured read face of the flat fields.
    @property
    def storage_options(self) -> StorageOptions:
        return StorageOptions(
            max_resident_mb=self.max_resident_mb,
            shard_rows=self.shard_rows,
            spill_dir=self.spill_dir,
        )

    @property
    def journal_options(self) -> JournalOptions:
        return JournalOptions(
            dir=self.journal_dir,
            name=self.journal_name,
            resume=self.journal_resume,
        )

    @property
    def kernel_options(self) -> KernelOptions:
        return KernelOptions(
            distance_backend=self.distance_backend,
            incremental=self.incremental,
        )

    def effective_eta(self, n: int) -> int:
        """Per-iteration generation count: explicit η or the uniform quota."""
        if self.eta is not None:
            return self.eta
        if isinf(self.q):
            return max(1, n)
        return max(1, int(round(self.q * n / self.tau)))

    def oversampling_quota(self, n: int) -> int:
        """Total augmentation budget ``q · |D|`` (rounded half-to-even,
        matching :meth:`effective_eta`); effectively unlimited for
        ``q=inf``."""
        if isinf(self.q):
            return int(1e18)
        return int(round(self.q * n))


def _flat_defaults() -> dict:
    """Default value of every real (non-InitVar) ``FroteConfig`` field."""
    return {
        f.name: f.default
        for f in fields(FroteConfig)
        if f.default is not MISSING
    }
