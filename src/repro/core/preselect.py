"""Base population pre-selection — paper Algorithm 2 (PreSelectBP).

FROTE maintains a per-rule base population ``P[r]``, initialized to the
rule's coverage in the active dataset.  The synthetic instance generator
needs at least ``k + 1`` covered instances per rule; rules with thinner
coverage are *relaxed* to their maximal partial rule (minimum condition
deletions, maximum resulting support) via
:func:`repro.rules.relaxation.relax_rule`.

Instances that match a rule exactly are *strongly covered*; instances that
match only its relaxed form are *weakly covered*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.rules.relaxation import RelaxationResult, relax_rule
from repro.rules.ruleset import FeedbackRuleSet


@dataclass(frozen=True)
class RulePopulation:
    """Base population of one rule within the active dataset."""

    rule_index: int
    indices: np.ndarray  # dataset row indices of the (possibly relaxed) coverage
    strong_mask: np.ndarray  # True where the row matches the unrelaxed rule
    relaxation: RelaxationResult

    @property
    def size(self) -> int:
        return int(self.indices.size)

    @property
    def was_relaxed(self) -> bool:
        return self.relaxation.was_relaxed

    @property
    def n_strong(self) -> int:
        return int(self.strong_mask.sum())


@dataclass(frozen=True)
class BasePopulation:
    """Per-rule populations over one active dataset (the BP of Algorithm 1)."""

    per_rule: tuple[RulePopulation, ...]

    def __len__(self) -> int:
        return len(self.per_rule)

    def __getitem__(self, r: int) -> RulePopulation:
        return self.per_rule[r]

    @property
    def union_indices(self) -> np.ndarray:
        """Deduplicated union of all per-rule populations (the IP's ``P``)."""
        if not self.per_rule:
            return np.empty(0, dtype=np.intp)
        return np.unique(np.concatenate([p.indices for p in self.per_rule]))

    @property
    def total_size(self) -> int:
        return int(sum(p.size for p in self.per_rule))


def preselect_base_population(
    dataset: Dataset,
    frs: FeedbackRuleSet,
    *,
    k: int = 5,
) -> BasePopulation:
    """Compute the per-rule base populations (Algorithm 2).

    Each rule needs coverage of at least ``k + 1``; rules below the
    threshold are relaxed.  Relaxation is recomputed against the *current*
    dataset every time FROTE accepts a batch (Algorithm 1, line 15), which
    this function supports by simply being re-invoked.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    min_coverage = k + 1
    pops: list[RulePopulation] = []
    for r, rule in enumerate(frs):
        strong = rule.coverage_mask(dataset.X)
        if int(strong.sum()) >= min_coverage:
            relaxation = relax_rule(rule, dataset.X, min_coverage=1)
            indices = np.flatnonzero(strong)
            strong_mask = np.ones(indices.size, dtype=bool)
        else:
            relaxation = relax_rule(rule, dataset.X, min_coverage=min_coverage)
            mask = relaxation.relaxed_mask(dataset.X)
            indices = np.flatnonzero(mask)
            strong_mask = strong[indices]
        pops.append(
            RulePopulation(
                rule_index=r,
                indices=indices,
                strong_mask=strong_mask,
                relaxation=relaxation,
            )
        )
    return BasePopulation(tuple(pops))
