"""FROTE — the main augmentation loop (paper Algorithm 1).

Given an input dataset D, a black-box training algorithm A, and a
conflict-free feedback rule set F, FROTE:

1. applies the chosen modification strategy (relabel / drop / none);
2. pre-selects per-rule base populations (Algorithm 2, with rule
   relaxation);
3. iterates: select base instances → generate rule-constrained synthetic
   instances → retrain on the tentative dataset → keep the batch only if
   the empirical loss ĵ decreases;
4. stops when the oversampling quota ``q·|D|`` is used up or the iteration
   limit τ is reached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.audit import EditAudit, RowProvenance
from repro.core.config import FroteConfig
from repro.core.modification import apply_modification
from repro.core.objective import Evaluation, evaluate_model
from repro.core.preselect import BasePopulation, preselect_base_population
from repro.core.selection import SelectionContext, make_selector
from repro.data.dataset import Dataset
from repro.models.base import TableModel, TrainingAlgorithm
from repro.rules.ruleset import FeedbackRuleSet
from repro.sampling.rule_generation import RuleConstrainedGenerator
from repro.utils.rng import check_random_state


@dataclass(frozen=True)
class IterationRecord:
    """One augmentation-loop iteration for progress analysis (paper Fig. 9)."""

    iteration: int
    candidate_loss: float
    accepted: bool
    n_generated: int
    n_added_total: int
    external_score: float | None = None  # eval_callback output, if any


@dataclass
class FroteResult:
    """Output of a FROTE run."""

    dataset: Dataset  # the augmented dataset D̂
    model: TableModel  # model trained on D̂
    initial_evaluation: Evaluation
    final_evaluation: Evaluation
    history: list[IterationRecord] = field(default_factory=list)
    n_added: int = 0
    iterations: int = 0
    n_relabelled: int = 0
    n_dropped: int = 0
    provenance: RowProvenance | None = None

    @property
    def accepted_iterations(self) -> int:
        return sum(1 for rec in self.history if rec.accepted)

    def audit(self, frs: FeedbackRuleSet, *, mod_strategy: str = "", **metadata) -> EditAudit:
        """Governance-ready audit record of this edit (paper §6)."""
        return EditAudit.from_run(
            frs, self, mod_strategy=mod_strategy, metadata=metadata
        )

    @property
    def added_fraction(self) -> float:
        """Δ#Ins / |D| as reported in the paper's Table 4."""
        base = self.dataset.n - self.n_added
        return self.n_added / base if base else 0.0


class FROTE:
    """Feedback Rule-Based Oversampling Technique.

    Parameters
    ----------
    algorithm:
        Black-box training algorithm ``A: Dataset -> TableModel``.
    frs:
        Conflict-free feedback rule set.
    config:
        User constraints and knobs; see :class:`FroteConfig`.

    Example
    -------
    >>> frote = FROTE(algorithm, frs, FroteConfig(tau=20, q=0.5))  # doctest: +SKIP
    >>> result = frote.run(train_dataset)  # doctest: +SKIP
    >>> result.model.predict(test_dataset.X)  # doctest: +SKIP
    """

    def __init__(
        self,
        algorithm: TrainingAlgorithm,
        frs: FeedbackRuleSet,
        config: FroteConfig | None = None,
    ) -> None:
        if len(frs) == 0:
            raise ValueError("feedback rule set is empty")
        self.algorithm = algorithm
        self.frs = frs
        self.config = config or FroteConfig()

    # ------------------------------------------------------------------ #
    def run(
        self,
        dataset: Dataset,
        *,
        eval_callback: Callable[[TableModel], float] | None = None,
    ) -> FroteResult:
        """Execute Algorithm 1 on ``dataset``.

        ``eval_callback`` (optional) is invoked with every *accepted*
        model and its score recorded in the history — used to trace
        held-out J̄ during augmentation (paper Fig. 9).
        """
        cfg = self.config
        rng = check_random_state(cfg.random_state)

        mod = apply_modification(
            dataset, self.frs, cfg.mod_strategy, random_state=rng
        )
        active = mod.dataset

        # Lineage of the edit (paper §6): start with the input rows, record
        # relabels/drops, then extend with synthetic rows per accepted batch.
        provenance = RowProvenance.for_input(dataset.n)
        if mod.n_dropped:
            drop_mask = np.zeros(dataset.n, dtype=bool)
            drop_mask[mod.touched_rows] = True
            provenance = provenance.drop_rows(drop_mask)
        elif mod.n_relabelled:
            provenance.mark_relabelled(
                mod.touched_rows, mod.touched_rules, mod.original_labels
            )
        n_input = active.n
        eta = cfg.effective_eta(n_input)
        quota = cfg.oversampling_quota(n_input)

        model = self.algorithm(active)
        evaluation = evaluate_model(model, active, self.frs)
        best_loss = evaluation.loss_equal(cfg.mra_weight)
        initial_evaluation = evaluation

        selector = make_selector(cfg.selection)
        bp = preselect_base_population(active, self.frs, k=cfg.k)
        generators = self._make_generators(active)

        history: list[IterationRecord] = []
        n_added = 0
        i = 0
        while i < cfg.tau and n_added <= quota:
            predictions = model.predict(active.X) if cfg.selection != "random" else None
            ctx = SelectionContext(
                active, predictions, k=cfg.k, rng=rng, frs=self.frs
            )
            per_rule_positions = selector.select(bp, eta, ctx)
            batch, per_rule_counts = self._generate(
                active, bp, per_rule_positions, generators, rng
            )
            if batch.n == 0:
                history.append(
                    IterationRecord(i, best_loss, False, 0, n_added)
                )
                i += 1
                continue
            candidate = Dataset.concat(
                [active, Dataset(batch.table, batch.labels, active.label_names)]
            )
            cand_model = self.algorithm(candidate)
            # ĵ is evaluated over the current active dataset D̂ (line 11).
            cand_eval = evaluate_model(cand_model, active, self.frs)
            cand_loss = cand_eval.loss_equal(cfg.mra_weight)
            improved = (
                cand_loss <= best_loss if cfg.accept_equal else cand_loss < best_loss
            )
            external: float | None = None
            if improved:
                active = candidate
                n_added += batch.n
                best_loss = cand_loss
                model = cand_model
                evaluation = cand_eval
                provenance = provenance.extend_synthetic(per_rule_counts, i)
                bp = preselect_base_population(active, self.frs, k=cfg.k)
                generators = self._make_generators(active)
                if eval_callback is not None:
                    external = float(eval_callback(model))
            history.append(
                IterationRecord(i, cand_loss, improved, batch.n, n_added, external)
            )
            i += 1

        final_evaluation = evaluate_model(model, active, self.frs)
        return FroteResult(
            dataset=active,
            model=model,
            initial_evaluation=initial_evaluation,
            final_evaluation=final_evaluation,
            history=history,
            n_added=n_added,
            iterations=i,
            n_relabelled=mod.n_relabelled,
            n_dropped=mod.n_dropped,
            provenance=provenance,
        )

    # ------------------------------------------------------------------ #
    def _make_generators(self, active: Dataset) -> list[RuleConstrainedGenerator]:
        return [
            RuleConstrainedGenerator(rule, active.X, k=self.config.k)
            for rule in self.frs
        ]

    def _generate(
        self,
        active: Dataset,
        bp: BasePopulation,
        per_rule_positions: list[np.ndarray],
        generators: list[RuleConstrainedGenerator],
        rng: np.random.Generator,
    ):
        """Synthesize one batch across rules.

        Returns ``(GeneratedBatch, per_rule_counts)`` where the counts list
        records how many rows each rule contributed (lineage bookkeeping).
        """
        from repro.data.table import Table
        from repro.sampling.rule_generation import GeneratedBatch

        tables = []
        labels = []
        counts = [0] * len(bp.per_rule)
        for r, (pop, positions, gen) in enumerate(
            zip(bp.per_rule, per_rule_positions, generators)
        ):
            if positions.size == 0 or pop.size == 0:
                continue
            pool = active.X.take(pop.indices)
            out = gen.generate(pool, positions, rng)
            if out.n:
                tables.append(out.table)
                labels.append(out.labels)
                counts[r] = out.n
        if not tables:
            empty = GeneratedBatch(
                Table.empty(active.X.schema), np.empty(0, dtype=np.int64)
            )
            return empty, counts
        return GeneratedBatch(Table.concat(tables), np.concatenate(labels)), counts


def run_frote(
    dataset: Dataset,
    algorithm: TrainingAlgorithm,
    frs: FeedbackRuleSet,
    **config_kwargs,
) -> FroteResult:
    """One-call convenience wrapper: ``run_frote(data, algorithm, rules, tau=50)``."""
    return FROTE(algorithm, frs, FroteConfig(**config_kwargs)).run(dataset)
