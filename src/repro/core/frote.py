"""FROTE — the main augmentation loop (paper Algorithm 1).

Given an input dataset D, a black-box training algorithm A, and a
conflict-free feedback rule set F, FROTE:

1. applies the chosen modification strategy (relabel / drop / none);
2. pre-selects per-rule base populations (Algorithm 2, with rule
   relaxation);
3. iterates: select base instances → generate rule-constrained synthetic
   instances → retrain on the tentative dataset → keep the batch only if
   the empirical loss ĵ decreases;
4. stops when the oversampling quota ``q·|D|`` is used up or the iteration
   limit τ is reached.

This module is the *compatibility layer*: since the engine redesign the
loop itself lives in :mod:`repro.engine.stages` as composable pipeline
stages, and :class:`FROTE` / :func:`run_frote` drive it through the same
:class:`~repro.engine.stages.EditEngine` the fluent
:func:`repro.edit` session uses — with identical results for identical
seeds.  :class:`FroteResult` and :class:`IterationRecord` are defined in
:mod:`repro.engine.state` and re-exported here.
"""

from __future__ import annotations

from typing import Callable

from repro.core.config import FroteConfig
from repro.data.dataset import Dataset
from repro.engine.stages import EditEngine
from repro.engine.state import EditState, FroteResult, IterationRecord
from repro.models.base import TableModel, TrainingAlgorithm
from repro.rules.ruleset import FeedbackRuleSet
from repro.utils.rng import check_random_state

__all__ = ["FROTE", "FroteResult", "IterationRecord", "run_frote"]


class FROTE:
    """Feedback Rule-Based Oversampling Technique.

    Parameters
    ----------
    algorithm:
        Black-box training algorithm ``A: Dataset -> TableModel``.
    frs:
        Conflict-free feedback rule set.
    config:
        User constraints and knobs; see :class:`FroteConfig`.
    engine:
        Optional custom :class:`~repro.engine.stages.EditEngine`; the
        default reproduces the paper's loop exactly.

    Example
    -------
    >>> frote = FROTE(algorithm, frs, FroteConfig(tau=20, q=0.5))  # doctest: +SKIP
    >>> result = frote.run(train_dataset)  # doctest: +SKIP
    >>> result.model.predict(test_dataset.X)  # doctest: +SKIP
    """

    def __init__(
        self,
        algorithm: TrainingAlgorithm,
        frs: FeedbackRuleSet,
        config: FroteConfig | None = None,
        *,
        engine: EditEngine | None = None,
    ) -> None:
        if len(frs) == 0:
            raise ValueError("feedback rule set is empty")
        self.algorithm = algorithm
        self.frs = frs
        self.config = config or FroteConfig()
        self.engine = engine or EditEngine()

    # ------------------------------------------------------------------ #
    def run(
        self,
        dataset: Dataset,
        *,
        eval_callback: Callable[[TableModel], float] | None = None,
    ) -> FroteResult:
        """Execute Algorithm 1 on ``dataset``.

        ``eval_callback`` (optional) is invoked with every *accepted*
        model and its score recorded in the history — used to trace
        held-out J̄ during augmentation (paper Fig. 9).
        """
        state = EditState(
            input_dataset=dataset,
            frs=self.frs,
            algorithm=self.algorithm,
            config=self.config,
            rng=check_random_state(self.config.random_state),
            eval_callback=eval_callback,
        )
        return self.engine.run(state)


def run_frote(
    dataset: Dataset,
    algorithm: TrainingAlgorithm,
    frs: FeedbackRuleSet,
    **config_kwargs,
) -> FroteResult:
    """One-call convenience wrapper: ``run_frote(data, algorithm, rules, tau=50)``."""
    return FROTE(algorithm, frs, FroteConfig(**config_kwargs)).run(dataset)
