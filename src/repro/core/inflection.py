"""Inflection-point analysis of augmentation (paper §6).

"There is generally an inflection point in terms of the number of data
points added where the cost to overall model performance starts to
outweigh the improvement in MRA."  This module sweeps augmentation amounts
and locates that point, attributing it to the Stefanowski (2016) data
difficulty factors the paper cites (class overlap created by synthetic
instances inside other classes' regions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import FroteConfig
from repro.core.frote import FROTE
from repro.core.objective import evaluate_model
from repro.data.dataset import Dataset
from repro.models.base import TrainingAlgorithm
from repro.rules.ruleset import FeedbackRuleSet


@dataclass(frozen=True)
class InflectionTrace:
    """J̄ decomposition as augmentation grows.

    Arrays are aligned: entry i is measured after ``n_added[i]`` synthetic
    instances.
    """

    n_added: np.ndarray
    mra: np.ndarray
    f1_outside: np.ndarray
    j_weighted: np.ndarray

    @property
    def inflection_index(self) -> int | None:
        """First index where J̄ starts decreasing while MRA kept rising.

        Returns ``None`` if J̄ is non-decreasing end to end (no inflection
        within the sweep — the paper notes the point depends on dataset and
        model and may lie beyond any given budget).
        """
        j = self.j_weighted
        for i in range(1, j.size):
            if j[i] < j[i - 1] - 1e-9 and self.mra[i] >= self.mra[i - 1] - 1e-9:
                return i
        return None

    @property
    def inflection_n_added(self) -> int | None:
        i = self.inflection_index
        return None if i is None else int(self.n_added[i])


def trace_inflection(
    train: Dataset,
    test: Dataset,
    algorithm: TrainingAlgorithm,
    frs: FeedbackRuleSet,
    *,
    eta: int = 20,
    max_iterations: int = 20,
    mod_strategy: str = "relabel",
    random_state=42,
) -> InflectionTrace:
    """Run FROTE with acceptance disabled-in-spirit (``accept_equal=True``
    and a generous quota) and record the held-out decomposition per batch.

    Unlike the production loop, the sweep *keeps adding* instances even
    when the training objective stalls, because the inflection point is by
    definition past the productive region.
    """
    points_n: list[int] = [0]
    initial = evaluate_model(algorithm(train), test, frs)
    mras = [initial.mra]
    f1s = [initial.f1_outside]
    js = [initial.j_weighted()]

    config = FroteConfig(
        tau=max_iterations,
        q=float("inf"),  # quota never binds; iterations bound the sweep
        eta=eta,
        mod_strategy=mod_strategy,
        accept_equal=True,
        mra_weight=1.0,  # chase MRA only, exposing the F1 cost
        random_state=random_state,
    )
    frote = FROTE(algorithm, frs, config)

    def record(model) -> float:
        ev = evaluate_model(model, test, frs)
        mras.append(ev.mra)
        f1s.append(ev.f1_outside)
        js.append(ev.j_weighted())
        return ev.j_weighted()

    result = frote.run(train, eval_callback=record)
    for rec in result.history:
        if rec.accepted:
            points_n.append(rec.n_added_total)
    # Align: record() fired once per accepted batch, in order.
    n = min(len(points_n), len(mras))
    return InflectionTrace(
        n_added=np.asarray(points_n[:n]),
        mra=np.asarray(mras[:n]),
        f1_outside=np.asarray(f1s[:n]),
        j_weighted=np.asarray(js[:n]),
    )


def format_inflection(trace: InflectionTrace) -> str:
    """Render the trace as an aligned text table with the inflection mark."""
    lines = ["n_added   MRA     F1(out)  J-bar"]
    inflection = trace.inflection_index
    for i in range(trace.n_added.size):
        mark = "  <- inflection" if inflection == i else ""
        lines.append(
            f"{int(trace.n_added[i]):7d}  {trace.mra[i]:.3f}   "
            f"{trace.f1_outside[i]:.3f}    {trace.j_weighted[i]:.3f}{mark}"
        )
    if inflection is None:
        lines.append("(no inflection within the sweep)")
    return "\n".join(lines)
