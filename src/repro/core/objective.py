"""The FROTE objective (paper Eq. 3) and its empirical estimators.

The objective has two parts:

* **MRA** (model-rule agreement): over instances covered by the FRS, the
  expected agreement between the model's prediction and labels drawn from
  each covering rule's distribution π (0-1 loss → agreement probability);
* **outside-coverage performance**: F1 of the model against the original
  labels on instances outside ``cov(F)``.

Two weightings are used (paper §5.1 *Metrics*):

* in the FROTE loop, a fixed 0.5/0.5 weighting of MRA and F1
  (:meth:`Evaluation.j_equal`) because test coverage probabilities are
  unknown during augmentation;
* for reporting, rule terms weighted by empirical coverage probabilities
  (:meth:`Evaluation.j_weighted`).

Both are *complements* (``J̄ = 1 - J``): larger is better.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.engine.registry import register_objective
from repro.metrics.agreement import mra_probabilistic
from repro.metrics.classification import confusion_matrix, f1_from_confusion
from repro.rules.rule import FeedbackRule
from repro.rules.ruleset import FeedbackRuleSet


@dataclass(frozen=True)
class Evaluation:
    """Breakdown of one model evaluation against (dataset, FRS)."""

    per_rule_mra: np.ndarray  # agreement per rule (NaN when rule uncovered)
    per_rule_count: np.ndarray  # covered instances per rule (first-match)
    mra: float  # coverage-weighted mean agreement over covered instances
    f1_outside: float
    n_covered: int
    n_outside: int
    # Additive merge carriers (None on hand-built legacy instances): the
    # per-rule agreement *sums* and the outside-coverage confusion counts.
    # Counts are additive across disjoint row partitions, which is what
    # makes evaluations mergeable across dataset and ruleset deltas.
    per_rule_agreement: np.ndarray | None = None
    outside_confusion: np.ndarray | None = None

    @property
    def mergeable(self) -> bool:
        return self.per_rule_agreement is not None and self.outside_confusion is not None

    @property
    def n_total(self) -> int:
        return self.n_covered + self.n_outside

    def j_equal(self, mra_weight: float = 0.5) -> float:
        """Fixed-weight objective complement used inside the FROTE loop."""
        return mra_weight * self.mra + (1.0 - mra_weight) * self.f1_outside

    def j_weighted(self) -> float:
        """Coverage-probability-weighted objective complement (reported J̄)."""
        if self.n_total == 0:
            return 0.0
        p_cov = self.n_covered / self.n_total
        return p_cov * self.mra + (1.0 - p_cov) * self.f1_outside

    def loss_equal(self, mra_weight: float = 0.5) -> float:
        """The in-loop loss ĵ = 1 - ĵ̄ that FROTE minimizes."""
        return 1.0 - self.j_equal(mra_weight)


@register_objective("equal")
def equal_weight_objective(evaluation: Evaluation, config) -> float:
    """The paper's in-loop loss ĵ: fixed MRA/F1 weighting (default 0.5)."""
    return evaluation.loss_equal(config.mra_weight)


@register_objective("weighted")
def coverage_weighted_objective(evaluation: Evaluation, config) -> float:
    """Loss under the coverage-probability weighting (reported J̄)."""
    return 1.0 - evaluation.j_weighted()


def evaluate_predictions(
    y_pred: np.ndarray,
    dataset: Dataset,
    frs: FeedbackRuleSet,
    *,
    assign: np.ndarray | None = None,
) -> Evaluation:
    """Evaluate pre-computed predictions against the FRS and the dataset.

    Covered instances are assigned to their first covering rule (rule sets
    are conflict-free, so overlaps agree on π); agreement for rule r is
    ``mean(π_r[pred])``.  Outside-coverage instances are scored with the
    paper's F1 convention (binary F1 for 2 classes, macro otherwise).

    ``assign`` may carry a precomputed ``frs.assign(dataset.X)`` result —
    the edit loop memoizes it per active dataset so rejected iterations
    skip the full rule-coverage pass.
    """
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_pred.shape[0] != dataset.n:
        raise ValueError("predictions length does not match dataset")
    m = len(frs)
    per_rule_mra = np.full(m, np.nan)
    per_rule_count = np.zeros(m, dtype=np.int64)
    per_rule_agreement = np.zeros(m, dtype=np.float64)
    if m == 0:
        # f1_from_confusion over the full confusion matrix is the same
        # arithmetic default_f1 runs internally; keeping the counts makes
        # the evaluation mergeable.
        cm = confusion_matrix(dataset.y, y_pred, n_classes=dataset.n_classes)
        return Evaluation(
            per_rule_mra,
            per_rule_count,
            1.0,
            f1_from_confusion(cm),
            0,
            dataset.n,
            per_rule_agreement=per_rule_agreement,
            outside_confusion=cm,
        )

    if assign is None:
        assign = frs.assign(dataset.X)
    covered = assign >= 0
    n_covered = int(covered.sum())
    weighted_sum = 0.0
    for r, rule in enumerate(frs):
        rows = assign == r
        cnt = int(rows.sum())
        per_rule_count[r] = cnt
        if cnt == 0:
            continue
        pi = rule.pi_array()
        rows_pred = y_pred[rows]
        agreement = mra_probabilistic(rows_pred, pi)
        per_rule_mra[r] = agreement
        per_rule_agreement[r] = float(np.sum(pi[rows_pred]))
        weighted_sum += agreement * cnt
    mra = weighted_sum / n_covered if n_covered else 1.0
    outside = ~covered
    cm = confusion_matrix(
        dataset.y[outside], y_pred[outside], n_classes=dataset.n_classes
    )
    return Evaluation(
        per_rule_mra=per_rule_mra,
        per_rule_count=per_rule_count,
        mra=mra,
        f1_outside=f1_from_confusion(cm),
        n_covered=n_covered,
        n_outside=int(outside.sum()),
        per_rule_agreement=per_rule_agreement,
        outside_confusion=cm,
    )


def evaluate_model(
    model,
    dataset: Dataset,
    frs: FeedbackRuleSet,
    *,
    assign: np.ndarray | None = None,
) -> Evaluation:
    """Predict with ``model`` on ``dataset`` and evaluate (one prediction pass).

    ``assign`` optionally reuses a memoized ``frs.assign(dataset.X)``.
    """
    return evaluate_predictions(model.predict(dataset.X), dataset, frs, assign=assign)


def append_rule_evaluation(
    base: Evaluation,
    y_pred: np.ndarray,
    dataset: Dataset,
    rule: FeedbackRule,
    moved_mask: np.ndarray,
) -> Evaluation:
    """Evaluation under ``frs + (rule,)`` derived from the one under ``frs``.

    ``moved_mask`` flags the rows the appended rule claims — previously
    outside coverage (first-match assignment is append-stable, so those
    are the *only* rows that change hands).  O(new rule's coverage), and
    bitwise-equal to a full :func:`evaluate_predictions` pass under the
    extended rule set: every existing rule keeps exactly its rows, so the
    stored per-rule means are reused verbatim; the coverage-weighted MRA
    fold is re-accumulated in the same left-to-right order over the same
    floats; and the outside F1 comes from the confusion counts minus the
    moved rows' counts (integer-exact).
    """
    if not base.mergeable:
        raise ValueError(
            "base evaluation carries no merge fields; run evaluate_predictions"
        )
    y_pred = np.asarray(y_pred, dtype=np.int64)
    moved = np.asarray(moved_mask, dtype=bool)
    cnt = int(moved.sum())
    m = base.per_rule_mra.shape[0]
    per_rule_mra = np.append(base.per_rule_mra, np.nan)
    per_rule_count = np.append(base.per_rule_count, np.int64(cnt))
    per_rule_agreement = np.append(base.per_rule_agreement, 0.0)
    if cnt:
        pi = rule.pi_array()
        moved_pred = y_pred[moved]
        per_rule_mra[m] = mra_probabilistic(moved_pred, pi)
        per_rule_agreement[m] = float(np.sum(pi[moved_pred]))
    moved_cm = confusion_matrix(
        dataset.y[moved], y_pred[moved], n_classes=dataset.n_classes
    )
    n_covered = base.n_covered + cnt
    weighted_sum = 0.0
    for r in range(m + 1):
        if per_rule_count[r] == 0:
            continue
        weighted_sum += per_rule_mra[r] * int(per_rule_count[r])
    mra = float(weighted_sum / n_covered) if n_covered else 1.0
    outside_cm = base.outside_confusion - moved_cm
    return Evaluation(
        per_rule_mra=per_rule_mra,
        per_rule_count=per_rule_count,
        mra=mra,
        f1_outside=f1_from_confusion(outside_cm),
        n_covered=n_covered,
        n_outside=base.n_outside - cnt,
        per_rule_agreement=per_rule_agreement,
        outside_confusion=outside_cm,
    )


def merge_evaluations(a: Evaluation, b: Evaluation) -> Evaluation:
    """Merge evaluations of two *disjoint* row partitions under one FRS.

    Counts — per-rule coverage and the outside confusion matrix — are
    additive and merge integer-exactly, so the merged F1 equals the
    monolithic one bit-for-bit.  The per-rule means and MRA are exact
    ratios of the summed agreement carriers; they can differ from a
    single monolithic pass in the last ulp (floating-point summation
    order), which is the documented precision of the dataset-axis merge.
    """
    if not (a.mergeable and b.mergeable):
        raise ValueError("both evaluations must carry merge fields")
    if a.per_rule_count.shape != b.per_rule_count.shape:
        raise ValueError(
            "evaluations cover different rule sets: "
            f"{a.per_rule_count.shape[0]} vs {b.per_rule_count.shape[0]} rules"
        )
    if a.outside_confusion.shape != b.outside_confusion.shape:
        raise ValueError("evaluations disagree on the number of classes")
    count = a.per_rule_count + b.per_rule_count
    sums = a.per_rule_agreement + b.per_rule_agreement
    per_rule_mra = np.full(count.shape[0], np.nan)
    nz = count > 0
    per_rule_mra[nz] = sums[nz] / count[nz]
    n_covered = a.n_covered + b.n_covered
    weighted_sum = 0.0
    for r in range(count.shape[0]):
        if count[r] == 0:
            continue
        weighted_sum += per_rule_mra[r] * int(count[r])
    mra = float(weighted_sum / n_covered) if n_covered else 1.0
    cm = a.outside_confusion + b.outside_confusion
    return Evaluation(
        per_rule_mra=per_rule_mra,
        per_rule_count=count,
        mra=mra,
        f1_outside=f1_from_confusion(cm),
        n_covered=n_covered,
        n_outside=a.n_outside + b.n_outside,
        per_rule_agreement=sums,
        outside_confusion=cm,
    )
