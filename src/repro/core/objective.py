"""The FROTE objective (paper Eq. 3) and its empirical estimators.

The objective has two parts:

* **MRA** (model-rule agreement): over instances covered by the FRS, the
  expected agreement between the model's prediction and labels drawn from
  each covering rule's distribution π (0-1 loss → agreement probability);
* **outside-coverage performance**: F1 of the model against the original
  labels on instances outside ``cov(F)``.

Two weightings are used (paper §5.1 *Metrics*):

* in the FROTE loop, a fixed 0.5/0.5 weighting of MRA and F1
  (:meth:`Evaluation.j_equal`) because test coverage probabilities are
  unknown during augmentation;
* for reporting, rule terms weighted by empirical coverage probabilities
  (:meth:`Evaluation.j_weighted`).

Both are *complements* (``J̄ = 1 - J``): larger is better.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.engine.registry import register_objective
from repro.metrics.agreement import mra_probabilistic
from repro.metrics.classification import default_f1
from repro.rules.ruleset import FeedbackRuleSet


@dataclass(frozen=True)
class Evaluation:
    """Breakdown of one model evaluation against (dataset, FRS)."""

    per_rule_mra: np.ndarray  # agreement per rule (NaN when rule uncovered)
    per_rule_count: np.ndarray  # covered instances per rule (first-match)
    mra: float  # coverage-weighted mean agreement over covered instances
    f1_outside: float
    n_covered: int
    n_outside: int

    @property
    def n_total(self) -> int:
        return self.n_covered + self.n_outside

    def j_equal(self, mra_weight: float = 0.5) -> float:
        """Fixed-weight objective complement used inside the FROTE loop."""
        return mra_weight * self.mra + (1.0 - mra_weight) * self.f1_outside

    def j_weighted(self) -> float:
        """Coverage-probability-weighted objective complement (reported J̄)."""
        if self.n_total == 0:
            return 0.0
        p_cov = self.n_covered / self.n_total
        return p_cov * self.mra + (1.0 - p_cov) * self.f1_outside

    def loss_equal(self, mra_weight: float = 0.5) -> float:
        """The in-loop loss ĵ = 1 - ĵ̄ that FROTE minimizes."""
        return 1.0 - self.j_equal(mra_weight)


@register_objective("equal")
def equal_weight_objective(evaluation: Evaluation, config) -> float:
    """The paper's in-loop loss ĵ: fixed MRA/F1 weighting (default 0.5)."""
    return evaluation.loss_equal(config.mra_weight)


@register_objective("weighted")
def coverage_weighted_objective(evaluation: Evaluation, config) -> float:
    """Loss under the coverage-probability weighting (reported J̄)."""
    return 1.0 - evaluation.j_weighted()


def evaluate_predictions(
    y_pred: np.ndarray,
    dataset: Dataset,
    frs: FeedbackRuleSet,
    *,
    assign: np.ndarray | None = None,
) -> Evaluation:
    """Evaluate pre-computed predictions against the FRS and the dataset.

    Covered instances are assigned to their first covering rule (rule sets
    are conflict-free, so overlaps agree on π); agreement for rule r is
    ``mean(π_r[pred])``.  Outside-coverage instances are scored with the
    paper's F1 convention (binary F1 for 2 classes, macro otherwise).

    ``assign`` may carry a precomputed ``frs.assign(dataset.X)`` result —
    the edit loop memoizes it per active dataset so rejected iterations
    skip the full rule-coverage pass.
    """
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_pred.shape[0] != dataset.n:
        raise ValueError("predictions length does not match dataset")
    m = len(frs)
    per_rule_mra = np.full(m, np.nan)
    per_rule_count = np.zeros(m, dtype=np.int64)
    if m == 0:
        f1 = default_f1(dataset.y, y_pred, n_classes=dataset.n_classes)
        return Evaluation(per_rule_mra, per_rule_count, 1.0, f1, 0, dataset.n)

    if assign is None:
        assign = frs.assign(dataset.X)
    covered = assign >= 0
    n_covered = int(covered.sum())
    weighted_sum = 0.0
    for r, rule in enumerate(frs):
        rows = assign == r
        cnt = int(rows.sum())
        per_rule_count[r] = cnt
        if cnt == 0:
            continue
        agreement = mra_probabilistic(y_pred[rows], rule.pi_array())
        per_rule_mra[r] = agreement
        weighted_sum += agreement * cnt
    mra = weighted_sum / n_covered if n_covered else 1.0
    outside = ~covered
    f1 = default_f1(
        dataset.y[outside], y_pred[outside], n_classes=dataset.n_classes
    )
    return Evaluation(
        per_rule_mra=per_rule_mra,
        per_rule_count=per_rule_count,
        mra=mra,
        f1_outside=f1,
        n_covered=n_covered,
        n_outside=int(outside.sum()),
    )


def evaluate_model(
    model,
    dataset: Dataset,
    frs: FeedbackRuleSet,
    *,
    assign: np.ndarray | None = None,
) -> Evaluation:
    """Predict with ``model`` on ``dataset`` and evaluate (one prediction pass).

    ``assign`` optionally reuses a memoized ``frs.assign(dataset.X)``.
    """
    return evaluate_predictions(model.predict(dataset.X), dataset, frs, assign=assign)
