"""Base-instance selection strategies (paper §4.1).

Given the per-rule base populations and the per-iteration budget η, a
strategy returns, for each rule, positions (into that rule's population) of
the base instances to synthesize from:

* **random** — per-rule uniform sampling (the paper's default; empirically
  competitive, possibly because it avoids overfitting the training-set
  objective);
* **ip** — the integer program of Eq. 5 over Han-2005 borderline weights;
* **online** — supplement's online-learning proxy: score candidate base
  instances by the objective improvement predicted by an incrementally
  updated surrogate model.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.core.ip import build_selection_problem, solve_selection
from repro.core.preselect import BasePopulation
from repro.data.dataset import Dataset
from repro.engine.registry import SELECTORS, register_selector
from repro.sampling.borderline import classify_borderline


class SelectionContext:
    """Everything a strategy may consult when selecting base instances.

    ``cache_token`` identifies the active dataset revision (the engine
    passes its ``dataset_version``); strategies may memoize work derived
    from the dataset and the model predictions against it, since both only
    change when the token does.

    ``distance_backend`` carries the run's
    :attr:`~repro.core.config.FroteConfig.distance_backend` so strategies
    that search neighbours (the IP selector's borderline analysis) follow
    the configured kernel path.
    """

    def __init__(
        self,
        dataset: Dataset,
        model_predictions: np.ndarray | None,
        *,
        k: int,
        rng: np.random.Generator,
        frs=None,
        cache_token: object | None = None,
        distance_backend=None,
    ) -> None:
        self.dataset = dataset
        self.model_predictions = model_predictions
        self.k = k
        self.rng = rng
        self.frs = frs  # needed by the online-proxy strategy
        self.cache_token = cache_token
        self.distance_backend = distance_backend


class BaseInstanceSelector(Protocol):
    """Strategy protocol: population + budget -> per-rule positions.

    A selector may additionally define a class attribute
    ``needs_predictions = False`` to tell the engine's
    :class:`~repro.engine.stages.SelectionStage` to skip the per-iteration
    model-prediction pass (the engine assumes ``True`` when absent).
    """

    def select(
        self, bp: BasePopulation, eta: int, ctx: SelectionContext
    ) -> list[np.ndarray]:
        ...


def _allocate_per_rule(eta: int, m: int) -> list[int]:
    """Split the budget η as evenly as possible across m rules."""
    if m == 0:
        return []
    base, rem = divmod(eta, m)
    return [base + (1 if j < rem else 0) for j in range(m)]


@register_selector("random")
class RandomSelector:
    """Uniform per-rule sampling from the base population (with replacement
    when the quota exceeds the pool, so η instances are always produced)."""

    needs_predictions = False

    def select(
        self, bp: BasePopulation, eta: int, ctx: SelectionContext
    ) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for pop, quota in zip(bp.per_rule, _allocate_per_rule(eta, len(bp))):
            if pop.size == 0 or quota == 0:
                out.append(np.empty(0, dtype=np.intp))
                continue
            replace = quota > pop.size
            out.append(
                ctx.rng.choice(pop.size, size=quota, replace=replace).astype(np.intp)
            )
        return out


@register_selector("ip")
class IPSelector:
    """Eq. 5 selection over borderline weights.

    Weights follow the supplement: model-prediction neighbourhoods with
    ``k = 10``, borderline points weighted 3, safe and noisy points 1.
    """

    def __init__(self, *, k_classify: int = 10, borderline_weight: float = 3.0) -> None:
        self.k_classify = k_classify
        self.borderline_weight = borderline_weight
        self._analysis_cache: tuple[object, object] | None = None

    def _borderline_analysis(self, union: np.ndarray, ctx: SelectionContext):
        """Classify the candidate union, memoized per dataset revision.

        The union, the dataset rows, and the model predictions are all
        functions of the active dataset revision, so between accepted
        batches the (expensive) neighbour classification is reused.
        """
        token = ctx.cache_token
        if (
            token is not None
            and self._analysis_cache is not None
            and self._analysis_cache[0] == token
            and self._analysis_cache[1].weights.shape[0] == union.size
        ):
            return self._analysis_cache[1]
        labels = (
            ctx.model_predictions[union]
            if ctx.model_predictions is not None
            else ctx.dataset.y[union]
        )
        analysis = classify_borderline(
            ctx.dataset.X.take(union),
            labels,
            k=self.k_classify,
            weights={"noisy": 1.0, "safe": 1.0, "borderline": self.borderline_weight},
            distance_backend=getattr(ctx, "distance_backend", None),
        )
        if token is not None:
            self._analysis_cache = (token, analysis)
        return analysis

    def select(
        self, bp: BasePopulation, eta: int, ctx: SelectionContext
    ) -> list[np.ndarray]:
        union = bp.union_indices
        if union.size == 0:
            return [np.empty(0, dtype=np.intp) for _ in bp.per_rule]
        analysis = self._borderline_analysis(union, ctx)
        problem, candidates = build_selection_problem(
            analysis.weights,
            [pop.indices for pop in bp.per_rule],
            k=ctx.k,
            eta=eta,
        )
        chosen = solve_selection(problem)
        chosen_rows = candidates[chosen]
        return [
            np.flatnonzero(np.isin(pop.indices, chosen_rows)).astype(np.intp)
            for pop in bp.per_rule
        ]


def make_selector(name: str, **kwargs) -> BaseInstanceSelector:
    """Instantiate a registered selection strategy by name.

    Looks the name up in :data:`repro.engine.SELECTORS`, so strategies
    registered from user code (via
    :func:`repro.engine.register_selector`) work everywhere a built-in
    name does, including :class:`~repro.core.config.FroteConfig`.
    """
    return SELECTORS.create(name, **kwargs)
