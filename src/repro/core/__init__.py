"""FROTE core: objective, base populations, selection, and the main loop."""

from repro.core.audit import (
    ORIGINAL,
    RELABELLED,
    SYNTHETIC,
    EditAudit,
    RowProvenance,
)
from repro.core.config import FroteConfig
from repro.core.options import (
    JournalOptions,
    KernelOptions,
    ServeOptions,
    StorageOptions,
)
from repro.core.inflection import (
    InflectionTrace,
    format_inflection,
    trace_inflection,
)
from repro.core.frote import FROTE, FroteResult, IterationRecord, run_frote
from repro.core.ip import (
    SelectionProblem,
    build_selection_problem,
    greedy_selection,
    solve_lp_relaxation,
    solve_selection,
)
from repro.core.modification import (
    MOD_STRATEGIES,
    ModificationResult,
    apply_modification,
)
from repro.core.objective import Evaluation, evaluate_model, evaluate_predictions
from repro.core.online_proxy import OnlineObjectiveProxy, OnlineProxySelector
from repro.core.preselect import (
    BasePopulation,
    RulePopulation,
    preselect_base_population,
)
from repro.core.selection import (
    IPSelector,
    RandomSelector,
    SelectionContext,
    make_selector,
)

__all__ = [
    "FROTE",
    "FroteConfig",
    "StorageOptions",
    "JournalOptions",
    "KernelOptions",
    "ServeOptions",
    "FroteResult",
    "IterationRecord",
    "run_frote",
    "Evaluation",
    "evaluate_model",
    "evaluate_predictions",
    "BasePopulation",
    "RulePopulation",
    "preselect_base_population",
    "RandomSelector",
    "IPSelector",
    "SelectionContext",
    "make_selector",
    "SelectionProblem",
    "build_selection_problem",
    "solve_selection",
    "solve_lp_relaxation",
    "greedy_selection",
    "apply_modification",
    "ModificationResult",
    "MOD_STRATEGIES",
    "OnlineObjectiveProxy",
    "OnlineProxySelector",
    "EditAudit",
    "RowProvenance",
    "ORIGINAL",
    "RELABELLED",
    "SYNTHETIC",
    "InflectionTrace",
    "trace_inflection",
    "format_inflection",
]
