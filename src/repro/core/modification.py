"""Input dataset modification strategies (paper §5.1, *Input dataset choices*).

Before augmentation, instances in ``cov(F, D)`` whose labels disagree with
their covering feedback rule may be:

* ``none``    — left untouched (the user cannot modify existing data);
* ``relabel`` — relabelled to agree with the covering rule (the paper's
  default for most experiments);
* ``drop``    — removed from the dataset.

For probabilistic rules, "agreement" means the label has non-zero
probability under π; relabelling samples from π.

Each strategy is a class registered in :data:`repro.engine.MODIFIERS`
implementing ``modify(dataset, frs, rng) -> ModificationResult``; user
strategies plug in via :func:`repro.engine.register_modifier` and are then
valid ``mod_strategy`` values in :class:`~repro.core.config.FroteConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.engine.registry import MODIFIERS, register_modifier
from repro.rules.ruleset import FeedbackRuleSet
from repro.utils.rng import RandomState, check_random_state

# The paper's strategies (kept for compatibility; the authoritative list is
# the registry, which also contains user plugins).
MOD_STRATEGIES = ("none", "relabel", "drop")


@dataclass(frozen=True)
class ModificationResult:
    """The modified dataset plus bookkeeping about what changed.

    ``touched_rows`` are indices *into the input dataset* of the rows that
    were relabelled or dropped; ``touched_rules`` gives the covering rule
    per touched row, and ``original_labels`` the pre-edit labels — the
    lineage information :mod:`repro.core.audit` records.
    """

    dataset: Dataset
    n_relabelled: int
    n_dropped: int
    touched_rows: np.ndarray = None  # type: ignore[assignment]
    touched_rules: np.ndarray = None  # type: ignore[assignment]
    original_labels: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        empty = np.empty(0, dtype=np.int64)
        if self.touched_rows is None:
            object.__setattr__(self, "touched_rows", empty)
        if self.touched_rules is None:
            object.__setattr__(self, "touched_rules", empty)
        if self.original_labels is None:
            object.__setattr__(self, "original_labels", empty)


def find_disagreements(
    dataset: Dataset, frs: FeedbackRuleSet
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rows covered by the FRS whose label has zero probability under π.

    Returns ``(disagree_mask, touched_indices, assignment)`` where
    ``assignment`` maps every dataset row to its first covering rule
    (-1 when uncovered).
    """
    assign = frs.assign(dataset.X)
    disagree = np.zeros(dataset.n, dtype=bool)
    if len(frs) == 0:
        # Feedback-driven sessions may start with an empty rule set;
        # nothing is covered, so nothing can disagree.
        return disagree, np.flatnonzero(disagree), assign
    pi_matrix = np.stack([r.pi_array() for r in frs])
    covered = assign >= 0
    rows = np.flatnonzero(covered)
    disagree[rows] = pi_matrix[assign[rows], dataset.y[rows]] <= 0.0
    return disagree, np.flatnonzero(disagree), assign


@register_modifier("none")
class NoModification:
    """Leave the input dataset untouched."""

    def modify(
        self, dataset: Dataset, frs: FeedbackRuleSet, rng: np.random.Generator
    ) -> ModificationResult:
        return ModificationResult(dataset, 0, 0)


@register_modifier("drop")
class DropModification:
    """Remove rows whose labels disagree with their covering rule."""

    def modify(
        self, dataset: Dataset, frs: FeedbackRuleSet, rng: np.random.Generator
    ) -> ModificationResult:
        disagree, touched, assign = find_disagreements(dataset, frs)
        kept = dataset.loc_mask(~disagree)
        return ModificationResult(
            kept,
            0,
            int(disagree.sum()),
            touched_rows=touched,
            touched_rules=assign[touched],
            original_labels=dataset.y[touched].copy(),
        )


@register_modifier("relabel")
class RelabelModification:
    """Relabel disagreeing rows by sampling from the covering rule's π."""

    def modify(
        self, dataset: Dataset, frs: FeedbackRuleSet, rng: np.random.Generator
    ) -> ModificationResult:
        disagree, touched, assign = find_disagreements(dataset, frs)
        y_new = dataset.y.copy()
        for i in touched:
            rule = frs[int(assign[i])]
            y_new[i] = int(rule.sample_labels(1, rng)[0])
        return ModificationResult(
            dataset.with_labels(y_new),
            int(disagree.sum()),
            0,
            touched_rows=touched,
            touched_rules=assign[touched],
            original_labels=dataset.y[touched].copy(),
        )


def apply_modification(
    dataset: Dataset,
    frs: FeedbackRuleSet,
    strategy: str,
    *,
    random_state: RandomState = None,
) -> ModificationResult:
    """Apply a registered modification strategy by name."""
    MODIFIERS.validate(strategy)
    if len(frs) == 0:
        return ModificationResult(dataset, 0, 0)
    rng = check_random_state(random_state)
    return MODIFIERS.create(strategy).modify(dataset, frs, rng)
