"""Online-learning objective proxy (paper supplement, Eq. 7).

Retraining the black-box algorithm A to score every candidate base instance
is cubic in |D|; the supplement proposes approximating

    J(A(D̂ ∪ Generate(B)), F)  ≈  Ĵ_D̂(OL(M̂, Generate(B)), F)

where M̂ is a parametric surrogate of the current model (trained on D̂
against the model's *predictions*) and OL applies online updates for the
generated instances instead of retraining.

:class:`OnlineProxySelector` uses this proxy as a base-instance selection
strategy: candidate singletons are scored by the surrogate's post-update
loss and the best-scoring η instances are selected.
"""

from __future__ import annotations

import numpy as np

from repro.core.objective import evaluate_predictions
from repro.core.preselect import BasePopulation
from repro.data.dataset import Dataset
from repro.data.encoding import TabularEncoder
from repro.engine.registry import register_selector
from repro.models.online import OnlineLogisticRegression
from repro.rules.ruleset import FeedbackRuleSet


class OnlineObjectiveProxy:
    """Surrogate-model evaluation of candidate augmentation batches."""

    def __init__(
        self,
        dataset: Dataset,
        model_predictions: np.ndarray,
        frs: FeedbackRuleSet,
        *,
        mra_weight: float = 0.5,
        surrogate: OnlineLogisticRegression | None = None,
    ) -> None:
        self.dataset = dataset
        self.frs = frs
        self.mra_weight = mra_weight
        self.encoder = TabularEncoder().fit(dataset.X)
        self._X = self.encoder.transform(dataset.X)
        self.surrogate = surrogate or OnlineLogisticRegression(epochs=3)
        # Step 1 of the supplement: fit the surrogate to mimic the current
        # model (its predictions, not the raw labels).
        self.surrogate.fit(
            self._X, np.asarray(model_predictions, dtype=np.int64),
            n_classes=dataset.n_classes,
        )

    def baseline_loss(self) -> float:
        """Loss ĵ of the unmodified surrogate over D̂."""
        pred = self.surrogate.predict(self._X)
        ev = evaluate_predictions(pred, self.dataset, self.frs)
        return ev.loss_equal(self.mra_weight)

    def score_batch(self, table, labels: np.ndarray) -> float:
        """Loss ĵ after online-updating the surrogate on a candidate batch.

        The surrogate state is cloned, so scoring has no side effects.
        """
        clone = self.surrogate.clone_state()
        Xb = self.encoder.transform(table)
        clone.partial_fit(Xb, np.asarray(labels, dtype=np.int64),
                          n_classes=self.dataset.n_classes)
        pred = clone.predict(self._X)
        ev = evaluate_predictions(pred, self.dataset, self.frs)
        return ev.loss_equal(self.mra_weight)


@register_selector("online")
class OnlineProxySelector:
    """Selection strategy built on :class:`OnlineObjectiveProxy`.

    Scores each base-population candidate as a singleton batch labelled by
    its rule, then picks the η candidates with the lowest proxy loss
    (per-rule, proportionally to the random allocation).  Complexity is
    O(|P|·|D̂|) per iteration — the cost the supplement flags as the
    bottleneck — so it is practical only for small datasets; it exists to
    reproduce the supplement's analysis.
    """

    def __init__(self, *, max_candidates_per_rule: int = 50) -> None:
        self.max_candidates_per_rule = max_candidates_per_rule

    def select(self, bp: BasePopulation, eta: int, ctx) -> list[np.ndarray]:
        from repro.core.selection import _allocate_per_rule

        if ctx.model_predictions is None:
            raise ValueError("online selection requires model predictions")
        proxy = OnlineObjectiveProxy(
            ctx.dataset, ctx.model_predictions, self._frs_from_ctx(ctx)
        )
        out: list[np.ndarray] = []
        quotas = _allocate_per_rule(eta, len(bp))
        for pop, quota in zip(bp.per_rule, quotas):
            if pop.size == 0 or quota == 0:
                out.append(np.empty(0, dtype=np.intp))
                continue
            n_cand = min(pop.size, self.max_candidates_per_rule)
            cand_pos = ctx.rng.choice(pop.size, size=n_cand, replace=False)
            rule = self._frs_from_ctx(ctx)[pop.rule_index]
            scores = np.empty(n_cand)
            for c, pos in enumerate(cand_pos):
                row = ctx.dataset.X.take(pop.indices[[pos]])
                label = np.array([rule.target_class], dtype=np.int64)
                scores[c] = proxy.score_batch(row, label)
            order = cand_pos[np.argsort(scores, kind="stable")]
            chosen = order[:quota]
            if chosen.size < quota:
                extra = ctx.rng.choice(pop.size, size=quota - chosen.size, replace=True)
                chosen = np.concatenate([chosen, extra])
            out.append(chosen.astype(np.intp))
        return out

    def _frs_from_ctx(self, ctx) -> FeedbackRuleSet:
        frs = getattr(ctx, "frs", None)
        if frs is None:
            raise ValueError(
                "SelectionContext must carry the feedback rule set for the "
                "online strategy (set ctx.frs)"
            )
        return frs
