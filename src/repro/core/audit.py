"""Edit lineage and audit records (paper §6, Broader Impact).

The paper argues FROTE's edits are governable because "the original data,
the feedback rules and the newly created dataset can be stored to
transparently log the updates to the model and capture the lineage of the
data" (citing the FactSheets framework).  This module provides that log:

* :class:`RowProvenance` — per-row origin of the augmented dataset
  (original / relabelled / synthetic, with generating rule and iteration);
* :class:`EditAudit` — the run-level record: rules applied, modification
  counts, acceptance history, and a serializable summary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.rules.ruleset import FeedbackRuleSet

ORIGINAL = "original"
RELABELLED = "relabelled"
SYNTHETIC = "synthetic"


@dataclass
class RowProvenance:
    """Origin of every row in an augmented dataset.

    Attributes
    ----------
    kind:
        Object array over rows: ``original`` / ``relabelled`` / ``synthetic``.
    rule_index:
        Generating (synthetic) or relabelling rule index; -1 for untouched
        original rows.
    iteration:
        FROTE iteration that produced the row; -1 for input rows.
    original_label:
        For relabelled rows, the pre-edit label; -1 elsewhere.
    """

    kind: np.ndarray
    rule_index: np.ndarray
    iteration: np.ndarray
    original_label: np.ndarray

    @classmethod
    def for_input(cls, n: int) -> "RowProvenance":
        return cls(
            kind=np.array([ORIGINAL] * n, dtype=object),
            rule_index=np.full(n, -1, dtype=np.int64),
            iteration=np.full(n, -1, dtype=np.int64),
            original_label=np.full(n, -1, dtype=np.int64),
        )

    @property
    def n(self) -> int:
        return int(self.kind.size)

    def mark_relabelled(
        self, rows: np.ndarray, rule_indices: np.ndarray, original_labels: np.ndarray
    ) -> None:
        self.kind[rows] = RELABELLED
        self.rule_index[rows] = rule_indices
        self.original_label[rows] = original_labels

    def extend_synthetic(
        self, counts_per_rule: list[int], iteration: int
    ) -> "RowProvenance":
        """Return a new provenance with synthetic rows appended."""
        add = int(sum(counts_per_rule))
        rule_idx = np.concatenate(
            [np.full(c, r, dtype=np.int64) for r, c in enumerate(counts_per_rule)]
        ) if add else np.empty(0, dtype=np.int64)
        return RowProvenance(
            kind=np.concatenate([self.kind, np.array([SYNTHETIC] * add, dtype=object)]),
            rule_index=np.concatenate([self.rule_index, rule_idx]),
            iteration=np.concatenate(
                [self.iteration, np.full(add, iteration, dtype=np.int64)]
            ),
            original_label=np.concatenate(
                [self.original_label, np.full(add, -1, dtype=np.int64)]
            ),
        )

    def drop_rows(self, mask: np.ndarray) -> "RowProvenance":
        keep = ~np.asarray(mask, dtype=bool)
        return RowProvenance(
            kind=self.kind[keep],
            rule_index=self.rule_index[keep],
            iteration=self.iteration[keep],
            original_label=self.original_label[keep],
        )

    def counts(self) -> dict[str, int]:
        return {
            k: int(np.sum(self.kind == k))
            for k in (ORIGINAL, RELABELLED, SYNTHETIC)
        }

    def synthetic_by_rule(self) -> dict[int, int]:
        """Synthetic row count per generating rule index."""
        synth = self.kind == SYNTHETIC
        out: dict[int, int] = {}
        for r in np.unique(self.rule_index[synth]):
            out[int(r)] = int(np.sum(synth & (self.rule_index == r)))
        return out


@dataclass
class EditAudit:
    """Run-level audit record suitable for a governance log."""

    rules: list[str]
    mod_strategy: str
    n_input: int
    n_relabelled: int
    n_dropped: int
    n_synthetic: int
    iterations: int
    accepted_iterations: int
    initial_loss: float
    final_loss: float
    provenance: RowProvenance | None = None
    metadata: dict = field(default_factory=dict)

    @classmethod
    def from_run(
        cls,
        frs: FeedbackRuleSet,
        result,  # FroteResult; not typed to avoid an import cycle
        *,
        mod_strategy: str,
        metadata: dict | None = None,
    ) -> "EditAudit":
        return cls(
            rules=[str(r) for r in frs],
            mod_strategy=mod_strategy,
            n_input=result.dataset.n - result.n_added,
            n_relabelled=result.n_relabelled,
            n_dropped=result.n_dropped,
            n_synthetic=result.n_added,
            iterations=result.iterations,
            accepted_iterations=result.accepted_iterations,
            initial_loss=result.initial_evaluation.loss_equal(),
            final_loss=result.final_evaluation.loss_equal(),
            provenance=getattr(result, "provenance", None),
            metadata=dict(metadata or {}),
        )

    def to_dict(self) -> dict:
        """JSON-serializable summary (provenance reduced to counts)."""
        out = {
            "rules": self.rules,
            "mod_strategy": self.mod_strategy,
            "n_input": self.n_input,
            "n_relabelled": self.n_relabelled,
            "n_dropped": self.n_dropped,
            "n_synthetic": self.n_synthetic,
            "iterations": self.iterations,
            "accepted_iterations": self.accepted_iterations,
            "initial_loss": self.initial_loss,
            "final_loss": self.final_loss,
            "metadata": self.metadata,
        }
        if self.provenance is not None:
            out["provenance_counts"] = self.provenance.counts()
            out["synthetic_by_rule"] = {
                str(k): v for k, v in self.provenance.synthetic_by_rule().items()
            }
        return out

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def summary(self) -> str:
        """Human-readable one-screen audit summary."""
        lines = [
            "FROTE edit audit",
            f"  input rows:        {self.n_input}",
            f"  relabelled:        {self.n_relabelled}",
            f"  dropped:           {self.n_dropped}",
            f"  synthetic added:   {self.n_synthetic}",
            f"  iterations:        {self.accepted_iterations}/{self.iterations} accepted",
            f"  loss:              {self.initial_loss:.4f} -> {self.final_loss:.4f}",
            f"  mod strategy:      {self.mod_strategy}",
            "  feedback rules:",
        ]
        lines.extend(f"    [{i}] {r}" for i, r in enumerate(self.rules))
        if self.provenance is not None:
            by_rule = self.provenance.synthetic_by_rule()
            if by_rule:
                lines.append("  synthetic per rule:")
                lines.extend(f"    rule {k}: {v} rows" for k, v in sorted(by_rule.items()))
        return "\n".join(lines)
