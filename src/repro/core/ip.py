"""Integer-programming base-instance selection (paper Eq. 5).

Maximize the total weight of selected base instances subject to per-rule
bounds::

    max_z  sum_i w_i z_i
    s.t.   k + 1  <=  sum_i a_ji z_i  <=  eta / m     for each rule j
           z in {0, 1}^p

``a_ji = 1`` iff instance ``i`` lies in rule ``j``'s base population.  The
paper notes that the LP relaxation is usually integral; we solve the
relaxation with :func:`scipy.optimize.linprog` and repair any fractional
solution greedily (round by fractional value × weight, then fix per-rule
bound violations).  A pure greedy fallback handles LP failures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog


@dataclass(frozen=True)
class SelectionProblem:
    """One instance-selection problem over the BP union.

    Attributes
    ----------
    weights:
        Value of each candidate instance (length ``p``).
    membership:
        Boolean matrix ``(m, p)``: rule j × candidate i.
    lower, upper:
        Per-rule selection bounds (lower clamped to pool sizes by
        :func:`build_selection_problem`).
    """

    weights: np.ndarray
    membership: np.ndarray
    lower: np.ndarray
    upper: np.ndarray

    @property
    def n_candidates(self) -> int:
        return int(self.weights.size)

    @property
    def n_rules(self) -> int:
        return int(self.membership.shape[0])


def build_selection_problem(
    weights: np.ndarray,
    rule_pools: list[np.ndarray],
    *,
    k: int,
    eta: int,
) -> tuple[SelectionProblem, np.ndarray]:
    """Assemble Eq. 5 from per-rule pools of dataset indices.

    Returns the problem plus the array of candidate dataset indices
    (the union ``P``); the problem's columns are positions in that array.
    Bounds are clamped so the problem is always feasible: lower is
    ``min(k + 1, pool size)``, upper is ``max(lower, eta / m)``.
    """
    union = np.unique(np.concatenate([p for p in rule_pools])) if rule_pools else np.empty(0, dtype=np.intp)
    pos = {int(v): i for i, v in enumerate(union)}
    m = len(rule_pools)
    membership = np.zeros((m, union.size), dtype=bool)
    for j, pool in enumerate(rule_pools):
        for v in pool:
            membership[j, pos[int(v)]] = True
    per_rule_cap = max(1, eta // max(m, 1))
    lower = np.minimum(k + 1, membership.sum(axis=1))
    upper = np.maximum(lower, per_rule_cap)
    w = np.asarray(weights, dtype=np.float64)
    if w.size != union.size:
        raise ValueError(
            f"weights length {w.size} does not match union size {union.size}"
        )
    return SelectionProblem(w, membership, lower, upper), union


def solve_lp_relaxation(problem: SelectionProblem) -> np.ndarray | None:
    """Solve the LP relaxation of Eq. 5; None if the solver fails."""
    p = problem.n_candidates
    if p == 0:
        return np.empty(0)
    A = problem.membership.astype(np.float64)
    # linprog minimizes: use -w; constraints A z <= upper and -A z <= -lower.
    A_ub = np.vstack([A, -A])
    b_ub = np.concatenate([problem.upper, -problem.lower]).astype(np.float64)
    res = linprog(
        -problem.weights,
        A_ub=A_ub,
        b_ub=b_ub,
        bounds=[(0.0, 1.0)] * p,
        method="highs",
    )
    if not res.success:
        return None
    return np.clip(res.x, 0.0, 1.0)


def _repair(problem: SelectionProblem, chosen: np.ndarray) -> np.ndarray:
    """Greedy repair: enforce every rule's [lower, upper] selection bounds."""
    chosen = chosen.copy()
    w = problem.weights
    for j in range(problem.n_rules):
        members = np.flatnonzero(problem.membership[j])
        sel = members[chosen[members]]
        # Below lower bound: add the highest-weight unchosen members.
        deficit = int(problem.lower[j] - sel.size)
        if deficit > 0:
            unchosen = members[~chosen[members]]
            order = unchosen[np.argsort(-w[unchosen], kind="stable")]
            chosen[order[:deficit]] = True
        # Above upper bound: drop the lowest-weight chosen members, but only
        # those whose removal cannot break another rule's lower bound.
        sel = members[chosen[members]]
        excess = int(sel.size - problem.upper[j])
        if excess > 0:
            order = sel[np.argsort(w[sel], kind="stable")]
            removed = 0
            for i in order:
                if removed >= excess:
                    break
                chosen[i] = False
                ok = True
                for jj in np.flatnonzero(problem.membership[:, i]):
                    mem = np.flatnonzero(problem.membership[jj])
                    if chosen[mem].sum() < problem.lower[jj]:
                        ok = False
                        break
                if ok:
                    removed += 1
                else:
                    chosen[i] = True
    return chosen


def greedy_selection(problem: SelectionProblem) -> np.ndarray:
    """Weight-greedy feasible selection (fallback when the LP fails)."""
    chosen = np.zeros(problem.n_candidates, dtype=bool)
    return _repair(problem, chosen)


def solve_selection(problem: SelectionProblem) -> np.ndarray:
    """Solve Eq. 5; returns a boolean selection over candidates.

    LP-relax, round at 0.5 weighted by fractional value, then repair.
    """
    if problem.n_candidates == 0:
        return np.zeros(0, dtype=bool)
    frac = solve_lp_relaxation(problem)
    if frac is None:
        return greedy_selection(problem)
    chosen = frac > 0.5
    return _repair(problem, chosen)
