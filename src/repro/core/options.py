"""Typed option groups: the structured face of run configuration.

:class:`~repro.core.config.FroteConfig` grew one flat keyword at a time
— paper knobs, then out-of-core storage, then journaling, then kernel
backends — until call sites mixed unrelated concerns in one ~20-kwarg
constructor.  The groups here carve that surface along its seams:

* :class:`StorageOptions` — the out-of-core path (resident budget,
  shard geometry, spill location);
* :class:`JournalOptions` — the durable run journal (directory, name,
  resume behavior);
* :class:`KernelOptions` — compute-path opt-ins (distance backend,
  incremental refit);
* :class:`ServeOptions` — the serving layer's admission/scheduling
  envelope, consumed by :class:`repro.serve.EditService`.

``FroteConfig`` accepts the first three as ``storage=`` / ``journal=`` /
``kernel=`` and expands them into its (retained) flat fields, so the
whole downstream machinery — config snapshots, journal resume
validation, grid spec hashing — is untouched.  Flat kwargs keep working
as a back-compat shim; ``EditSession.configure`` emits a
``DeprecationWarning`` when a grouped concern is passed flat (see
``docs/migration.md``).

Every group is frozen and equality-comparable, so configs built from
groups hash and compare exactly like configs built flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "JournalOptions",
    "KernelOptions",
    "ServeOptions",
    "StorageOptions",
]


@dataclass(frozen=True)
class StorageOptions:
    """The out-of-core storage envelope of one run.

    Parameters mirror the flat ``FroteConfig`` fields of the same
    meaning: ``max_resident_mb`` (resident budget for sealed column
    shards; ``None`` keeps everything dense in RAM), ``shard_rows``
    (rows per shard), and ``spill_dir`` (base directory for spill
    files).  ``shard_rows`` / ``spill_dir`` require a budget, enforced
    by ``FroteConfig`` validation after expansion.
    """

    max_resident_mb: float | None = None
    shard_rows: int | None = None
    spill_dir: str | None = None


@dataclass(frozen=True)
class JournalOptions:
    """The durable-journal envelope of one run.

    ``dir`` / ``name`` / ``resume`` expand to ``journal_dir`` /
    ``journal_name`` / ``journal_resume``: where the append-only session
    journal lives, its subdirectory name, and whether a re-run
    fast-forwards from committed iterations (see :mod:`repro.journal`).
    """

    dir: str | None = None
    name: str | None = None
    resume: bool = True


@dataclass(frozen=True)
class KernelOptions:
    """Compute-path opt-ins: numeric kernels and refit strategy.

    ``distance_backend`` selects the blocked float32 distance-kernel
    layer (``None`` keeps the exact float64 path); ``incremental`` opts
    into delta-proportional partial refits.  Both trade bit-identity
    for speed — see the ``FroteConfig`` field docs for the exact
    contracts.
    """

    distance_backend: str | None = None
    incremental: bool = False


@dataclass(frozen=True)
class ServeOptions:
    """The serving layer's admission and scheduling envelope.

    A typed bundle of :class:`repro.serve.EditService` constructor
    parameters, so deployments can build, diff, and persist one value
    instead of eight keywords.  ``EditService(options=...)`` consumes
    it; explicitly passed flat keywords still win for targeted
    overrides.
    """

    max_concurrent_steps: int | None = None
    policy: Any = "round-robin"
    memory_budget_mb: float | None = None
    default_session_mb: float | None = None
    max_active_sessions: int = 64
    max_pending: int = 64
    event_queue_size: int = 256
    journal_dir: str | None = None


#: group-field → flat ``FroteConfig`` field, per group type.
STORAGE_FIELD_MAP = {
    "max_resident_mb": "max_resident_mb",
    "shard_rows": "shard_rows",
    "spill_dir": "spill_dir",
}
JOURNAL_FIELD_MAP = {
    "dir": "journal_dir",
    "name": "journal_name",
    "resume": "journal_resume",
}
KERNEL_FIELD_MAP = {
    "distance_backend": "distance_backend",
    "incremental": "incremental",
}
