"""Textual rule syntax, for examples and interactive use.

Grammar (informal)::

    rule    := clause "=>" target
    clause  := condition (" AND " condition)*
    cond    := attribute op value
    op      := "==" | "=" | "!=" | ">" | ">=" | "<" | "<="
    target  := class-name | class-code | distribution

    distribution := "[" p0 "," p1 ("," pk)* "]"

Examples::

    age < 29 AND marital = 'single' => approved
    income >= 150 => 1
    color != 'red' => [0.2, 0.8]
"""

from __future__ import annotations

import re

from repro.data.schema import Schema
from repro.rules.clause import Clause
from repro.rules.predicate import Predicate
from repro.rules.rule import FeedbackRule

_COND_RE = re.compile(
    r"^\s*(?P<attr>[A-Za-z_][\w.-]*)\s*(?P<op>==|!=|>=|<=|=|>|<)\s*(?P<val>.+?)\s*$"
)


class RuleParseError(ValueError):
    """Raised for malformed rule text."""


def parse_predicate(text: str, schema: Schema) -> Predicate:
    """Parse a single ``attribute op value`` condition."""
    m = _COND_RE.match(text)
    if not m:
        raise RuleParseError(f"cannot parse condition: {text!r}")
    attr, op, raw = m.group("attr"), m.group("op"), m.group("val")
    if op == "=":
        op = "=="
    if attr not in schema:
        raise RuleParseError(f"unknown attribute {attr!r}")
    spec = schema[attr]
    if spec.is_numeric:
        try:
            value: float | str = float(raw)
        except ValueError:
            raise RuleParseError(
                f"numeric attribute {attr!r} needs a numeric value, got {raw!r}"
            ) from None
    else:
        value = raw.strip("'\"")
    pred = Predicate(attr, op, value)
    pred.validate(spec)
    return pred


def parse_clause(text: str, schema: Schema) -> Clause:
    """Parse an AND-conjunction of conditions."""
    parts = re.split(r"\s+AND\s+", text.strip(), flags=re.IGNORECASE)
    preds = tuple(parse_predicate(p, schema) for p in parts if p.strip())
    if not preds:
        raise RuleParseError(f"empty clause: {text!r}")
    return Clause(preds)


def parse_rule(
    text: str,
    schema: Schema,
    label_names: tuple[str, ...],
    *,
    name: str = "",
) -> FeedbackRule:
    """Parse a full ``clause => target`` feedback rule."""
    if "=>" not in text:
        raise RuleParseError(f"rule must contain '=>': {text!r}")
    lhs, rhs = text.split("=>", 1)
    clause = parse_clause(lhs, schema)
    rhs = rhs.strip()
    n_classes = len(label_names)
    if rhs.startswith("["):
        if not rhs.endswith("]"):
            raise RuleParseError(f"unterminated distribution: {rhs!r}")
        try:
            probs = tuple(float(v) for v in rhs[1:-1].split(","))
        except ValueError:
            raise RuleParseError(f"bad distribution: {rhs!r}") from None
        if len(probs) != n_classes:
            raise RuleParseError(
                f"distribution has {len(probs)} entries for {n_classes} classes"
            )
        return FeedbackRule(clause, probs, name=name)
    if rhs in label_names:
        target = label_names.index(rhs)
    else:
        try:
            target = int(rhs)
        except ValueError:
            raise RuleParseError(
                f"target {rhs!r} is neither a class name {label_names} nor a code"
            ) from None
        if not 0 <= target < n_classes:
            raise RuleParseError(f"class code {target} out of range")
    return FeedbackRule.deterministic(clause, target, n_classes, name=name)
