"""Rule relaxation: the maximal partial rule of paper Algorithm 2.

When a feedback rule has fewer than ``k + 1`` covered instances, FROTE
relaxes it: repeatedly delete the single condition whose removal yields the
largest coverage (a breadth-first search over condition subsets, one level
per deletion) until coverage reaches the threshold.  The empty clause covers
the whole dataset, so relaxation always terminates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import Table
from repro.rules.clause import Clause
from repro.rules.rule import FeedbackRule


@dataclass(frozen=True)
class RelaxationResult:
    """Outcome of relaxing one rule against one dataset.

    Attributes
    ----------
    original:
        The rule as provided by the user.
    relaxed_clause:
        The maximal partial rule's clause (equal to ``original.clause`` when
        no relaxation was needed).
    removed:
        Conditions deleted, in deletion order.
    coverage:
        Number of rows the relaxed clause covers.
    """

    original: FeedbackRule
    relaxed_clause: Clause
    removed: tuple
    coverage: int

    @property
    def was_relaxed(self) -> bool:
        return bool(self.removed)

    def relaxed_mask(self, table: Table) -> np.ndarray:
        """Coverage mask of the relaxed clause (exceptions still applied)."""
        mask = self.relaxed_clause.mask(table)
        for exc in self.original.exceptions:
            mask &= ~exc.mask(table)
        return mask


def relax_rule(
    rule: FeedbackRule, table: Table, *, min_coverage: int
) -> RelaxationResult:
    """Compute the maximal partial rule of ``rule`` over ``table``.

    Follows Algorithm 2: while coverage is below ``min_coverage``, evaluate
    the removal of each remaining condition and keep the removal with the
    largest resulting coverage; an emptied clause counts as full coverage.
    """
    if min_coverage < 1:
        raise ValueError(f"min_coverage must be >= 1, got {min_coverage}")
    current = rule.clause
    removed: list = []

    def coverage_of(c: Clause) -> int:
        mask = c.mask(table)
        for exc in rule.exceptions:
            mask &= ~exc.mask(table)
        return int(mask.sum())

    cov = coverage_of(current)
    while cov < min_coverage and len(current) > 0:
        best_cov = -1
        best_clause = current
        best_pred = None
        for pred in current.predicates:
            cand = current.without(pred)
            cand_cov = table.n_rows if len(cand) == 0 else coverage_of(cand)
            if cand_cov > best_cov:
                best_cov = cand_cov
                best_clause = cand
                best_pred = pred
        current = best_clause
        removed.append(best_pred)
        cov = coverage_of(current)
    return RelaxationResult(
        original=rule,
        relaxed_clause=current,
        removed=tuple(removed),
        coverage=cov,
    )
