"""Rule and predicate redundancy reduction.

The paper cites Zhang & Deng (2015) on redundancy in rule-based knowledge
bases and favours small, intelligible rules (§3.1).  This module provides
the corresponding hygiene operations:

* :func:`simplify_clause` — drop predicates implied by the others
  (e.g. ``x < 5 AND x < 9`` -> ``x < 5``; ``c == 'a' AND c != 'b'`` ->
  ``c == 'a'``);
* :func:`remove_subsumed_rules` — drop rules whose coverage is contained in
  an earlier same-π rule's coverage (first-match semantics make them dead
  code);
* :func:`deduplicate_rules` — drop syntactically identical clauses.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Schema
from repro.data.table import Table
from repro.rules.clause import Clause, clause_satisfiable
from repro.rules.predicate import EQ, GE, GT, LE, LT, NE, Predicate
from repro.rules.rule import FeedbackRule
from repro.rules.ruleset import FeedbackRuleSet


def _numeric_implied(p: Predicate, others: list[Predicate]) -> bool:
    """Whether numeric predicate ``p`` is implied by the other constraints."""
    v = float(p.value)
    for q in others:
        w = float(q.value)
        if p.operator in (LT, LE) and q.operator in (LT, LE):
            # q: x < w (or <=) implies p: x < v when w <= v (strictness aside).
            if w < v or (w == v and (q.operator == LT or p.operator == LE)):
                return True
        elif p.operator in (GT, GE) and q.operator in (GT, GE):
            if w > v or (w == v and (q.operator == GT or p.operator == GE)):
                return True
        elif q.operator == EQ:
            # x == w pins the value; p is implied if w satisfies it.
            if {
                LT: w < v,
                LE: w <= v,
                GT: w > v,
                GE: w >= v,
                EQ: w == v,
            }[p.operator]:
                return True
    return False


def _categorical_implied(
    p: Predicate, others: list[Predicate], categories: tuple[str, ...]
) -> bool:
    """Whether categorical predicate ``p`` is implied by the others."""
    allowed = set(categories)
    for q in others:
        if q.operator == EQ:
            allowed &= {str(q.value)}
        elif q.operator == NE:
            allowed -= {str(q.value)}
    if not allowed:
        return False  # unsatisfiable context; leave as-is
    if p.operator == EQ:
        return allowed == {str(p.value)}
    return str(p.value) not in allowed  # NE implied when value already excluded


def simplify_clause(c: Clause, schema: Schema) -> Clause:
    """Remove predicates implied by the remaining ones.

    Iterates to a fixed point; the result covers exactly the same region of
    the domain as the input (implied predicates are redundant by
    definition).
    """
    preds = list(dict.fromkeys(c.predicates))  # drop exact duplicates
    changed = True
    while changed:
        changed = False
        for p in list(preds):
            others = [q for q in preds if q is not p and q.attribute == p.attribute]
            if not others:
                continue
            spec = schema[p.attribute]
            for q in others:
                q.validate(spec)
            p.validate(spec)
            implied = (
                _numeric_implied(p, others)
                if spec.is_numeric
                else _categorical_implied(p, others, spec.categories)
            )
            if implied:
                preds.remove(p)
                changed = True
    return Clause(tuple(preds))


def simplify_rule(rule: FeedbackRule, schema: Schema) -> FeedbackRule:
    """Rule with a simplified clause (π and exceptions preserved)."""
    return rule.with_clause(simplify_clause(rule.clause, schema))


def deduplicate_rules(frs: FeedbackRuleSet) -> FeedbackRuleSet:
    """Drop rules with a clause (and π) identical to an earlier rule."""
    seen: set[tuple[str, tuple[float, ...]]] = set()
    kept: list[FeedbackRule] = []
    for r in frs:
        key = (str(r.clause), r.pi)
        if key in seen:
            continue
        seen.add(key)
        kept.append(r)
    return FeedbackRuleSet(tuple(kept))


def remove_subsumed_rules(
    frs: FeedbackRuleSet, table: Table
) -> FeedbackRuleSet:
    """Drop rules whose coverage (in ``table``) is contained in the union of
    earlier rules with the same π.

    Under first-match assignment such rules never fire on ``table``; pruning
    them keeps the rule set auditable (paper §3.1's preference for few
    rules).  Empirical containment is used — pass a representative table.
    """
    kept: list[FeedbackRule] = []
    kept_masks: list[np.ndarray] = []
    for r in frs:
        mask = r.coverage_mask(table)
        union_same_pi = np.zeros(table.n_rows, dtype=bool)
        for prev, prev_mask in zip(kept, kept_masks):
            if not prev.conflicts_with(r):
                union_same_pi |= prev_mask
        if mask.any() and np.all(union_same_pi[mask]):
            continue  # fully shadowed by earlier equivalent rules
        kept.append(r)
        kept_masks.append(mask)
    return FeedbackRuleSet(tuple(kept))


def compact_rule_set(
    frs: FeedbackRuleSet, schema: Schema, table: Table | None = None
) -> FeedbackRuleSet:
    """Full hygiene pass: simplify clauses, deduplicate, drop subsumed."""
    simplified = FeedbackRuleSet(
        tuple(simplify_rule(r, schema) for r in frs)
    )
    out = deduplicate_rules(simplified)
    if table is not None:
        out = remove_subsumed_rules(out, table)
    return out
