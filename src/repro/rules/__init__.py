"""Feedback rules: predicates, clauses, rule sets, relaxation, learning."""

from repro.rules.clause import Clause, clause, clause_satisfiable, clauses_intersect
from repro.rules.learning import (
    GreedyRuleLearner,
    candidate_predicates,
    learn_model_explanation,
)
from repro.rules.parser import RuleParseError, parse_clause, parse_predicate, parse_rule
from repro.rules.perturbation import generate_feedback_pool
from repro.rules.predicate import (
    ALL_OPERATORS,
    CATEGORICAL_OPERATORS,
    NUMERIC_OPERATORS,
    Predicate,
)
from repro.rules.redundancy import (
    compact_rule_set,
    deduplicate_rules,
    remove_subsumed_rules,
    simplify_clause,
    simplify_rule,
)
from repro.rules.relaxation import RelaxationResult, relax_rule
from repro.rules.rule import FeedbackRule
from repro.rules.ruleset import FeedbackRuleSet, draw_conflict_free

__all__ = [
    "Predicate",
    "ALL_OPERATORS",
    "NUMERIC_OPERATORS",
    "CATEGORICAL_OPERATORS",
    "Clause",
    "clause",
    "clause_satisfiable",
    "clauses_intersect",
    "FeedbackRule",
    "FeedbackRuleSet",
    "draw_conflict_free",
    "RelaxationResult",
    "relax_rule",
    "GreedyRuleLearner",
    "candidate_predicates",
    "learn_model_explanation",
    "generate_feedback_pool",
    "parse_rule",
    "parse_clause",
    "parse_predicate",
    "RuleParseError",
    "simplify_clause",
    "simplify_rule",
    "deduplicate_rules",
    "remove_subsumed_rules",
    "compact_rule_set",
]
