"""Boolean rule-set learning — the BRCG (Dash et al., 2018) stand-in.

The paper obtains rule-set *explanations* of the initial model with BRCG and
perturbs them into feedback rules.  BRCG solves column generation over an
exponential candidate space; what FROTE actually needs from it is a faithful
set of conjunctive rules describing where the model predicts each class.
This module provides that via greedy set cover:

* candidate predicates are quantile thresholds on numeric attributes and
  equality tests on categorical attributes;
* per class, rules are grown greedily (best precision-coverage predicate at
  a time), then accepted and their cover removed, until the class's
  predicted instances are covered or limits are hit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.data.table import Table
from repro.rules.clause import Clause
from repro.rules.predicate import EQ, GT, LE, Predicate
from repro.rules.rule import FeedbackRule


def candidate_predicates(
    table: Table, *, n_thresholds: int = 8
) -> list[Predicate]:
    """Enumerate the candidate predicate pool for rule learning.

    Numeric attributes contribute ``<=`` and ``>`` tests at up to
    ``n_thresholds`` interior quantiles; categorical attributes contribute an
    equality test per category.
    """
    cands: list[Predicate] = []
    for spec in table.schema:
        col = table.column(spec.name)
        if spec.is_numeric:
            if col.size == 0:
                continue
            qs = np.quantile(col, np.linspace(0, 1, n_thresholds + 2)[1:-1])
            for t in np.unique(qs):
                t = float(t)
                cands.append(Predicate(spec.name, LE, t))
                cands.append(Predicate(spec.name, GT, t))
        else:
            for cat in spec.categories:
                cands.append(Predicate(spec.name, EQ, cat))
    return cands


@dataclass
class GreedyRuleLearner:
    """Greedy conjunctive rule-set learner over model predictions.

    Parameters
    ----------
    max_rules_per_class:
        Cap on accepted rules per class.
    max_conditions:
        Cap on predicates per rule (the paper favours small rules for
        intelligibility).
    min_coverage_fraction:
        A candidate conjunction must keep at least this fraction of the
        dataset covered to stay eligible.
    min_precision:
        Stop growing a conjunction once this precision is reached.
    n_thresholds:
        Numeric quantile grid resolution for candidate predicates.
    """

    max_rules_per_class: int = 5
    max_conditions: int = 3
    min_coverage_fraction: float = 0.01
    min_precision: float = 0.9
    n_thresholds: int = 8

    def learn(
        self,
        table: Table,
        y: np.ndarray,
        n_classes: int,
        *,
        classes: list[int] | None = None,
    ) -> list[FeedbackRule]:
        """Learn rules explaining labels ``y`` (typically model predictions).

        Returns rules for every class in ``classes`` (default: all),
        interleaved in class order.
        """
        y = np.asarray(y, dtype=np.int64)
        if y.shape[0] != table.n_rows:
            raise ValueError("y length does not match table")
        cands = candidate_predicates(table, n_thresholds=self.n_thresholds)
        cand_masks = np.stack([p.mask(table) for p in cands]) if cands else np.zeros((0, table.n_rows), dtype=bool)
        min_cov = max(1, int(self.min_coverage_fraction * table.n_rows))
        rules: list[FeedbackRule] = []
        for c in classes if classes is not None else range(n_classes):
            rules.extend(
                self._learn_class(table, y, c, n_classes, cands, cand_masks, min_cov)
            )
        return rules

    # ------------------------------------------------------------------ #
    def _learn_class(
        self,
        table: Table,
        y: np.ndarray,
        target: int,
        n_classes: int,
        cands: list[Predicate],
        cand_masks: np.ndarray,
        min_cov: int,
    ) -> list[FeedbackRule]:
        is_target = y == target
        residual = is_target.copy()
        out: list[FeedbackRule] = []
        while residual.sum() >= min_cov and len(out) < self.max_rules_per_class:
            preds, mask = self._grow_rule(
                is_target, residual, cands, cand_masks, min_cov
            )
            if not preds:
                break
            new_target_cover = residual & mask
            if new_target_cover.sum() < min_cov:
                break
            out.append(
                FeedbackRule.deterministic(
                    Clause(tuple(preds)),
                    target,
                    n_classes,
                    name=f"learned[{target}]#{len(out)}",
                )
            )
            residual &= ~mask
        return out

    def _grow_rule(
        self,
        is_target: np.ndarray,
        residual: np.ndarray,
        cands: list[Predicate],
        cand_masks: np.ndarray,
        min_cov: int,
    ) -> tuple[list[Predicate], np.ndarray]:
        """Grow one conjunction greedily; returns (predicates, final mask)."""
        n = is_target.size
        current = np.ones(n, dtype=bool)
        chosen: list[Predicate] = []
        used_attrs: set[tuple[str, str]] = set()
        for _ in range(self.max_conditions):
            cover = current.sum()
            prec = (is_target & current).sum() / cover if cover else 0.0
            if prec >= self.min_precision and chosen:
                break
            best_score, best_i = -np.inf, -1
            for i, p in enumerate(cands):
                key = (p.attribute, p.operator)
                if key in used_attrs and p.operator == EQ and not isinstance(p.value, str):
                    continue
                trial = current & cand_masks[i]
                cov = int(trial.sum())
                if cov < min_cov:
                    continue
                res_cov = int((trial & residual).sum())
                if res_cov == 0:
                    continue
                precision = (is_target & trial).sum() / cov
                # Precision-first score with a mild residual-recall bonus,
                # so rules stay accurate but still cover new ground.
                score = precision + 0.1 * (res_cov / max(residual.sum(), 1))
                if score > best_score:
                    best_score, best_i = score, i
            if best_i < 0:
                break
            current &= cand_masks[best_i]
            chosen.append(cands[best_i])
            used_attrs.add((cands[best_i].attribute, cands[best_i].operator))
        return chosen, current


def learn_model_explanation(
    dataset: Dataset,
    predictions: np.ndarray,
    *,
    learner: GreedyRuleLearner | None = None,
) -> list[FeedbackRule]:
    """Rule-set explanation of a model: rules over its *predicted* labels.

    This is the input the paper's feedback-rule generation pipeline starts
    from (rules describing what the model already does, to be perturbed into
    deviating feedback).
    """
    learner = learner or GreedyRuleLearner()
    return learner.learn(dataset.X, predictions, dataset.n_classes)
