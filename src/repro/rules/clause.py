"""Clauses: conjunctions of predicates, plus symbolic satisfiability.

A clause ``s`` covers ``x`` when every predicate holds (paper §3.1).  The
empty clause covers everything — rule relaxation (Algorithm 2) can delete
all conditions, at which point coverage is the whole dataset.

The symbolic machinery (:func:`clause_satisfiable`,
:func:`clauses_intersect`) decides whether a conjunction (or a pair of
clauses) can be satisfied by *any* point of the domain, which rule-conflict
detection and conflict-free rule-set drawing rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import Schema
from repro.data.table import Table
from repro.rules.predicate import EQ, GE, GT, LE, LT, NE, Predicate


@dataclass(frozen=True)
class Clause:
    """Conjunction of :class:`~repro.rules.predicate.Predicate` conditions."""

    predicates: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.predicates, tuple):
            object.__setattr__(self, "predicates", tuple(self.predicates))

    def __len__(self) -> int:
        return len(self.predicates)

    def __iter__(self):
        return iter(self.predicates)

    @property
    def attributes(self) -> tuple[str, ...]:
        """Attributes mentioned, deduplicated, in first-appearance order."""
        seen: dict[str, None] = {}
        for p in self.predicates:
            seen.setdefault(p.attribute, None)
        return tuple(seen)

    # ------------------------------------------------------------------ #
    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of covered rows; all-True for the empty clause."""
        out = np.ones(table.n_rows, dtype=bool)
        for p in self.predicates:
            out &= p.mask(table)
        return out

    def covers_row(self, table: Table, i: int) -> bool:
        """Scalar coverage check for row ``i``."""
        for p in self.predicates:
            spec = table.schema[p.attribute]
            if not p.holds_for(table.column(p.attribute)[i], spec):
                return False
        return True

    # ------------------------------------------------------------------ #
    def conjoin(self, other: "Clause") -> "Clause":
        """Conjunction of two clauses (their predicate union)."""
        return Clause(self.predicates + other.predicates)

    def without(self, predicate: Predicate) -> "Clause":
        """Clause with the first occurrence of ``predicate`` removed."""
        preds = list(self.predicates)
        preds.remove(predicate)
        return Clause(tuple(preds))

    def predicates_on(self, attribute: str) -> tuple[Predicate, ...]:
        return tuple(p for p in self.predicates if p.attribute == attribute)

    def __str__(self) -> str:
        if not self.predicates:
            return "TRUE"
        return " AND ".join(str(p) for p in self.predicates)


def clause(*predicates: Predicate) -> Clause:
    """Convenience constructor: ``clause(p1, p2, ...)``."""
    return Clause(tuple(predicates))


# ---------------------------------------------------------------------- #
# Symbolic satisfiability
# ---------------------------------------------------------------------- #
def _numeric_feasible(preds: tuple[Predicate, ...]) -> bool:
    """Whether a set of numeric constraints on one attribute has a solution."""
    lo, lo_strict = -np.inf, False
    hi, hi_strict = np.inf, False
    eqs: set[float] = set()
    for p in preds:
        v = float(p.value)
        if p.operator == EQ:
            eqs.add(v)
        elif p.operator in (GT, GE):
            strict = p.operator == GT
            if v > lo or (v == lo and strict and not lo_strict):
                lo, lo_strict = v, strict
        elif p.operator in (LT, LE):
            strict = p.operator == LT
            if v < hi or (v == hi and strict and not hi_strict):
                hi, hi_strict = v, strict
    if len(eqs) > 1:
        return False
    if eqs:
        (v,) = eqs
        ok_lo = v > lo if lo_strict else v >= lo
        ok_hi = v < hi if hi_strict else v <= hi
        return ok_lo and ok_hi
    if lo > hi:
        return False
    if lo == hi and (lo_strict or hi_strict):
        return False
    return True


def _categorical_feasible(preds: tuple[Predicate, ...], categories: tuple[str, ...]) -> bool:
    """Whether categorical constraints on one attribute have a solution."""
    allowed = set(categories)
    for p in preds:
        v = str(p.value)
        if p.operator == EQ:
            allowed &= {v}
        elif p.operator == NE:
            allowed -= {v}
    return bool(allowed)


def clause_satisfiable(c: Clause, schema: Schema) -> bool:
    """True if some point of the domain satisfies every predicate of ``c``."""
    for attr in c.attributes:
        spec = schema[attr]
        preds = c.predicates_on(attr)
        for p in preds:
            p.validate(spec)
        if spec.is_numeric:
            if not _numeric_feasible(preds):
                return False
        else:
            if not _categorical_feasible(preds, spec.categories):
                return False
    return True


def clauses_intersect(a: Clause, b: Clause, schema: Schema) -> bool:
    """True if ``cov(a) ∩ cov(b) != ∅`` over the whole domain.

    This is the conflict test of paper §3.1 applied to clauses: the
    conjunction of the two clauses is satisfiable iff their coverages
    intersect.
    """
    return clause_satisfiable(a.conjoin(b), schema)
