"""Feedback-rule generation by perturbing learned rules (paper §5.1).

The paper simulates users whose feedback deviates from the model: rules
extracted from the model's explanation are perturbed with three operations —

1. reverse the operator of a randomly selected predicate;
2. replace the value of the selected predicate (categorical: another
   category; numeric: uniform within the attribute's observed range);
3. add a random condition taken from another rule —

and a perturbed rule is kept only if its coverage satisfies
``0.05 <= |cov(s, D)| / |D| < 0.25``.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.rules.clause import Clause, clause_satisfiable
from repro.rules.predicate import Predicate
from repro.rules.rule import FeedbackRule
from repro.utils.rng import RandomState, check_random_state

DEFAULT_COVERAGE_RANGE = (0.05, 0.25)


def _perturb_once(
    rule: FeedbackRule,
    dataset: Dataset,
    other_rules: list[FeedbackRule],
    rng: np.random.Generator,
) -> FeedbackRule | None:
    """Apply one randomly chosen perturbation; None if inapplicable."""
    preds = list(rule.clause.predicates)
    if not preds:
        return None
    op = int(rng.integers(0, 3))
    if op == 0:
        # 1. Reverse the operator of a random predicate.
        i = int(rng.integers(len(preds)))
        preds[i] = preds[i].reversed_operator()
    elif op == 1:
        # 2. Replace the value of a random predicate.
        i = int(rng.integers(len(preds)))
        p = preds[i]
        spec = dataset.X.schema[p.attribute]
        if spec.is_categorical:
            others = [c for c in spec.categories if c != p.value]
            if not others:
                return None
            preds[i] = p.with_value(str(rng.choice(others)))
        else:
            col = dataset.X.column(p.attribute)
            if col.size == 0:
                return None
            lo, hi = float(col.min()), float(col.max())
            preds[i] = p.with_value(float(rng.uniform(lo, hi)))
    else:
        # 3. Add a condition drawn from another rule.
        donor_preds = [
            p
            for r in other_rules
            if r is not rule
            for p in r.clause.predicates
            if p.attribute not in {q.attribute for q in preds}
        ]
        if not donor_preds:
            return None
        preds.append(donor_preds[int(rng.integers(len(donor_preds)))])
    new_clause = Clause(tuple(preds))
    if not clause_satisfiable(new_clause, dataset.X.schema):
        return None
    return rule.with_clause(new_clause)


def generate_feedback_pool(
    dataset: Dataset,
    base_rules: list[FeedbackRule],
    *,
    n_rules: int = 100,
    coverage_range: tuple[float, float] = DEFAULT_COVERAGE_RANGE,
    max_perturbations: int = 3,
    random_state: RandomState = None,
    max_attempts: int = 20000,
) -> list[FeedbackRule]:
    """Generate the pool of candidate feedback rules for experiments.

    Repeatedly perturbs random base rules (1 to ``max_perturbations``
    operations per candidate) and keeps candidates whose coverage fraction
    falls inside ``coverage_range``.  Duplicate clauses are rejected.

    Returns at most ``n_rules`` rules; fewer if ``max_attempts`` is
    exhausted (callers decide whether that is an error).
    """
    if not base_rules:
        raise ValueError("need at least one base rule to perturb")
    lo, hi = coverage_range
    if not 0 <= lo < hi <= 1:
        raise ValueError(f"invalid coverage_range {coverage_range}")
    rng = check_random_state(random_state)
    n = dataset.n
    pool: list[FeedbackRule] = []
    seen: set[str] = {str(r.clause) for r in base_rules}
    attempts = 0
    while len(pool) < n_rules and attempts < max_attempts:
        attempts += 1
        rule = base_rules[int(rng.integers(len(base_rules)))]
        n_ops = int(rng.integers(1, max_perturbations + 1))
        cand: FeedbackRule | None = rule
        for _ in range(n_ops):
            cand = _perturb_once(cand, dataset, base_rules, rng)
            if cand is None:
                break
        if cand is None:
            continue
        key = str(cand.clause)
        if key in seen:
            continue
        cov = cand.coverage_count(dataset.X)
        if not (lo * n <= cov < hi * n):
            continue
        seen.add(key)
        pool.append(
            FeedbackRule(
                cand.clause,
                cand.pi,
                exceptions=cand.exceptions,
                name=f"fb#{len(pool)}",
            )
        )
    return pool
