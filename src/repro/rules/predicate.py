"""Predicates: the atomic (attribute, operator, value) conditions of rules.

Paper §3.1: operators for categorical attributes are ``{=, !=}`` and for
numeric attributes ``{=, >, >=, <, <=}``.  A predicate evaluates vectorized
against a :class:`~repro.data.table.Table` column.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import ColumnSpec
from repro.data.table import Table

EQ, NE, GT, GE, LT, LE = "==", "!=", ">", ">=", "<", "<="
NUMERIC_OPERATORS = frozenset({EQ, GT, GE, LT, LE})
CATEGORICAL_OPERATORS = frozenset({EQ, NE})
ALL_OPERATORS = NUMERIC_OPERATORS | CATEGORICAL_OPERATORS

# Operator reversal used by the paper's feedback-rule perturbation: != <-> ==
# for categoricals; <= <-> >= and < <-> > for numerics.
REVERSED_OPERATOR = {EQ: NE, NE: EQ, LE: GE, GE: LE, LT: GT, GT: LT}


@dataclass(frozen=True)
class Predicate:
    """A single condition, e.g. ``age < 29`` or ``marital != 'single'``.

    ``value`` is a float for numeric attributes and a category string for
    categorical attributes.  Validation against the schema happens at
    evaluation time (predicates are schema-agnostic values until then).
    """

    attribute: str
    operator: str
    value: float | str

    def __post_init__(self) -> None:
        if self.operator not in ALL_OPERATORS:
            raise ValueError(
                f"unknown operator {self.operator!r}; allowed: {sorted(ALL_OPERATORS)}"
            )

    # ------------------------------------------------------------------ #
    def validate(self, spec: ColumnSpec) -> None:
        """Raise if this predicate is ill-typed for column ``spec``."""
        if spec.name != self.attribute:
            raise ValueError(
                f"predicate on {self.attribute!r} validated against column {spec.name!r}"
            )
        if spec.is_numeric:
            if self.operator not in NUMERIC_OPERATORS:
                raise ValueError(
                    f"operator {self.operator!r} not allowed for numeric "
                    f"attribute {self.attribute!r}"
                )
            if isinstance(self.value, str):
                raise TypeError(
                    f"numeric predicate on {self.attribute!r} has string value "
                    f"{self.value!r}"
                )
        else:
            if self.operator not in CATEGORICAL_OPERATORS:
                raise ValueError(
                    f"operator {self.operator!r} not allowed for categorical "
                    f"attribute {self.attribute!r}"
                )
            if not isinstance(self.value, str):
                raise TypeError(
                    f"categorical predicate on {self.attribute!r} needs a string "
                    f"value, got {type(self.value).__name__}"
                )
            if self.value not in spec.categories:
                raise ValueError(
                    f"value {self.value!r} not in categories of {self.attribute!r}"
                )

    # ------------------------------------------------------------------ #
    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of rows satisfying this predicate."""
        spec = table.schema[self.attribute]
        self.validate(spec)
        col = table.column(self.attribute)
        if spec.is_numeric:
            v = float(self.value)
            if self.operator == EQ:
                return col == v
            if self.operator == GT:
                return col > v
            if self.operator == GE:
                return col >= v
            if self.operator == LT:
                return col < v
            return col <= v  # LE
        code = spec.code_of(str(self.value))
        return (col == code) if self.operator == EQ else (col != code)

    def holds_for(self, value: float | int, spec: ColumnSpec) -> bool:
        """Scalar check against a raw stored value (code for categoricals)."""
        self.validate(spec)
        if spec.is_numeric:
            v = float(self.value)
            x = float(value)
            return {
                EQ: x == v,
                GT: x > v,
                GE: x >= v,
                LT: x < v,
                LE: x <= v,
            }[self.operator]
        code = spec.code_of(str(self.value))
        return (int(value) == code) if self.operator == EQ else (int(value) != code)

    # ------------------------------------------------------------------ #
    def reversed_operator(self) -> "Predicate":
        """Predicate with the operator flipped (perturbation op 1)."""
        return Predicate(self.attribute, REVERSED_OPERATOR[self.operator], self.value)

    def with_value(self, value: float | str) -> "Predicate":
        """Predicate with the value replaced (perturbation op 2)."""
        return Predicate(self.attribute, self.operator, value)

    def __str__(self) -> str:
        v = f"'{self.value}'" if isinstance(self.value, str) else f"{self.value:g}"
        op = "=" if self.operator == EQ else self.operator
        return f"{self.attribute} {op} {v}"
