"""Feedback rules: IF clause THEN label ~ π (paper §3.1).

A :class:`FeedbackRule` pairs a clause with a label distribution π over the
classes.  The deterministic case (π a Kronecker delta) is the common one; the
probabilistic form expresses uncertainty in the expert's feedback (paper
Table 6) and conflict-resolution mixtures.

Rules may also carry *exception clauses*: conflict resolution option 1
("s1 AND NOT s2") is represented by attaching s2 as an exception to the rule
with clause s1, keeping clauses pure conjunctions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.table import Table
from repro.rules.clause import Clause


@dataclass(frozen=True)
class FeedbackRule:
    """IF ``clause`` (and no ``exception``) THEN ``Y ~ pi``.

    Parameters
    ----------
    clause:
        The rule's conjunction ``s``.
    pi:
        Label distribution over class codes; must sum to 1.
    exceptions:
        Clauses carved out of the coverage (conflict resolution).
    name:
        Optional identifier used in reports.
    """

    clause: Clause
    pi: tuple[float, ...]
    exceptions: tuple[Clause, ...] = ()
    name: str = ""
    _pi_array: np.ndarray = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        arr = np.asarray(self.pi, dtype=np.float64)
        if arr.ndim != 1 or arr.size < 2:
            raise ValueError(f"pi must be a distribution over >= 2 classes, got {self.pi}")
        if np.any(arr < -1e-12):
            raise ValueError(f"pi has negative entries: {self.pi}")
        if not np.isclose(arr.sum(), 1.0, atol=1e-8):
            raise ValueError(f"pi must sum to 1, got sum={arr.sum()}")
        object.__setattr__(self, "pi", tuple(float(v) for v in arr))
        object.__setattr__(self, "_pi_array", arr)

    # ------------------------------------------------------------------ #
    @classmethod
    def deterministic(
        cls,
        clause: Clause,
        target_class: int,
        n_classes: int,
        *,
        exceptions: tuple[Clause, ...] = (),
        name: str = "",
    ) -> "FeedbackRule":
        """Rule whose π is the Kronecker delta at ``target_class``."""
        if not 0 <= target_class < n_classes:
            raise ValueError(
                f"target_class {target_class} out of range for {n_classes} classes"
            )
        pi = tuple(1.0 if c == target_class else 0.0 for c in range(n_classes))
        return cls(clause, pi, exceptions=exceptions, name=name)

    # ------------------------------------------------------------------ #
    @property
    def n_classes(self) -> int:
        return len(self.pi)

    @property
    def is_deterministic(self) -> bool:
        return bool(np.any(self._pi_array == 1.0))

    @property
    def target_class(self) -> int:
        """Most probable class under π (the class for deterministic rules)."""
        return int(np.argmax(self._pi_array))

    def pi_array(self) -> np.ndarray:
        """π as a read-only ndarray."""
        out = self._pi_array.view()
        out.flags.writeable = False
        return out

    # ------------------------------------------------------------------ #
    def coverage_mask(self, table: Table) -> np.ndarray:
        """Rows covered by the clause and by no exception clause.

        Sharded tables are evaluated in shard-aligned row blocks (each
        block reads one shard per column, zero-copy) instead of
        materializing whole columns; predicate masks are elementwise, so
        the blocked result is bit-identical to the dense one.
        """
        if getattr(table, "shard_rows", None) is not None:
            from repro.data.shards import row_block_spans

            out = np.empty(table.n_rows, dtype=bool)
            for start, stop in row_block_spans(table, advise_cold=True):
                out[start:stop] = self.coverage_mask(table.row_slice(start, stop))
            return out
        mask = self.clause.mask(table)
        for exc in self.exceptions:
            mask &= ~exc.mask(table)
        return mask

    def coverage_count(self, table: Table) -> int:
        return int(self.coverage_mask(table).sum())

    def sample_labels(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` labels from π (constant for deterministic rules)."""
        if self.is_deterministic:
            return np.full(n, self.target_class, dtype=np.int64)
        return rng.choice(self.n_classes, size=n, p=self._pi_array).astype(np.int64)

    # ------------------------------------------------------------------ #
    def with_clause(self, clause: Clause) -> "FeedbackRule":
        return FeedbackRule(clause, self.pi, exceptions=self.exceptions, name=self.name)

    def with_exception(self, exception: Clause) -> "FeedbackRule":
        return FeedbackRule(
            self.clause, self.pi, exceptions=self.exceptions + (exception,), name=self.name
        )

    def conflicts_with(self, other: "FeedbackRule") -> bool:
        """π-inequality part of the conflict test (coverage check is separate)."""
        return not np.allclose(self._pi_array, other._pi_array, atol=1e-9)

    def __str__(self) -> str:
        if self.is_deterministic:
            then = f"class={self.target_class}"
        else:
            then = "pi=[" + ", ".join(f"{p:.2f}" for p in self.pi) + "]"
        base = f"IF {self.clause} THEN {then}"
        if self.exceptions:
            base += " EXCEPT " + " | ".join(f"({e})" for e in self.exceptions)
        return base
