"""Feedback rule sets: coverage, conflict detection, and resolution.

Paper §3.1: two rules conflict when their coverages intersect and their label
distributions differ.  The FRS handed to FROTE must be conflict-free; this
module implements the paper's resolution options:

1. *Carve out the intersection*: ``s1 -> s1 AND NOT s2`` (via rule
   exceptions) and vice versa.
2. *Mixture rule for the intersection*: a new rule on ``s1 AND s2`` with a
   weighted mixture of the two distributions, excluded from both originals.

Overlapping rules that agree (same π) are left intact; per-instance rule
assignment resolves the overlap by first-match order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.data.schema import Schema
from repro.data.table import Table
from repro.rules.clause import Clause, clauses_intersect
from repro.rules.rule import FeedbackRule


def _exception_blocks_intersection(a: FeedbackRule, b: FeedbackRule) -> bool:
    """True when an exception clause provably empties ``cov(a) ∩ cov(b)``.

    The intersection region satisfies every predicate of ``a.clause`` and
    ``b.clause``; if some exception's predicates are a (syntactic) subset of
    that combined set, every intersection point triggers the exception and
    the carved coverages cannot overlap.  This is exactly the certificate
    produced by carve-style conflict resolution (the exception *is* the
    other rule's clause).
    """
    combined = set(a.clause.predicates) | set(b.clause.predicates)
    for rule in (a, b):
        for exc in rule.exceptions:
            if set(exc.predicates) <= combined:
                return True
    return False


@dataclass(frozen=True)
class FeedbackRuleSet:
    """An ordered, immutable collection of feedback rules."""

    rules: tuple[FeedbackRule, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.rules, tuple):
            object.__setattr__(self, "rules", tuple(self.rules))
        if self.rules:
            n0 = self.rules[0].n_classes
            for r in self.rules[1:]:
                if r.n_classes != n0:
                    raise ValueError(
                        "all rules in a set must share the same number of classes"
                    )

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[FeedbackRule]:
        return iter(self.rules)

    def __getitem__(self, i: int) -> FeedbackRule:
        return self.rules[i]

    @property
    def n_classes(self) -> int:
        if not self.rules:
            raise ValueError("empty rule set has no class count")
        return self.rules[0].n_classes

    # ------------------------------------------------------------------ #
    def coverage_mask(self, table: Table) -> np.ndarray:
        """Union coverage ``cov(F, D)`` (paper Eq. 2).

        Like every whole-table pass here, sharded tables are walked in
        shard-aligned row blocks (one dense sub-table per block serves all
        rules) — bit-identical to the dense pass, O(block) transient heap.
        """
        spans = self._blocked_spans(table)
        if spans is not None:
            out = np.empty(table.n_rows, dtype=bool)
            for start, stop in spans:
                out[start:stop] = self.coverage_mask(table.row_slice(start, stop))
            return out
        out = np.zeros(table.n_rows, dtype=bool)
        for r in self.rules:
            out |= r.coverage_mask(table)
        return out

    def coverage_masks(self, table: Table) -> np.ndarray:
        """Stacked per-rule masks, shape ``(n_rules, n_rows)``."""
        if not self.rules:
            return np.zeros((0, table.n_rows), dtype=bool)
        spans = self._blocked_spans(table)
        if spans is not None:
            out = np.empty((len(self.rules), table.n_rows), dtype=bool)
            for start, stop in spans:
                out[:, start:stop] = self.coverage_masks(table.row_slice(start, stop))
            return out
        return np.stack([r.coverage_mask(table) for r in self.rules])

    def assign(self, table: Table) -> np.ndarray:
        """Per-row index of the first covering rule, or -1 if uncovered.

        After conflict resolution, overlapping rules share the same π, so
        first-match assignment does not change the objective.
        """
        spans = self._blocked_spans(table)
        if spans is not None:
            out = np.empty(table.n_rows, dtype=np.int64)
            for start, stop in spans:
                out[start:stop] = self.assign(table.row_slice(start, stop))
            return out
        out = np.full(table.n_rows, -1, dtype=np.int64)
        for i in range(len(self.rules) - 1, -1, -1):
            out[self.rules[i].coverage_mask(table)] = i
        return out

    @staticmethod
    def _blocked_spans(table: Table):
        """Shard-aligned spans for a sharded table, ``None`` for dense.

        Each yielded span also drops the spilled pages the *previous*
        block faulted in (``advise_cold``), so a sequential whole-table
        pass never accumulates the spilled set in the process RSS.
        """
        if getattr(table, "shard_rows", None) is None:
            return None
        from repro.data.shards import row_block_spans

        return row_block_spans(table, advise_cold=True)

    # ------------------------------------------------------------------ #
    def find_conflicts(
        self, schema: Schema, *, table: Table | None = None
    ) -> list[tuple[int, int]]:
        """Pairs of conflicting rule indices.

        Intersection is decided symbolically over the domain via
        :func:`~repro.rules.clause.clauses_intersect`, or empirically over
        ``table`` when one is given (a shared covered row is an intersection
        witness regardless of exceptions).
        """
        conflicts: list[tuple[int, int]] = []
        masks = self.coverage_masks(table) if table is not None else None
        for i in range(len(self.rules)):
            for j in range(i + 1, len(self.rules)):
                ri, rj = self.rules[i], self.rules[j]
                if not ri.conflicts_with(rj):
                    continue
                if masks is not None:
                    intersect = bool(np.any(masks[i] & masks[j]))
                else:
                    intersect = clauses_intersect(
                        ri.clause, rj.clause, schema
                    ) and not _exception_blocks_intersection(ri, rj)
                if intersect:
                    conflicts.append((i, j))
        return conflicts

    def is_conflict_free(self, schema: Schema, *, table: Table | None = None) -> bool:
        return not self.find_conflicts(schema, table=table)

    # ------------------------------------------------------------------ #
    def resolve_conflicts(
        self,
        schema: Schema,
        *,
        strategy: str = "carve",
        mixture_weight: float = 0.5,
    ) -> "FeedbackRuleSet":
        """Return a conflict-free rule set (paper's resolution options 1/2).

        ``strategy="carve"`` removes the intersection from both rules (the
        earlier rule keeps priority via the later rule's exception).
        ``strategy="mixture"`` additionally adds a new rule on the
        intersection with π = w·π1 + (1-w)·π2.
        """
        if strategy not in ("carve", "mixture"):
            raise ValueError(f"strategy must be 'carve' or 'mixture', got {strategy!r}")
        rules = list(self.rules)
        new_rules: list[FeedbackRule] = []
        for i in range(len(rules)):
            for j in range(i + 1, len(rules)):
                ri, rj = rules[i], rules[j]
                if not ri.conflicts_with(rj):
                    continue
                if not clauses_intersect(ri.clause, rj.clause, schema):
                    continue
                if strategy == "mixture":
                    pi_i = np.asarray(ri.pi)
                    pi_j = np.asarray(rj.pi)
                    mix = mixture_weight * pi_i + (1.0 - mixture_weight) * pi_j
                    new_rules.append(
                        FeedbackRule(
                            ri.clause.conjoin(rj.clause),
                            tuple(mix),
                            name=f"mix({ri.name or i},{rj.name or j})",
                        )
                    )
                rules[i] = rules[i].with_exception(rj.clause)
                rules[j] = rules[j].with_exception(ri.clause)
        return FeedbackRuleSet(tuple(rules + new_rules))


def draw_conflict_free(
    pool: Iterable[FeedbackRule],
    size: int,
    schema: Schema,
    rng: np.random.Generator,
    *,
    max_attempts: int = 500,
) -> FeedbackRuleSet | None:
    """Randomly draw ``size`` mutually conflict-free rules from ``pool``.

    Mirrors the paper's experimental protocol: rule sets are drawn from the
    perturbed-rule pool and redrawn until conflict-free; returns ``None``
    when no conflict-free set of the requested size is found (the paper
    reports this happening for |F| ∈ {15, 20} on some datasets).
    """
    pool = list(pool)
    if size > len(pool):
        return None
    for _ in range(max_attempts):
        idx = rng.choice(len(pool), size=size, replace=False)
        frs = FeedbackRuleSet(tuple(pool[i] for i in idx))
        if frs.is_conflict_free(schema):
            return frs
    # Greedy fallback: grow a compatible set from a random order.
    order = rng.permutation(len(pool))
    chosen: list[FeedbackRule] = []
    for i in order:
        cand = pool[i]
        trial = FeedbackRuleSet(tuple(chosen + [cand]))
        if trial.is_conflict_free(schema):
            chosen.append(cand)
            if len(chosen) == size:
                return FeedbackRuleSet(tuple(chosen))
    return None
