"""Async multi-tenant edit service: many sessions, one process.

:class:`EditService` turns :class:`~repro.engine.session.EditSession`
from a library object into a served workload::

    service = EditService(memory_budget_mb=256.0, policy="weighted-priority")
    handle = service.submit(session, name="tenant-a", priority=2.0)
    async for event in handle.events():
        print(event.iteration, event.kind)
    result = await handle.result()

Execution is *quantum*-granular: one quantum is one engine
``initialize`` (setup stages), one loop ``step``, or one ``finalize``.
Every quantum runs in a worker thread via :func:`asyncio.to_thread`
(the engine is numpy-bound, so the event loop stays responsive), and
the :class:`~repro.serve.scheduler.SessionScheduler` decides which
runnable session gets each free slot.  Between quanta a session holds
no locks and no thread, which is what makes cancellation and timeouts
cooperative and cheap.

**Parity contract.**  A served session calls exactly the same engine
entry points, in the same order, on the same state as
``EditSession.run()`` — ``initialize``, ``step`` until ``state.done``,
``finalize`` — and all randomness lives in per-session state.  Served
results are therefore bit-identical to serial ones, regardless of how
many sessions interleave; ``tests/serve/test_serve_parity.py`` pins
this.
"""

from __future__ import annotations

import asyncio
import copy
import itertools
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, AsyncIterator

from repro.core.options import ServeOptions
from repro.engine.session import EditSession
from repro.engine.state import FroteResult, ProgressEvent
from repro.feedback.sources import QueueFeedbackSource, coerce_event
from repro.serve.admission import AdmissionController, MemoryGrant, MemoryPool
from repro.serve.scheduler import SchedulingPolicy, SessionScheduler, SessionTicket

__all__ = [
    "EditService",
    "SessionHandle",
    "SessionView",
    "SessionCancelled",
    "ServeError",
]

#: Session lifecycle states (terminal: ``done`` / ``failed`` / ``cancelled``).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
_TERMINAL = frozenset({DONE, FAILED, CANCELLED})

#: Quantum kinds returned by the internal advance step.
_SETUP = "setup"
_STEP = "step"
_FINALIZE = "finalize"


class ServeError(RuntimeError):
    """Misuse of the serving API (double-drive, stepping a finished session)."""


class SessionCancelled(ServeError):
    """Raised from ``result()``/``step()`` when a session was cancelled.

    Attributes
    ----------
    name:
        The session's service-unique name.
    reason:
        Why it was cancelled (``"timeout"``, caller-supplied reason, ...).
    """

    def __init__(self, name: str, reason: str) -> None:
        super().__init__(f"session {name!r} cancelled: {reason}")
        self.name = name
        self.reason = reason


class _TimedOut(Exception):
    """Internal: the session's deadline passed while waiting for a slot."""


@dataclass(frozen=True)
class SessionView:
    """Immutable point-in-time snapshot of a served session.

    Published at quantum boundaries only (never mid-step), so every
    field is internally consistent.

    Attributes
    ----------
    name:
        Service-unique session name.
    status:
        One of ``queued`` / ``running`` / ``done`` / ``failed`` /
        ``cancelled``.
    iteration:
        Engine loop iterations completed so far.
    n_added:
        Synthetic rows accepted into the dataset so far.
    best_loss:
        Best objective value seen (``inf`` before setup).
    quanta_done:
        Scheduler quanta completed (setup + steps + finalize).
    steps_done:
        Loop-step quanta completed (what latency metrics count).
    events_dropped:
        Progress events discarded because the session's bounded event
        queue overflowed (drop-oldest).
    priority:
        Scheduling priority as submitted.
    budget_mb:
        Per-session resident budget carved from the service pool
        (``None`` when the service has no memory pool).
    cancel_reason:
        Why the session was cancelled, if it was.
    """

    name: str
    status: str
    iteration: int = 0
    n_added: int = 0
    best_loss: float = float("inf")
    quanta_done: int = 0
    steps_done: int = 0
    events_dropped: int = 0
    priority: float = 1.0
    budget_mb: float | None = None
    cancel_reason: str | None = None


class SessionHandle:
    """Client-side handle for one served session.

    Obtained from :meth:`EditService.submit`; never constructed
    directly.  A handle supports two mutually compatible driving modes:

    * ``await handle.run_to_completion()`` — the service drives the
      session to the end (idempotent; subsequent calls await the same
      result), or
    * ``await handle.step()`` — the caller advances one quantum at a
      time, inspecting between quanta.

    Either way :meth:`events` streams the session's
    :class:`~repro.engine.state.ProgressEvent` s and :meth:`result`
    awaits the final :class:`~repro.engine.state.FroteResult`.
    """

    def __init__(
        self,
        service: "EditService",
        spec: EditSession,
        *,
        name: str,
        priority: float,
        timeout: float | None,
        required_mb: float,
        admission_future: "asyncio.Future[MemoryGrant]",
    ) -> None:
        self._service = service
        self._spec = spec
        self.name = name
        self.priority = priority
        self._required_mb = required_mb
        self._ticket = service.scheduler.register(
            SessionTicket(name=name, priority=priority)
        )
        self._loop = asyncio.get_running_loop()
        self._deadline = (
            None if timeout is None else self._loop.time() + timeout
        )
        self._admission_future = admission_future
        self._grant: MemoryGrant | None = None

        self.status = QUEUED
        self._state: Any = None
        self._engine: Any = None
        self._result_value: FroteResult | None = None
        self._in_advance = False
        self._driver: asyncio.Task | None = None
        self._stepping = False
        self._cancel_reason: str | None = None
        self._result_future: asyncio.Future = self._loop.create_future()
        # Failed sessions nobody awaits must not warn at GC time.
        self._result_future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )

        # Live feedback: feed(...) stages events on the loop thread; they
        # are flushed into the queue source at the next quantum boundary
        # (never mid-quantum), where the engine's feedback stage drains
        # them.  Attached before the state is built so the engine chain
        # includes the feedback stage from the start.
        self._feed_source = QueueFeedbackSource(name=f"feed:{name}")
        self._feed_buffer: list[Any] = []
        spec.with_feedback(self._feed_source)

        self._journal: Any = None
        self._events: deque[ProgressEvent] = deque()
        self._events_dropped = 0
        self._event_signal = asyncio.Event()
        self._view = SessionView(
            name=name, status=QUEUED, priority=priority,
            budget_mb=required_mb if service.pool is not None else None,
        )

    # ------------------------------------------------------------------ #
    # Introspection.
    @property
    def done(self) -> bool:
        """Whether the session reached a terminal state."""
        return self.status in _TERMINAL

    def inspect(self) -> SessionView:
        """Return the latest quantum-boundary :class:`SessionView`."""
        return self._view

    def _publish_view(self) -> None:
        state = self._state
        self._view = SessionView(
            name=self.name,
            status=self.status,
            iteration=0 if state is None else state.iteration,
            n_added=0 if state is None else state.n_added,
            best_loss=float("inf") if state is None else state.best_loss,
            quanta_done=self._ticket.quanta_done,
            steps_done=self._ticket.steps_done,
            events_dropped=self._events_dropped,
            priority=self.priority,
            budget_mb=(
                self._required_mb if self._service.pool is not None else None
            ),
            cancel_reason=self._cancel_reason,
        )

    # ------------------------------------------------------------------ #
    # Event streaming.
    def _thread_listener(self, event: ProgressEvent) -> None:
        """Forward an engine event from the worker thread to the loop."""
        try:
            self._loop.call_soon_threadsafe(self._publish_event, event)
        except RuntimeError:  # loop already closed (service torn down)
            pass

    def _publish_event(self, event: ProgressEvent) -> None:
        if len(self._events) >= self._service.event_queue_size:
            self._events.popleft()
            self._events_dropped += 1
        self._events.append(event)
        self._event_signal.set()

    async def events(self) -> AsyncIterator[ProgressEvent]:
        """Stream the session's progress events as they happen.

        Yields
        ------
        ProgressEvent
            Engine events (``started`` / ``accepted`` / ``rejected`` /
            ``empty-batch`` / ``finished``) in order.  The queue is
            bounded (``EditService(event_queue_size=...)``); a slow
            consumer loses the *oldest* events, counted in
            :attr:`SessionView.events_dropped`.  The iterator ends once
            the session is terminal and the queue is drained.
        """
        while True:
            while self._events:
                yield self._events.popleft()
            if self.done:
                return
            self._event_signal.clear()
            await self._event_signal.wait()

    # ------------------------------------------------------------------ #
    # Live feedback injection.
    def feed(self, *items: Any, source: str = "client") -> int:
        """Inject feedback into the running session.

        Accepts :class:`~repro.feedback.sources.RuleProposal` /
        :class:`~repro.feedback.sources.RuleVerdict` events, bare
        :class:`~repro.rules.rule.FeedbackRule` objects, rule strings
        (parsed against the session dataset's schema), and — since the
        schema-evolution arc — :class:`~repro.data.evolution.SchemaDelta`
        / :class:`~repro.data.evolution.Migration` objects, which migrate
        the live session's feature space at the next iteration boundary.
        A rule string referencing a column that has not landed yet is
        deferred (parked) rather than rejected, and applies once its
        migration arrives.  Items are staged immediately but only become
        visible to the engine at the next quantum boundary — never
        mid-quantum — so served runs keep the same boundary-granular
        determinism as ``EditSession`` feedback, and the applied deltas
        land in the session's journal like any other feedback.

        Parameters
        ----------
        items:
            Events, rules, or rule strings to stage.
        source:
            Attributed source name for events that don't carry one.

        Returns
        -------
        int
            Number of events staged.

        Raises
        ------
        ServeError
            If the session already reached a terminal state.
        """
        if self.done:
            raise ServeError(
                f"cannot feed session {self.name!r}: already {self.status}"
            )
        events = []
        for item in items:
            if isinstance(item, str):
                from repro.feedback.sources import parse_rule_or_defer

                dataset = self._spec.dataset
                item = parse_rule_or_defer(
                    item, dataset.X.schema, dataset.label_names
                )
            events.append(coerce_event(item, source=source))
        self._feed_buffer.extend(events)
        self._service._journal_event(
            "feedback-staged",
            {"name": self.name, "source": source, "count": len(events)},
        )
        return len(events)

    def _flush_feed(self) -> None:
        """Move staged feedback into the queue source (loop thread, at a
        quantum boundary — the engine is guaranteed not to be polling)."""
        if not self._feed_buffer:
            return
        staged, self._feed_buffer = self._feed_buffer, []
        self._feed_source.push(*staged)
        self._service._journal_event(
            "feedback-flushed", {"name": self.name, "count": len(staged)}
        )

    # ------------------------------------------------------------------ #
    # The quantum.
    def _advance(self) -> str:
        """Run one engine quantum (worker thread). Returns the kind."""
        if self._state is None:
            state = self._spec.build_state()
            state.listeners.append(self._thread_listener)
            journal_path = self._service._session_journal_path(
                self.name, state.config
            )
            if journal_path is not None:
                from repro.journal.writer import SessionJournal

                self._journal = SessionJournal(
                    journal_path, meta={"name": self.name}
                )
                # Attached after the forwarding listener so clients see
                # each event before it is made durable.
                self._journal.attach(state)
            engine = self._spec.build_engine()
            engine.initialize(state)
            self._state = state
            self._engine = engine
            return _SETUP
        if not self._state.done:
            self._engine.step(self._state)
            return _STEP
        self._result_value = self._engine.finalize(self._state)
        return _FINALIZE

    def _remaining(self) -> float | None:
        if self._deadline is None:
            return None
        return self._deadline - self._loop.time()

    async def _acquire_turn(self) -> None:
        """Wait for admission, then for a scheduler slot (deadline-aware)."""
        remaining = self._remaining()
        if remaining is not None and remaining <= 0:
            raise _TimedOut
        if self._grant is None:
            try:
                self._grant = await asyncio.wait_for(
                    asyncio.shield(self._admission_future), remaining
                )
            except asyncio.TimeoutError:
                raise _TimedOut from None
            remaining = self._remaining()
            if remaining is not None and remaining <= 0:
                raise _TimedOut
        try:
            await asyncio.wait_for(
                self._service.scheduler.acquire(self._ticket), remaining
            )
        except asyncio.TimeoutError:
            raise _TimedOut from None

    async def _quantum(self) -> str:
        """Acquire a slot, run one quantum off-loop, publish the view."""
        await self._acquire_turn()
        if self.status == QUEUED:
            self.status = RUNNING
        self._flush_feed()
        self._in_advance = True
        started = time.perf_counter()
        try:
            kind = await asyncio.to_thread(self._advance)
        finally:
            self._in_advance = False
            self._service.scheduler.release(self._ticket)
        elapsed = time.perf_counter() - started
        if kind == _STEP:
            self._ticket.steps_done += 1
            self._service._step_latencies.append(elapsed)
        self._service._journal_event(
            "quantum",
            {
                "name": self.name,
                "kind": kind,
                "seconds": elapsed,
                "iteration": 0 if self._state is None else self._state.iteration,
            },
        )
        self._publish_view()
        return kind

    # ------------------------------------------------------------------ #
    # Terminal transitions (event-loop thread; each fires at most once).
    def _settle(self, status: str) -> None:
        self.status = status
        if (
            self._grant is None
            and self._admission_future.done()
            and not self._admission_future.cancelled()
            and self._admission_future.exception() is None
        ):
            # Granted at submit time but never picked up by a quantum.
            self._grant = self._admission_future.result()
        if self._grant is not None:
            self._service.admission.release(self._grant)
            self._grant = None
        elif not self._admission_future.done():
            self._admission_future.cancel()
        if self._journal is not None:
            try:
                self._journal.close()
                self._service.journal_io_seconds += self._journal.io_seconds
            except Exception:
                self._service.journal_errors += 1
            self._journal = None
        self._publish_view()
        self._event_signal.set()  # wake events() so it can finish draining
        self._service._on_terminal(self)

    def _settle_done(self) -> None:
        self._settle(DONE)
        self._result_future.set_result(self._result_value)

    def _settle_failed(self, exc: BaseException) -> None:
        if self.done:
            return
        self._settle(FAILED)
        self._result_future.set_exception(exc)

    def _settle_cancelled(self) -> None:
        if self.done:
            return
        self._rollback_staged()
        self._settle(CANCELLED)
        self._result_future.set_exception(
            SessionCancelled(self.name, self._cancel_reason or "cancelled")
        )

    def _rollback_staged(self) -> None:
        """Drop staged-but-uncommitted candidate rows after cancellation.

        The acceptance stage stages candidate rows on the active builder
        before deciding; a session cancelled between quanta may hold such
        a staged tail.  The builder's committed length *is* its
        checkpoint, so rolling back to it leaves exactly the accepted
        dataset — same machinery the engine uses to reject a batch.
        """
        state = self._state
        if state is None or state.active_builder is None:
            return
        builder = state.active_builder
        builder.rollback(builder.checkpoint())

    # ------------------------------------------------------------------ #
    # Driving.
    async def step(self) -> SessionView:
        """Advance the session by exactly one quantum.

        Returns
        -------
        SessionView
            The snapshot after the quantum.

        Raises
        ------
        ServeError
            If the service is already auto-driving this session, a
            previous ``step()`` is still in flight, or the session
            already finished.
        SessionCancelled
            If the session was cancelled or its timeout elapsed.
        """
        if self._driver is not None:
            raise ServeError(
                f"session {self.name!r} is auto-driven by run_to_completion(); "
                "manual step() is not available"
            )
        if self._stepping:
            raise ServeError(f"session {self.name!r} already has a step in flight")
        if self.done:
            if self.status == CANCELLED:
                raise SessionCancelled(self.name, self._cancel_reason or "cancelled")
            raise ServeError(f"session {self.name!r} already finished ({self.status})")
        if self._cancel_reason is not None:
            self._settle_cancelled()
            raise SessionCancelled(self.name, self._cancel_reason)
        self._stepping = True
        try:
            kind = await self._quantum()
        except _TimedOut:
            self._cancel_reason = self._cancel_reason or "timeout"
            self._settle_cancelled()
            raise SessionCancelled(self.name, self._cancel_reason) from None
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._settle_failed(exc)
            raise
        finally:
            self._stepping = False
        if kind == _FINALIZE:
            self._settle_done()
        elif self._cancel_reason is not None:
            # Cancelled while the quantum ran; settle at the boundary.
            self._settle_cancelled()
            raise SessionCancelled(self.name, self._cancel_reason)
        return self._view

    async def run_to_completion(self) -> FroteResult:
        """Drive the session to its terminal state and return the result.

        Idempotent: the first call starts the driver task, later calls
        (and :meth:`result`) await the same outcome.  May follow manual
        :meth:`step` calls — driving continues from the current quantum.

        Returns
        -------
        FroteResult
            Identical (bit-for-bit) to what ``EditSession.run()`` would
            have returned for the same spec.
        """
        if self._driver is None and not self.done:
            if self._stepping:
                raise ServeError(
                    f"session {self.name!r} has a manual step in flight"
                )
            self._driver = self._loop.create_task(
                self._drive(), name=f"serve-{self.name}"
            )
        return await self.result()

    async def _drive(self) -> None:
        try:
            while not self.done:
                if self._cancel_reason is not None:
                    self._settle_cancelled()
                    return
                kind = await self._quantum()
                if kind == _FINALIZE:
                    self._settle_done()
                    return
        except _TimedOut:
            self._cancel_reason = self._cancel_reason or "timeout"
            self._settle_cancelled()
        except asyncio.CancelledError:
            self._settle_cancelled()
        except Exception as exc:  # engine failure — surface via result()
            self._settle_failed(exc)

    async def result(self) -> FroteResult:
        """Await the session's final result.

        Raises
        ------
        SessionCancelled
            If the session was cancelled (or timed out).
        Exception
            Whatever the engine raised, if the session failed.
        """
        return await asyncio.shield(self._result_future)

    def cancel(self, reason: str = "cancelled") -> bool:
        """Request cooperative cancellation.

        An in-flight engine quantum is never interrupted — cancellation
        takes effect at the next quantum boundary, where the session
        rolls back any staged-but-uncommitted rows, releases its memory
        grant, and resolves :meth:`result` with
        :class:`SessionCancelled`.

        Parameters
        ----------
        reason:
            Recorded in :attr:`SessionView.cancel_reason` and the
            raised :class:`SessionCancelled`.

        Returns
        -------
        bool
            ``True`` if this call initiated cancellation, ``False`` if
            the session was already terminal or already cancelling.
        """
        if self.done or self._cancel_reason is not None:
            return False
        self._cancel_reason = reason
        if self._in_advance or self._stepping:
            return True  # settles at the quantum boundary
        if self._driver is not None and not self._driver.done():
            self._driver.cancel()
        else:
            self._settle_cancelled()
        return True


class EditService:
    """Asyncio facade serving many concurrent edit sessions.

    Parameters
    ----------
    options:
        A :class:`~repro.core.options.ServeOptions` bundle supplying
        every parameter below at once — the typed face of this
        constructor.  Explicitly passed flat keywords override the
        bundle for targeted tweaks.
    max_concurrent_steps:
        Engine quanta in flight at once (worker threads); defaults to
        :func:`~repro.serve.scheduler.default_max_concurrent`.
    policy:
        Scheduling policy name (``"round-robin"``,
        ``"weighted-priority"``, or anything registered in
        :data:`~repro.serve.scheduler.SCHEDULING_POLICIES`) or a policy
        instance.
    memory_budget_mb:
        Service-wide resident budget.  When set, each admitted session
        carves a slice out of the shared :class:`MemoryPool` and runs
        with ``FroteConfig(max_resident_mb=<slice>)``, so the data
        layer's out-of-core spill enforces per-session what the pool
        accounts globally.  ``None`` disables byte accounting.
    default_session_mb:
        Slice for sessions that don't set their own ``max_resident_mb``;
        defaults to ``memory_budget_mb / 8``.
    max_active_sessions:
        Sessions admitted concurrently (holding grants).
    max_pending:
        Bounded submission queue; :meth:`submit` raises
        :class:`AdmissionError` beyond it.
    event_queue_size:
        Per-session bounded event queue capacity (drop-oldest).
    journal_dir:
        Opt into durable serving journals: each served session writes
        its own session journal at ``journal_dir/<name>`` (same format
        and replay tooling as ``EditSession.journaled(...)``), and the
        service itself appends admission decisions, per-quantum grants
        with wall times, and terminal outcomes to
        ``journal_dir/_service`` (see :mod:`repro.journal`).  Sessions
        whose own config carries ``journal_dir`` are journaled there
        even when this is unset.

    Notes
    -----
    The service is loop-affine: construct and use it inside a running
    event loop (``asyncio.run(main())``).
    """

    def __init__(
        self,
        *,
        options: "ServeOptions | None" = None,
        max_concurrent_steps: int | None = None,
        policy: str | SchedulingPolicy = "round-robin",
        memory_budget_mb: float | None = None,
        default_session_mb: float | None = None,
        max_active_sessions: int = 64,
        max_pending: int = 64,
        event_queue_size: int = 256,
        journal_dir: str | None = None,
    ) -> None:
        if options is not None:
            # The typed bundle supplies every parameter the caller left
            # at its default; an explicitly passed flat keyword (i.e.
            # one that differs from the signature default) wins.
            defaults = {
                "max_concurrent_steps": None,
                "policy": "round-robin",
                "memory_budget_mb": None,
                "default_session_mb": None,
                "max_active_sessions": 64,
                "max_pending": 64,
                "event_queue_size": 256,
                "journal_dir": None,
            }
            passed = {
                "max_concurrent_steps": max_concurrent_steps,
                "policy": policy,
                "memory_budget_mb": memory_budget_mb,
                "default_session_mb": default_session_mb,
                "max_active_sessions": max_active_sessions,
                "max_pending": max_pending,
                "event_queue_size": event_queue_size,
                "journal_dir": journal_dir,
            }
            resolved = {
                key: passed[key] if passed[key] != defaults[key]
                else getattr(options, key)
                for key in defaults
            }
            max_concurrent_steps = resolved["max_concurrent_steps"]
            policy = resolved["policy"]
            memory_budget_mb = resolved["memory_budget_mb"]
            default_session_mb = resolved["default_session_mb"]
            max_active_sessions = resolved["max_active_sessions"]
            max_pending = resolved["max_pending"]
            event_queue_size = resolved["event_queue_size"]
            journal_dir = resolved["journal_dir"]
        if event_queue_size < 1:
            raise ValueError(
                f"event_queue_size must be >= 1, got {event_queue_size}"
            )
        self.pool = (
            None if memory_budget_mb is None else MemoryPool(float(memory_budget_mb))
        )
        if default_session_mb is None and self.pool is not None:
            default_session_mb = self.pool.total_mb / 8.0
        self.default_session_mb = default_session_mb
        self.admission = AdmissionController(
            pool=self.pool,
            max_active=max_active_sessions,
            max_pending=max_pending,
        )
        self.scheduler = SessionScheduler(
            max_concurrent=max_concurrent_steps, policy=policy
        )
        self.event_queue_size = event_queue_size
        self.sessions: dict[str, SessionHandle] = {}
        self._names = itertools.count()
        self._step_latencies: list[float] = []
        self.n_submitted = 0
        self.n_completed = 0
        self.n_failed = 0
        self.n_cancelled = 0
        self.journal_dir = journal_dir
        self._journal = None
        self.journal_errors = 0
        #: Wall seconds spent on journal write/flush/fsync across every
        #: settled session journal plus the service journal — the number
        #: the journal-overhead bench compares against serving time.
        self.journal_io_seconds = 0.0
        if journal_dir is not None:
            from pathlib import Path

            from repro.journal.writer import JournalWriter

            self._journal = JournalWriter(
                Path(journal_dir) / "_service",
                meta={"journal_kind": "service"},
            )

    # ------------------------------------------------------------------ #
    def _journal_event(self, kind: str, data: dict) -> None:
        """Append service telemetry (event-loop thread only).

        Telemetry must never take down serving: failures are counted in
        :attr:`journal_errors` and swallowed.  These records are flushed
        but not fsynced — they are observability, not resume state.
        """
        if self._journal is None or self._journal.closed:
            return
        try:
            self._journal.append(kind, data)
        except Exception:
            self.journal_errors += 1

    def _session_journal_path(self, name: str, config: Any):
        """Where a session's own journal lives, or ``None``."""
        from pathlib import Path

        if self.journal_dir is not None:
            return Path(self.journal_dir) / name
        if getattr(config, "journal_dir", None):
            return Path(config.journal_dir) / (config.journal_name or name)
        return None

    # ------------------------------------------------------------------ #
    def submit(
        self,
        session: EditSession,
        *,
        name: str | None = None,
        priority: float = 1.0,
        timeout: float | None = None,
    ) -> SessionHandle:
        """Admit an edit session for serving.

        Synchronous and fast: admission bookkeeping happens before this
        returns (granted or parked in the bounded FIFO queue), but no
        engine work runs yet.  The caller's ``session`` object is not
        mutated — the service drives a shallow working copy, configured
        with the carved per-session memory budget when the service has
        a pool.

        Parameters
        ----------
        session:
            The :class:`~repro.engine.session.EditSession` spec to run.
        name:
            Service-unique session name (auto-generated when omitted).
        priority:
            Scheduling priority (only meaningful under priority-aware
            policies such as ``"weighted-priority"``).
        timeout:
            Wall-clock seconds from submission; past it the session is
            cancelled with reason ``"timeout"`` at the next quantum
            boundary.

        Returns
        -------
        SessionHandle
            Handle for stepping, streaming, inspecting, cancelling.

        Raises
        ------
        AdmissionError
            When the submission queue is full or the session's budget
            exceeds the whole pool.
        ValueError
            On a duplicate session name.
        """
        if name is None:
            name = f"session-{next(self._names)}"
        if name in self.sessions:
            raise ValueError(f"session name {name!r} already in use")
        spec, required_mb = self._carve(session)
        admission_future = self.admission.request(
            required_mb if self.pool is not None else 0.0
        )
        handle = SessionHandle(
            self,
            spec,
            name=name,
            priority=priority,
            timeout=timeout,
            required_mb=required_mb,
            admission_future=admission_future,
        )
        self.sessions[name] = handle
        self.n_submitted += 1
        if self._journal is not None:
            self._journal_event(
                "session-submitted",
                {"name": name, "priority": priority, "required_mb": required_mb},
            )
            admission_future.add_done_callback(
                lambda fut, name=name: self._journal_admission(name, fut)
            )
        return handle

    def _journal_admission(self, name: str, fut: "asyncio.Future") -> None:
        if fut.cancelled():
            self._journal_event("admission-cancelled", {"name": name})
        elif fut.exception() is not None:
            self._journal_event(
                "admission-rejected",
                {"name": name, "error": str(fut.exception())},
            )
        else:
            self._journal_event(
                "admission-granted", {"name": name, "mb": fut.result().mb}
            )

    def _carve(self, session: EditSession) -> tuple[EditSession, float]:
        """Build the working copy of ``session`` with its budget slice."""
        spec = copy.copy(session)
        spec._config_kwargs = dict(session._config_kwargs)
        spec._listeners = list(session._listeners)
        spec._rules = list(session._rules)
        # The handle attaches its own feed source; container fields must
        # not be shared with the caller's session object.
        spec._feedback_sources = list(session._feedback_sources)
        spec._feedback_policy_kwargs = dict(session._feedback_policy_kwargs)
        spec._scheduled_rules = {
            it: list(rules) for it, rules in session._scheduled_rules.items()
        }
        own = spec._config_kwargs.get("max_resident_mb")
        if self.pool is None:
            return spec, float(own) if own is not None else 0.0
        required = float(own if own is not None else self.default_session_mb)
        if own is None:
            spec.configure(max_resident_mb=required)
        return spec, required

    def _on_terminal(self, handle: SessionHandle) -> None:
        if handle.status == DONE:
            self.n_completed += 1
        elif handle.status == FAILED:
            self.n_failed += 1
        elif handle.status == CANCELLED:
            self.n_cancelled += 1
        self._journal_event(
            "session-terminal",
            {
                "name": handle.name,
                "status": handle.status,
                "iteration": handle._view.iteration,
                "steps_done": handle._view.steps_done,
                "cancel_reason": handle._cancel_reason,
            },
        )

    # ------------------------------------------------------------------ #
    async def run_all(self) -> dict[str, FroteResult | BaseException]:
        """Drive every non-terminal session and gather outcomes by name.

        Returns
        -------
        dict
            ``{name: FroteResult}`` for completed sessions; failed or
            cancelled sessions map to the raised exception instead.
        """
        handles = [h for h in self.sessions.values()]
        outcomes = await asyncio.gather(
            *(h.run_to_completion() for h in handles), return_exceptions=True
        )
        return dict(zip((h.name for h in handles), outcomes))

    async def close(self) -> None:
        """Cancel all live sessions and wait for them to settle."""
        for handle in list(self.sessions.values()):
            if not handle.done:
                handle.cancel(reason="service-shutdown")
        drivers = [
            h._driver
            for h in self.sessions.values()
            if h._driver is not None and not h._driver.done()
        ]
        if drivers:
            await asyncio.gather(*drivers, return_exceptions=True)
        for handle in self.sessions.values():
            if not handle.done:
                handle._settle_cancelled()
        if self._journal is not None and not self._journal.closed:
            try:
                self._journal.append(
                    "service-closed", {"stats": self.stats()}, sync=True
                )
            except Exception:
                self.journal_errors += 1
            self._journal.close()
            self.journal_io_seconds += self._journal.io_seconds

    async def __aenter__(self) -> "EditService":
        """Enter the service context."""
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        """Close the service on context exit."""
        await self.close()

    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """Service-level counters and step-latency percentiles.

        Returns
        -------
        dict
            Keys: ``n_submitted`` / ``n_completed`` / ``n_failed`` /
            ``n_cancelled`` / ``n_rejected``, ``steps_total``,
            ``p50_step_ms`` / ``p99_step_ms``, and (with a pool)
            ``pool_mb`` / ``peak_reserved_mb``.
        """
        stats: dict[str, Any] = {
            "n_submitted": self.n_submitted,
            "n_completed": self.n_completed,
            "n_failed": self.n_failed,
            "n_cancelled": self.n_cancelled,
            "n_rejected": self.admission.n_rejected,
            "steps_total": len(self._step_latencies),
            "p50_step_ms": _percentile_ms(self._step_latencies, 50.0),
            "p99_step_ms": _percentile_ms(self._step_latencies, 99.0),
        }
        if self.pool is not None:
            stats["pool_mb"] = self.pool.total_mb
            stats["peak_reserved_mb"] = self.pool.peak_reserved_mb
        return stats


def _percentile_ms(latencies_s: list[float], q: float) -> float:
    """Return the ``q``-th percentile of ``latencies_s`` in milliseconds."""
    if not latencies_s:
        return 0.0
    import numpy as np

    return float(np.percentile(np.asarray(latencies_s), q) * 1e3)
