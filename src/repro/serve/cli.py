"""``repro-serve``: demo entrypoint for the multi-tenant edit service.

Submits several concurrent edit sessions (mixed priorities) over
synthetic datasets, streams one session's progress events, optionally
cancels another mid-run, and prints the service's throughput and
latency counters — a one-command tour of :mod:`repro.serve`::

    repro-serve --sessions 6 --policy weighted-priority --cancel tenant-2
"""

from __future__ import annotations

import argparse
import asyncio
import sys


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve several concurrent FROTE edit sessions in-process.",
    )
    parser.add_argument(
        "--sessions", type=int, default=4, help="concurrent sessions (default 4)"
    )
    parser.add_argument(
        "--rows", type=int, default=400, help="rows per session dataset"
    )
    parser.add_argument(
        "--tau", type=int, default=5, help="augmentation quota per session"
    )
    parser.add_argument(
        "--budget-mb",
        type=float,
        default=128.0,
        help="service-wide resident budget (MiB), carved per session",
    )
    parser.add_argument(
        "--policy",
        default="weighted-priority",
        help="scheduling policy (round-robin, weighted-priority, ...)",
    )
    parser.add_argument(
        "--cancel",
        default=None,
        metavar="NAME",
        help="cancel this session after its first accepted batch",
    )
    parser.add_argument("--seed", type=int, default=42, help="base seed")
    return parser


async def _demo(args: argparse.Namespace) -> int:
    from repro.perf.servebench import _session_spec
    from repro.serve import EditService, SessionCancelled

    async with EditService(
        policy=args.policy, memory_budget_mb=args.budget_mb
    ) as service:
        handles = [
            service.submit(
                _session_spec(args.rows, args.tau, args.seed + i),
                name=f"tenant-{i}",
                priority=1.0 + (i % 3),
            )
            for i in range(args.sessions)
        ]
        print(
            f"submitted {len(handles)} sessions "
            f"(policy={args.policy}, pool={args.budget_mb:.0f} MiB)"
        )

        async def watch(handle):
            async for event in handle.events():
                print(
                    f"[{handle.name}] {event.kind:<12} "
                    f"iter={event.iteration:<3d} n_added={event.n_added}"
                )
                if args.cancel == handle.name and event.kind in (
                    "accepted",
                    "rejected",
                    "empty-batch",
                ):
                    handle.cancel(reason="demo cancel")

        watchers = [asyncio.ensure_future(watch(h)) for h in handles]
        outcomes = await asyncio.gather(
            *(h.run_to_completion() for h in handles), return_exceptions=True
        )
        await asyncio.gather(*watchers)

        print()
        for handle, outcome in zip(handles, outcomes):
            if isinstance(outcome, SessionCancelled):
                print(f"{handle.name}: cancelled ({outcome.reason})")
            elif isinstance(outcome, BaseException):
                print(f"{handle.name}: failed ({outcome!r})")
            else:
                print(
                    f"{handle.name}: done — {outcome.n_added} rows added "
                    f"in {outcome.iterations} iterations"
                )
        stats = service.stats()
        print(
            f"\nservice: {stats['n_completed']} done / "
            f"{stats['n_cancelled']} cancelled / {stats['n_failed']} failed; "
            f"step p50={stats['p50_step_ms']:.1f} ms "
            f"p99={stats['p99_step_ms']:.1f} ms; "
            f"peak pool use {stats.get('peak_reserved_mb', 0.0):.0f} MiB "
            f"of {stats.get('pool_mb', 0.0):.0f}"
        )
        return 0 if stats["n_failed"] == 0 else 1


def main(argv: list[str] | None = None) -> int:
    """Run the demo; console entry point for ``repro-serve``."""
    args = build_parser().parse_args(argv)
    return asyncio.run(_demo(args))


if __name__ == "__main__":
    sys.exit(main())
