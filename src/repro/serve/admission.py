"""Admission control and backpressure for the edit service.

The service's resources are finite on two axes and this module guards
both:

* **Resident bytes** — a :class:`MemoryPool` holds the service-wide
  budget (MiB); every admitted session carves a per-session budget out
  of it.  The carved amount becomes the session's
  ``FroteConfig(max_resident_mb=...)``, so the out-of-core machinery of
  the data layer (sharded builders, LRU spill) enforces per-session
  what the pool accounts for service-wide: the sum of admitted budgets
  never exceeds the pool.
* **Concurrency** — at most ``max_active`` sessions hold a grant at
  once, and at most ``max_pending`` may wait for one.  A submit beyond
  the pending bound fails *immediately* with :class:`AdmissionError`
  (backpressure to the caller) instead of queueing unboundedly.

Grants are issued strictly in arrival order (FIFO): a small session
never overtakes a large one, so a large request cannot be starved by a
stream of small ones.  All bookkeeping happens synchronously on the
event loop thread — :meth:`AdmissionController.request` either grants,
enqueues, or rejects before it returns — so no locks are needed and
the pool's accounting is exact by construction.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass


class AdmissionError(RuntimeError):
    """The service refused a submission (queue full or impossible request)."""


@dataclass
class MemoryPool:
    """Service-wide resident-byte budget, accounted in MiB.

    Parameters
    ----------
    total_mb:
        The shared budget.  Per-session carve-outs are reserved against
        it on admission and released when the session reaches a terminal
        state.

    Attributes
    ----------
    reserved_mb:
        Sum of currently admitted sessions' budgets.
    peak_reserved_mb:
        High-water mark of :attr:`reserved_mb` — the serving benchmark's
        "never exceeded the shared budget" assertion reads this.
    """

    total_mb: float
    reserved_mb: float = 0.0
    peak_reserved_mb: float = 0.0

    def fits(self, mb: float) -> bool:
        """Whether a reservation of ``mb`` MiB fits right now."""
        return self.reserved_mb + mb <= self.total_mb + 1e-9

    def reserve(self, mb: float) -> None:
        """Carve ``mb`` MiB out of the pool (caller checked :meth:`fits`)."""
        if not self.fits(mb):
            raise AdmissionError(
                f"cannot reserve {mb:.1f} MiB: {self.reserved_mb:.1f} of "
                f"{self.total_mb:.1f} MiB already reserved"
            )
        self.reserved_mb += mb
        self.peak_reserved_mb = max(self.peak_reserved_mb, self.reserved_mb)

    def release(self, mb: float) -> None:
        """Return a reservation to the pool."""
        self.reserved_mb = max(0.0, self.reserved_mb - mb)


@dataclass(frozen=True)
class MemoryGrant:
    """A session's admitted carve-out (``mb == 0`` when no pool is set)."""

    mb: float


@dataclass
class _Waiter:
    """One submission waiting for admission."""

    required_mb: float
    future: asyncio.Future


class AdmissionController:
    """FIFO admission: bounded waiting, byte-pool carving, active cap.

    Parameters
    ----------
    pool:
        Shared :class:`MemoryPool`, or ``None`` to admit on concurrency
        alone (grants then carry ``mb=0``).
    max_active:
        Maximum sessions holding a grant at once.
    max_pending:
        Maximum sessions waiting for a grant; a submission past this
        bound raises :class:`AdmissionError` immediately.
    """

    def __init__(
        self,
        *,
        pool: MemoryPool | None = None,
        max_active: int = 64,
        max_pending: int = 64,
    ) -> None:
        if max_active < 1:
            raise ValueError(f"max_active must be >= 1, got {max_active}")
        if max_pending < 0:
            raise ValueError(f"max_pending must be >= 0, got {max_pending}")
        self.pool = pool
        self.max_active = max_active
        self.max_pending = max_pending
        self.n_active = 0
        self.n_rejected = 0
        self._waiters: deque[_Waiter] = deque()

    # ------------------------------------------------------------------ #
    @property
    def n_pending(self) -> int:
        """Sessions currently waiting for a grant."""
        return len(self._waiters)

    def _fits_now(self, required_mb: float) -> bool:
        if self.n_active >= self.max_active:
            return False
        return self.pool is None or self.pool.fits(required_mb)

    def _grant(self, required_mb: float) -> MemoryGrant:
        if self.pool is not None:
            self.pool.reserve(required_mb)
        self.n_active += 1
        return MemoryGrant(mb=required_mb if self.pool is not None else 0.0)

    def request(self, required_mb: float = 0.0) -> "asyncio.Future[MemoryGrant]":
        """Request admission; the returned future resolves to the grant.

        Synchronous bookkeeping: on return the request has either been
        granted (future already done), parked in the bounded FIFO queue,
        or rejected.  Cancelling the future abandons the spot in line.

        Raises
        ------
        AdmissionError
            When the request can never fit (larger than the whole pool)
            or the bounded pending queue is already full.
        """
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        if self.pool is not None and required_mb > self.pool.total_mb + 1e-9:
            self.n_rejected += 1
            raise AdmissionError(
                f"session budget {required_mb:.1f} MiB exceeds the service "
                f"pool ({self.pool.total_mb:.1f} MiB); it can never be "
                "admitted"
            )
        # FIFO: even a request that fits right now queues behind waiters.
        if not self._waiters and self._fits_now(required_mb):
            future.set_result(self._grant(required_mb))
            return future
        self._prune_cancelled()
        if len(self._waiters) >= self.max_pending:
            self.n_rejected += 1
            raise AdmissionError(
                f"submission queue full ({self.max_pending} pending); "
                "retry after a session completes"
            )
        self._waiters.append(_Waiter(required_mb, future))
        return future

    async def acquire(self, required_mb: float = 0.0) -> MemoryGrant:
        """Await admission (convenience wrapper over :meth:`request`)."""
        future = self.request(required_mb)
        try:
            return await future
        except asyncio.CancelledError:
            if future.done() and not future.cancelled():
                self.release(future.result())  # granted in the same tick
            else:
                future.cancel()
            raise

    def release(self, grant: MemoryGrant) -> None:
        """Return a grant and pump the FIFO queue."""
        self.n_active = max(0, self.n_active - 1)
        if self.pool is not None:
            self.pool.release(grant.mb)
        self._pump()

    def _prune_cancelled(self) -> None:
        if any(w.future.cancelled() for w in self._waiters):
            self._waiters = deque(
                w for w in self._waiters if not w.future.cancelled()
            )

    def _pump(self) -> None:
        """Grant the queue head(s) while they fit — strictly in order."""
        self._prune_cancelled()
        while self._waiters and self._fits_now(self._waiters[0].required_mb):
            waiter = self._waiters.popleft()
            if waiter.future.cancelled():
                continue
            waiter.future.set_result(self._grant(waiter.required_mb))
