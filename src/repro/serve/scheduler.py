"""Cooperative stage-granular scheduling of concurrent edit sessions.

One process, many sessions: each session advances in *quanta* (one
engine ``initialize``, one ``step``, or one ``finalize``), every quantum
runs in a worker thread off the event loop, and at most
``max_concurrent`` quanta are in flight at once.  Which runnable
session gets the next free slot is a *policy* decision, pluggable
through the same registry idiom as the engine's strategy families::

    from repro.serve import register_policy

    @register_policy("shortest-first")
    class ShortestFirstPolicy:
        def pick(self, waiting, now):
            return min(waiting, key=lambda t: t.steps_done)

Built-ins:

* ``"round-robin"`` — strict turn-taking: the waiting session granted
  least recently goes next.
* ``"weighted-priority"`` — highest effective priority wins, where
  effective priority is the submitted priority plus a fairness-aging
  term that grows while a session waits, so low-priority sessions are
  delayed but never starved.

The scheduler itself is a turnstile, not a task: sessions call
:meth:`SessionScheduler.acquire` before a quantum and
:meth:`SessionScheduler.release` after, and dispatch happens inline on
the event loop thread whenever a slot frees or a waiter arrives — no
background coroutine, no locks.
"""

from __future__ import annotations

import asyncio
import os
from dataclasses import dataclass, field
from typing import Protocol, Sequence, runtime_checkable

from repro.engine.registry import Registry

#: Scheduling policies, registered by name like every other strategy
#: family (``EditService(policy="weighted-priority")`` resolves here).
SCHEDULING_POLICIES = Registry("scheduling policy")


def register_policy(name: str, obj=None, *, overwrite: bool = False):
    """Register a scheduling policy by name (decorator form)."""
    return SCHEDULING_POLICIES.register(name, obj, overwrite=overwrite)


def default_max_concurrent() -> int:
    """Default in-flight quantum cap: leave headroom on small machines."""
    return max(2, min(8, (os.cpu_count() or 2) - 1))


@dataclass
class SessionTicket:
    """One session's scheduling identity and fairness bookkeeping.

    Policies read these fields; the scheduler maintains them.  All
    "times" are quantum sequence numbers (one global counter, bumped
    per grant), which keeps policies deterministic and clock-free.
    """

    name: str
    priority: float = 1.0
    #: Monotonic submission order (set by the scheduler; ties break on it).
    arrival: int = 0
    #: Sequence number of the last grant (-1 = never granted).
    last_granted: int = -1
    #: Sequence number at which the ticket entered the waiting set.
    waiting_since: int = 0
    #: Completed quanta (setup + steps + finalize).
    quanta_done: int = 0
    #: Completed *loop-step* quanta (what latency metrics count).
    steps_done: int = 0


@runtime_checkable
class SchedulingPolicy(Protocol):
    """Pick which waiting session receives the next free slot."""

    def pick(self, waiting: Sequence[SessionTicket], now: int) -> SessionTicket:
        """Choose one ticket from the non-empty ``waiting`` sequence.

        Parameters
        ----------
        waiting:
            Tickets currently waiting for a slot (never empty).
        now:
            The current quantum sequence number, for aging terms.
        """
        ...


@register_policy("round-robin")
class RoundRobinPolicy:
    """Strict turn-taking: least-recently-granted first, arrival order ties."""

    def pick(self, waiting: Sequence[SessionTicket], now: int) -> SessionTicket:
        """Pick the waiting ticket granted least recently."""
        return min(waiting, key=lambda t: (t.last_granted, t.arrival))


@register_policy("weighted-priority")
class WeightedPriorityPolicy:
    """Priority scheduling with fairness aging.

    Effective priority is ``priority + aging_rate * quanta_waited``:
    a session's claim grows the longer it waits, so high-priority
    sessions dominate short-term but cannot starve low-priority ones.

    Parameters
    ----------
    aging_rate:
        Priority units gained per quantum spent waiting.  ``0`` is pure
        strict priority (starvation possible — only sensible for tests).
    """

    def __init__(self, aging_rate: float = 0.25) -> None:
        if aging_rate < 0:
            raise ValueError(f"aging_rate must be >= 0, got {aging_rate}")
        self.aging_rate = aging_rate

    def effective_priority(self, ticket: SessionTicket, now: int) -> float:
        """The aged priority of ``ticket`` at quantum ``now``."""
        return ticket.priority + self.aging_rate * max(0, now - ticket.waiting_since)

    def pick(self, waiting: Sequence[SessionTicket], now: int) -> SessionTicket:
        """Pick the highest effective priority; fall back round-robin."""
        return max(
            waiting,
            key=lambda t: (
                self.effective_priority(t, now),
                -t.last_granted,
                -t.arrival,
            ),
        )


@dataclass
class _Waiting:
    """A ticket parked in the scheduler with its wake-up future."""

    ticket: SessionTicket
    future: asyncio.Future = field(default_factory=asyncio.Future)


class SessionScheduler:
    """Interleave sessions at quantum granularity under a policy.

    Parameters
    ----------
    max_concurrent:
        Maximum quanta in flight at once (each runs in a worker
        thread); defaults to :func:`default_max_concurrent`.
    policy:
        A policy name from :data:`SCHEDULING_POLICIES`, or a policy
        instance (anything with ``pick``).
    """

    def __init__(
        self,
        *,
        max_concurrent: int | None = None,
        policy: str | SchedulingPolicy = "round-robin",
    ) -> None:
        self.max_concurrent = (
            default_max_concurrent() if max_concurrent is None else max_concurrent
        )
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        self.policy: SchedulingPolicy = (
            SCHEDULING_POLICIES.create(policy) if isinstance(policy, str) else policy
        )
        self.in_flight = 0
        self._seq = 0  # global quantum sequence number
        self._arrivals = 0
        self._waiting: list[_Waiting] = []
        #: Grant order by ticket name — the policy-fairness tests read this.
        self.grant_log: list[str] = []

    # ------------------------------------------------------------------ #
    def register(self, ticket: SessionTicket) -> SessionTicket:
        """Stamp a ticket's arrival order (once, at submission)."""
        ticket.arrival = self._arrivals
        self._arrivals += 1
        return ticket

    async def acquire(self, ticket: SessionTicket) -> None:
        """Wait until the policy hands ``ticket`` a free slot."""
        ticket.waiting_since = self._seq
        entry = _Waiting(ticket)
        self._waiting.append(entry)
        self._dispatch()
        try:
            await entry.future
        except asyncio.CancelledError:
            if entry in self._waiting:
                self._waiting.remove(entry)
            elif entry.future.done() and not entry.future.cancelled():
                self.release(ticket)  # granted and cancelled in the same tick
            raise

    def release(self, ticket: SessionTicket) -> None:
        """Return a slot after a quantum completes and dispatch the next."""
        self.in_flight = max(0, self.in_flight - 1)
        ticket.quanta_done += 1
        self._dispatch()

    def _dispatch(self) -> None:
        """Grant free slots to policy-picked waiters (event-loop thread)."""
        while self.in_flight < self.max_concurrent and self._waiting:
            by_ticket = {id(w.ticket): w for w in self._waiting}
            picked = self.policy.pick(
                tuple(w.ticket for w in self._waiting), self._seq
            )
            entry = by_ticket.get(id(picked))
            if entry is None:
                raise RuntimeError(
                    f"{type(self.policy).__name__}.pick returned a ticket "
                    "that is not waiting"
                )
            self._waiting.remove(entry)
            if entry.future.cancelled():
                continue
            self.in_flight += 1
            picked.last_granted = self._seq
            self._seq += 1
            self.grant_log.append(picked.name)
            entry.future.set_result(None)
