"""Multi-tenant async serving layer for FROTE edit sessions.

``repro.serve`` promotes :class:`~repro.engine.session.EditSession`
from a library object to a served workload: an asyncio
:class:`EditService` admits many sessions, a cooperative
:class:`SessionScheduler` interleaves them at engine-quantum
granularity (setup / step / finalize, each in a worker thread), and an
:class:`AdmissionController` applies backpressure — a bounded
submission queue plus a shared resident-byte :class:`MemoryPool` that
composes with the data layer's ``max_resident_mb`` out-of-core spill.

Quick start::

    import asyncio, repro
    from repro.serve import EditService

    async def main():
        service = EditService(memory_budget_mb=128.0)
        handle = service.submit(
            repro.edit(data).with_rules(rule).with_algorithm("LR")
        )
        return await handle.run_to_completion()

    result = asyncio.run(main())

Served execution is bit-identical to ``EditSession.run()`` — see
``docs/architecture.md`` ("Serving layer") and the parity tests in
``tests/serve/``.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionError,
    MemoryGrant,
    MemoryPool,
)
from repro.serve.scheduler import (
    SCHEDULING_POLICIES,
    RoundRobinPolicy,
    SchedulingPolicy,
    SessionScheduler,
    SessionTicket,
    WeightedPriorityPolicy,
    default_max_concurrent,
    register_policy,
)
from repro.serve.service import (
    EditService,
    ServeError,
    SessionCancelled,
    SessionHandle,
    SessionView,
)

__all__ = [
    "EditService",
    "SessionHandle",
    "SessionView",
    "ServeError",
    "SessionCancelled",
    "SessionScheduler",
    "SessionTicket",
    "SchedulingPolicy",
    "SCHEDULING_POLICIES",
    "register_policy",
    "RoundRobinPolicy",
    "WeightedPriorityPolicy",
    "default_max_concurrent",
    "AdmissionController",
    "AdmissionError",
    "MemoryGrant",
    "MemoryPool",
]
