"""Labelled dataset: a :class:`~repro.data.table.Table` plus class labels."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.data.table import Table


class Dataset:
    """Features and labels travelling together.

    Parameters
    ----------
    X:
        Feature table.
    y:
        Integer class codes in ``[0, len(label_names))``, one per row of ``X``.
    label_names:
        Human-readable class names; codes index into this tuple.
    """

    __slots__ = ("X", "y", "label_names")

    def __init__(self, X: Table, y: np.ndarray, label_names: Iterable[str]) -> None:
        y = np.asarray(y, dtype=np.int64)
        if y.ndim != 1:
            raise ValueError(f"y must be 1-D, got shape {y.shape}")
        if y.shape[0] != X.n_rows:
            raise ValueError(
                f"y has {y.shape[0]} labels but X has {X.n_rows} rows"
            )
        names = tuple(label_names)
        if len(names) < 2:
            raise ValueError(f"need at least 2 classes, got {names}")
        if y.size and (y.min() < 0 or y.max() >= len(names)):
            raise ValueError(
                f"labels must be codes in [0, {len(names)}), "
                f"got range [{y.min()}, {y.max()}]"
            )
        self.X = X
        self.y = y
        self.label_names = names

    @classmethod
    def _from_trusted(
        cls, X: Table, y: np.ndarray, label_names: tuple[str, ...]
    ) -> "Dataset":
        """Wrap pre-validated components without the O(n) label scan.

        Internal fast path for :class:`~repro.data.builder.DatasetBuilder`
        snapshots, whose rows were validated when first appended.
        """
        ds = object.__new__(cls)
        ds.X = X
        ds.y = y
        ds.label_names = label_names
        return ds

    def row_slice(self, start: int, stop: int) -> "Dataset":
        """Rows ``[start, stop)`` as a zero-copy view dataset (see
        :meth:`Table.row_slice`)."""
        X = self.X.row_slice(start, stop)
        return Dataset._from_trusted(X, self.y[start:stop], self.label_names)

    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of instances."""
        return self.X.n_rows

    @property
    def n_classes(self) -> int:
        return len(self.label_names)

    def __len__(self) -> int:
        return self.n

    def class_counts(self) -> np.ndarray:
        """Return per-class instance counts (length ``n_classes``)."""
        return np.bincount(self.y, minlength=self.n_classes)

    # ------------------------------------------------------------------ #
    def take(self, indices: np.ndarray) -> "Dataset":
        idx = np.asarray(indices, dtype=np.intp)
        return Dataset(self.X.take(idx), self.y[idx], self.label_names)

    def loc_mask(self, mask: np.ndarray) -> "Dataset":
        m = np.asarray(mask, dtype=bool)
        return Dataset(self.X.loc_mask(m), self.y[m], self.label_names)

    def with_labels(self, y: np.ndarray) -> "Dataset":
        """Return a copy with labels replaced (same features)."""
        return Dataset(self.X, np.array(y, dtype=np.int64, copy=True), self.label_names)

    @staticmethod
    def concat(datasets: Iterable["Dataset"]) -> "Dataset":
        """Row-wise concatenation; schemas and label vocabularies must match."""
        datasets = list(datasets)
        if not datasets:
            raise ValueError("concat requires at least one dataset")
        names = datasets[0].label_names
        for d in datasets[1:]:
            if d.label_names != names:
                raise ValueError("cannot concat datasets with different label names")
        X = Table.concat([d.X for d in datasets])
        y = np.concatenate([d.y for d in datasets])
        return Dataset(X, y, names)

    def copy(self) -> "Dataset":
        """Deep-ish copy (arrays copied, schema shared)."""
        return self.take(np.arange(self.n))

    def __repr__(self) -> str:
        counts = ", ".join(
            f"{name}={c}" for name, c in zip(self.label_names, self.class_counts())
        )
        return f"Dataset(n={self.n}, classes: {counts})"
