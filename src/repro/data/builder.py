"""Appendable table and dataset builders for the incremental compute core.

:class:`Table` and :class:`Dataset` are immutable; the edit loop used to
grow the active dataset with :meth:`Table.concat`, copying every column on
every accepted batch — O(n) per batch, quadratic over a long session.
The builders here keep one *growable* buffer per column with amortized
capacity doubling, so appends cost O(batch) and a long edit session costs
O(total rows) overall.

Two-phase mutation matches the accept/reject shape of the edit loop:

* :meth:`TableBuilder.stage` writes rows *past* the committed length and
  returns a zero-copy snapshot of committed + staged rows — the candidate
  dataset.  Staged rows are simply overwritten by the next ``stage`` call
  if the candidate is rejected; nothing needs rolling back.
* :meth:`TableBuilder.commit` advances the committed length, making the
  staged rows permanent.

Snapshots are :class:`Table` views over the committed prefix of the
buffers (read-only, so accidental mutation of shared storage raises).
Committed rows are never overwritten and buffer growth reallocates rather
than moving them, so every snapshot ever returned stays valid forever.

Builders are storage-polymorphic: by default each column is a dense
in-RAM :class:`GrowableArray`; constructed with a
:class:`~repro.data.shards.SpillPolicy` they shard every column into
fixed-size chunks that spill to memory-mapped files past a resident
budget (:class:`~repro.data.shards.ShardedArray`), and snapshots become
shard-aware :class:`~repro.data.shards.ShardedTable` views — the
out-of-core path for active datasets larger than RAM.  Labels stay in a
dense buffer either way: one machine word per row is the documented
resident floor (the evaluation layer needs the full label vector).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import Schema
from repro.data.shards import ShardedArray, ShardedTable, SpillPolicy
from repro.data.table import Table

__all__ = ["GrowableArray", "TableBuilder", "DatasetBuilder", "append_rows_2d"]

#: Smallest buffer allocation; below this, doubling is pointless churn.
_MIN_CAPACITY = 64


def append_rows_2d(buf: np.ndarray, n: int, rows: np.ndarray) -> np.ndarray:
    """Write ``rows`` at ``buf[n:]``, doubling capacity as needed.

    The single 2-D growth policy shared by the appendable neighbour
    indices: rows ``[0, n)`` are the live prefix and are preserved (a
    reallocation copies them into the new buffer; the old buffer is left
    untouched, so existing views of it stay valid).  Returns the buffer
    holding the result — the same object when capacity sufficed, a fresh
    one otherwise.  The caller owns the new live length ``n + len(rows)``.
    """
    need = n + rows.shape[0]
    if need > buf.shape[0]:
        cap = max(need, 2 * buf.shape[0])
        grown = np.empty((cap, buf.shape[1]), dtype=buf.dtype)
        grown[:n] = buf[:n]
        buf = grown
    buf[n:need] = rows
    return buf


class GrowableArray:
    """A 1-D array with amortized-O(1) appends via capacity doubling.

    Parameters
    ----------
    dtype:
        Element dtype of the buffer.
    initial:
        Optional initial contents (copied once).

    Notes
    -----
    ``view(n)`` returns a read-only zero-copy view of the first ``n``
    elements.  Growth allocates a fresh buffer and copies the live prefix,
    so previously returned views keep referencing the old buffer — still
    valid, just no longer shared with future appends.
    """

    __slots__ = ("_buf", "_n")

    def __init__(self, dtype: np.dtype, initial: np.ndarray | None = None) -> None:
        if initial is not None:
            initial = np.asarray(initial, dtype=dtype)
            cap = max(_MIN_CAPACITY, initial.shape[0])
            self._buf = np.empty(cap, dtype=dtype)
            self._buf[: initial.shape[0]] = initial
            self._n = int(initial.shape[0])
        else:
            self._buf = np.empty(_MIN_CAPACITY, dtype=dtype)
            self._n = 0

    @property
    def n(self) -> int:
        """Number of live elements."""
        return self._n

    def _ensure(self, extra: int) -> None:
        need = self._n + extra
        cap = self._buf.shape[0]
        if need <= cap:
            return
        new_cap = max(need, 2 * cap)
        buf = np.empty(new_cap, dtype=self._buf.dtype)
        buf[: self._n] = self._buf[: self._n]
        self._buf = buf

    def write_at(self, start: int, values: np.ndarray) -> None:
        """Write ``values`` at ``start`` without moving the live length.

        ``start`` must not precede the live length (committed elements are
        immutable); the buffer grows as needed.
        """
        values = np.asarray(values, dtype=self._buf.dtype)
        if start < self._n:
            raise ValueError(
                f"cannot overwrite committed elements (start={start} < n={self._n})"
            )
        need = start + values.shape[0]
        if need > self._buf.shape[0]:
            self._ensure(need - self._n)
        self._buf[start : start + values.shape[0]] = values

    def append(self, values: np.ndarray) -> None:
        """Append ``values`` and advance the live length."""
        values = np.asarray(values, dtype=self._buf.dtype)
        self._ensure(values.shape[0])
        self._buf[self._n : self._n + values.shape[0]] = values
        self._n += values.shape[0]

    def set_length(self, n: int) -> None:
        """Advance the live length to ``n`` (after :meth:`write_at`)."""
        if n < self._n:
            raise ValueError(f"cannot shrink committed length {self._n} to {n}")
        if n > self._buf.shape[0]:
            raise ValueError(f"length {n} exceeds capacity {self._buf.shape[0]}")
        self._n = n

    def truncate(self, n: int) -> None:
        """Shrink the live length to ``n`` in O(1) (rollback of appends).

        The caller owns the invariant that no consumer still relies on a
        view longer than ``n`` — elements past ``n`` may be overwritten
        by later appends.  The builders never truncate (their staged rows
        are outside the committed length by construction); this exists
        for explicit checkpoint/rollback users such as the partial-update
        models.
        """
        if not 0 <= n <= self._n:
            raise ValueError(f"cannot truncate length {self._n} to {n}")
        self._n = n

    def view(self, n: int | None = None) -> np.ndarray:
        """Read-only zero-copy view of the first ``n`` (default: live) elements."""
        if n is None:
            n = self._n
        if n > self._buf.shape[0]:
            raise ValueError(f"view of {n} elements exceeds capacity")
        v = self._buf[:n]
        v.flags.writeable = False
        return v


class TableBuilder:
    """Append-only :class:`Table` accumulator with O(batch) amortized appends.

    Parameters
    ----------
    schema:
        Column layout every appended table must match.
    policy:
        Optional :class:`~repro.data.shards.SpillPolicy`; when given,
        columns are sharded and may spill to memory-mapped files past
        the policy's resident budget, and snapshots are shard-aware
        :class:`~repro.data.shards.ShardedTable` views.  ``None``
        (default) keeps the dense in-RAM storage, bit-for-bit as before.

    Examples
    --------
    >>> builder = TableBuilder.from_table(base)      # doctest: +SKIP
    >>> candidate = builder.stage(batch)             # committed + staged view
    >>> builder.commit(candidate.n_rows)             # accept ...
    >>> # ... or just call stage() again to discard the staged rows.
    """

    def __init__(self, schema: Schema, *, policy: SpillPolicy | None = None) -> None:
        self.schema = schema
        self.policy = policy
        self._columns: dict[str, GrowableArray | ShardedArray] = {
            spec.name: self._new_column(
                np.dtype(np.float64 if spec.is_numeric else np.int64)
            )
            for spec in schema
        }
        self._n = 0

    def _new_column(
        self, dtype: np.dtype, initial: np.ndarray | None = None
    ) -> "GrowableArray | ShardedArray":
        if self.policy is not None:
            return ShardedArray(dtype, policy=self.policy, initial=initial)
        return GrowableArray(dtype, initial=initial)

    @classmethod
    def from_table(
        cls, table: Table, *, policy: SpillPolicy | None = None
    ) -> "TableBuilder":
        """Seed a builder with ``table``'s rows (one copy, then appends are cheap)."""
        builder = cls(table.schema, policy=policy)
        for spec in table.schema:
            arr = table.column(spec.name)
            builder._columns[spec.name] = builder._new_column(arr.dtype, initial=arr)
        builder._n = table.n_rows
        return builder

    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        """Committed row count."""
        return self._n

    def _check_schema(self, table: Table) -> None:
        if table.schema != self.schema:
            raise ValueError("cannot append a table with a different schema")

    def stage(self, table: Table) -> Table:
        """Write ``table``'s rows past the committed length; return the
        combined snapshot *without* committing.

        Repeated calls overwrite each other's staged rows, which is exactly
        the reject path of the edit loop: a rejected candidate costs
        nothing to discard.
        """
        self._check_schema(table)
        start = self._n
        for name, col in self._columns.items():
            col.write_at(start, table.column(name))
        return self._snapshot(start + table.n_rows)

    def commit(self, n_rows: int) -> None:
        """Make rows up to ``n_rows`` (from a prior :meth:`stage`) permanent."""
        for col in self._columns.values():
            col.set_length(n_rows)
        self._n = n_rows

    def append(self, table: Table) -> Table:
        """Stage and commit in one step; returns the new committed snapshot."""
        snap = self.stage(table)
        self.commit(snap.n_rows)
        return snap

    def snapshot(self) -> Table:
        """Zero-copy read-only :class:`Table` of the committed rows."""
        return self._snapshot(self._n)

    def _snapshot(self, n: int) -> Table:
        if self.policy is not None:
            return ShardedTable._wrap_sharded(self.schema, self._columns, n)
        cols = {name: col.view(n) for name, col in self._columns.items()}
        return Table._wrap(self.schema, cols, n)

    # ------------------------------------------------------------------ #
    def checkpoint(self) -> int:
        """Token for :meth:`rollback`: the current committed length."""
        return self._n

    def rollback(self, token: int) -> None:
        """Shrink back to a :meth:`checkpoint` (O(1) dense; sharded
        storage unseals — and reloads, if spilled — the boundary shard).

        Same caveat as :meth:`GrowableArray.truncate`: the caller owns
        the invariant that no consumer still relies on a snapshot longer
        than the checkpoint.
        """
        for col in self._columns.values():
            col.truncate(token)
        self._n = token

    def advise_cold(self) -> None:
        """Drop spilled shards' pages from the OS page cache (no-op dense)."""
        if self.policy is not None:
            for col in self._columns.values():
                col.advise_cold()

    def storage_stats(self) -> dict[str, int]:
        """Aggregate shard statistics (all zeros for dense storage)."""
        total = {"n_shards": 0, "n_spilled": 0, "heap_bytes": 0, "spilled_bytes": 0}
        if self.policy is not None:
            for col in self._columns.values():
                for key, value in col.storage_stats().items():
                    total[key] += value
        return total


class DatasetBuilder:
    """Append-only :class:`Dataset` accumulator: a :class:`TableBuilder`
    plus a growable label buffer.

    The edit loop's active dataset lives in one of these; accepted batches
    append in O(batch) and the exposed :class:`Dataset` snapshots are
    zero-copy views (see the module docstring for the staging contract).
    """

    def __init__(
        self,
        schema: Schema,
        label_names: tuple[str, ...],
        *,
        policy: SpillPolicy | None = None,
    ) -> None:
        self.tables = TableBuilder(schema, policy=policy)
        self.label_names = tuple(label_names)
        # Labels stay dense even under a spill policy: the evaluation
        # layer consumes the full vector and one int64 per row is the
        # documented resident floor of the out-of-core path.
        self._y = GrowableArray(np.int64)

    @classmethod
    def from_dataset(
        cls, dataset: Dataset, *, policy: SpillPolicy | None = None
    ) -> "DatasetBuilder":
        """Seed a builder with ``dataset``'s rows (one copy)."""
        builder = cls(dataset.X.schema, dataset.label_names, policy=policy)
        builder.tables = TableBuilder.from_table(dataset.X, policy=policy)
        builder._y = GrowableArray(np.int64, initial=dataset.y)
        return builder

    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        """Committed row count."""
        return self.tables.n_rows

    def stage(self, table: Table, labels: np.ndarray) -> Dataset:
        """Stage a batch; return the committed + staged :class:`Dataset` view."""
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != table.n_rows:
            raise ValueError(
                f"batch has {table.n_rows} rows but {labels.shape[0]} labels"
            )
        X = self.tables.stage(table)
        self._y.write_at(self.tables.n_rows, labels)
        return Dataset._from_trusted(X, self._y.view(X.n_rows), self.label_names)

    def commit(self, n_rows: int) -> None:
        """Make rows up to ``n_rows`` (from a prior :meth:`stage`) permanent."""
        self.tables.commit(n_rows)
        self._y.set_length(n_rows)

    def append(self, table: Table, labels: np.ndarray) -> Dataset:
        """Stage and commit in one step; returns the new committed snapshot."""
        snap = self.stage(table, labels)
        self.commit(snap.n)
        return snap

    def snapshot(self) -> Dataset:
        """Zero-copy read-only :class:`Dataset` of the committed rows."""
        n = self.tables.n_rows
        return Dataset._from_trusted(
            self.tables.snapshot(), self._y.view(n), self.label_names
        )

    # ------------------------------------------------------------------ #
    @property
    def policy(self) -> SpillPolicy | None:
        """The spill policy the feature columns were built with."""
        return self.tables.policy

    def checkpoint(self) -> int:
        """Token for :meth:`rollback`: the current committed length."""
        return self.tables.checkpoint()

    def rollback(self, token: int) -> None:
        """Shrink back to a :meth:`checkpoint` (see
        :meth:`TableBuilder.rollback` for the view-invalidation caveat)."""
        self.tables.rollback(token)
        self._y.truncate(token)

    def advise_cold(self) -> None:
        """Drop spilled shards' pages from the OS page cache (no-op dense)."""
        self.tables.advise_cold()

    def storage_stats(self) -> dict[str, int]:
        """Aggregate shard statistics of the feature columns."""
        return self.tables.storage_stats()
