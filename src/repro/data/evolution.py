"""Schema-evolution deltas: ordered, replayable migrations over live data.

The delta core (:mod:`repro.engine.delta`) records *row* deltas — appends
and rebuilds over a frozen schema.  This module extends the idea one
level up: a :class:`SchemaDelta` records a change to the *feature space*
itself (add / drop / rename / retype a column), and an ordered sequence
of schema deltas replays over :class:`~repro.data.schema.Schema`,
:class:`~repro.data.table.Table`, and :class:`~repro.data.dataset.Dataset`
exactly the way database migration files (V2, V3, …) replay over a live
schema: each delta is a pure, deterministic function of its input, so any
two replays of the same sequence from the same base are bit-identical.

Versioning mirrors the row-delta journal: every schema has a content
fingerprint (:func:`schema_fingerprint`), and a :class:`SchemaVersion`
lineage chains fingerprints through delta content hashes — the schema
analogue of ``dataset_version`` tokens, but content-addressed so lineages
agree across processes (journal replay, stored runs).

Each delta also self-classifies what *survives* it (see
:meth:`SchemaDelta.coverage_survives` and
:attr:`SchemaDelta.model_survives`): rule-coverage caches read only the
columns a rule references, so an ``add_column`` never invalidates them,
while a fitted encoder's one-hot layout depends on every column, so any
delta except a pure rename forces a model refit.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import CATEGORICAL, NUMERIC, Schema
from repro.data.table import Table

__all__ = [
    "ADD_COLUMN",
    "DROP_COLUMN",
    "RENAME_COLUMN",
    "RETYPE_COLUMN",
    "SchemaDelta",
    "SchemaMigrationError",
    "SchemaVersion",
    "Migration",
    "schema_fingerprint",
    "schema_delta_key",
    "delta_to_jsonable",
    "delta_from_jsonable",
    "migrate_table",
    "migrate_dataset",
    "migrate_rule",
    "migrate_ruleset",
    "lineage",
]

#: Schema-delta operations, mirroring the four migration-file primitives.
ADD_COLUMN = "add_column"
DROP_COLUMN = "drop_column"
RENAME_COLUMN = "rename_column"
RETYPE_COLUMN = "retype_column"

_OPS = (ADD_COLUMN, DROP_COLUMN, RENAME_COLUMN, RETYPE_COLUMN)


class SchemaMigrationError(ValueError):
    """A schema delta cannot be applied to the given schema/table/rules."""


@dataclass(frozen=True)
class SchemaDelta:
    """One replayable change to a feature space.

    Use the classmethod constructors (:meth:`add_column`,
    :meth:`drop_column`, :meth:`rename_column`, :meth:`retype_column`)
    rather than the raw dataclass — they validate the op-specific fields.

    Every delta is *total and explicit*: an added column carries its fill
    value for existing rows, a retype carries the exact cast (per-category
    values, bin thresholds, or vocabulary mapping), so replay never
    consults anything but the delta and the data it is applied to.
    """

    op: str
    column: str
    #: ``add_column``: kind/vocabulary of the new column and the fill
    #: value (a float for numeric, a category string for categorical)
    #: backfilled into every existing row.  ``position`` inserts at an
    #: ordinal slot (``None`` appends).
    kind: str = ""
    categories: tuple[str, ...] = ()
    fill: Any = None
    position: int | None = None
    #: ``rename_column``: the new name.
    new_name: str = ""
    #: ``retype_column`` casts — exactly one is set, matching the
    #: direction: ``values`` maps category → float (categorical→numeric),
    #: ``bins`` are sorted upper-open thresholds assigning floats to
    #: ``len(categories)`` buckets (numeric→categorical), ``mapping``
    #: maps old category → new category (vocabulary change).
    values: tuple[tuple[str, float], ...] = ()
    bins: tuple[float, ...] = ()
    mapping: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown schema-delta op {self.op!r}; expected one of {_OPS}")
        if not self.column:
            raise ValueError("schema delta needs a column name")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def add_column(
        cls,
        name: str,
        kind: str = NUMERIC,
        categories: Iterable[str] = (),
        *,
        fill: Any = None,
        position: int | None = None,
    ) -> "SchemaDelta":
        """Add a column, backfilling ``fill`` into every existing row."""
        categories = tuple(categories)
        if kind == NUMERIC:
            fill = 0.0 if fill is None else float(fill)
        elif kind == CATEGORICAL:
            if not categories:
                raise SchemaMigrationError(
                    f"add_column({name!r}): categorical columns need a vocabulary"
                )
            fill = categories[0] if fill is None else str(fill)
            if fill not in categories:
                raise SchemaMigrationError(
                    f"add_column({name!r}): fill {fill!r} not in categories {categories}"
                )
        else:
            raise SchemaMigrationError(f"add_column({name!r}): unknown kind {kind!r}")
        return cls(
            op=ADD_COLUMN, column=name, kind=kind, categories=categories,
            fill=fill, position=position,
        )

    @classmethod
    def drop_column(cls, name: str) -> "SchemaDelta":
        """Remove a column and its stored values."""
        return cls(op=DROP_COLUMN, column=name)

    @classmethod
    def rename_column(cls, old: str, new: str) -> "SchemaDelta":
        """Rename a column; values and rule predicates migrate in lockstep."""
        if not new:
            raise SchemaMigrationError(f"rename_column({old!r}): empty new name")
        return cls(op=RENAME_COLUMN, column=old, new_name=new)

    @classmethod
    def retype_column(
        cls,
        name: str,
        kind: str,
        categories: Iterable[str] = (),
        *,
        values: dict[str, float] | None = None,
        bins: Iterable[float] | None = None,
        mapping: dict[str, str] | None = None,
    ) -> "SchemaDelta":
        """Convert a column's type with an explicit, total cast.

        Exactly one cast spec must be given:

        * ``values`` — categorical → numeric: every category maps to a float;
        * ``bins`` + ``categories`` — numeric → categorical: sorted
          thresholds; value ``x`` gets code ``searchsorted(bins, x,
          'right')``, so ``len(bins) == len(categories) - 1``;
        * ``mapping`` + ``categories`` — categorical → categorical:
          every old category maps into the new vocabulary.
        """
        categories = tuple(categories)
        specs = [s is not None for s in (values, bins, mapping)]
        if sum(specs) != 1:
            raise SchemaMigrationError(
                f"retype_column({name!r}): exactly one of values/bins/mapping required"
            )
        if values is not None:
            if kind != NUMERIC:
                raise SchemaMigrationError(
                    f"retype_column({name!r}): a values cast targets kind='numeric'"
                )
            return cls(
                op=RETYPE_COLUMN, column=name, kind=kind,
                values=tuple((str(k), float(v)) for k, v in values.items()),
            )
        if kind != CATEGORICAL or not categories:
            raise SchemaMigrationError(
                f"retype_column({name!r}): bins/mapping casts target "
                "kind='categorical' with a vocabulary"
            )
        if bins is not None:
            bins = tuple(float(b) for b in bins)
            if list(bins) != sorted(bins):
                raise SchemaMigrationError(
                    f"retype_column({name!r}): bins must be sorted, got {bins}"
                )
            if len(bins) != len(categories) - 1:
                raise SchemaMigrationError(
                    f"retype_column({name!r}): {len(categories)} categories need "
                    f"{len(categories) - 1} bin thresholds, got {len(bins)}"
                )
            return cls(
                op=RETYPE_COLUMN, column=name, kind=kind,
                categories=categories, bins=bins,
            )
        assert mapping is not None
        mapping_t = tuple((str(k), str(v)) for k, v in mapping.items())
        for _, new_cat in mapping_t:
            if new_cat not in categories:
                raise SchemaMigrationError(
                    f"retype_column({name!r}): mapped value {new_cat!r} "
                    f"not in new vocabulary {categories}"
                )
        return cls(
            op=RETYPE_COLUMN, column=name, kind=kind,
            categories=categories, mapping=mapping_t,
        )

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def apply_to_schema(self, schema: Schema) -> Schema:
        """Replay this delta over a schema, returning the evolved schema."""
        try:
            if self.op == ADD_COLUMN:
                return schema.with_column(
                    self.column, self.kind, self.categories, position=self.position
                )
            if self.op == DROP_COLUMN:
                return schema.without(self.column)
            if self.op == RENAME_COLUMN:
                return schema.renamed(self.column, self.new_name)
            self._check_retype_source(schema)
            return schema.retyped(self.column, self.kind, self.categories)
        except (KeyError, ValueError) as exc:
            if isinstance(exc, SchemaMigrationError):
                raise
            raise SchemaMigrationError(f"{self.describe()}: {exc}") from exc

    def apply_to_table(self, table: Table) -> Table:
        """Replay this delta over a table (schema + stored values)."""
        schema = self.apply_to_schema(table.schema)
        cols: dict[str, np.ndarray] = {}
        for name in table.schema.names:
            if self.op == DROP_COLUMN and name == self.column:
                continue
            out_name = (
                self.new_name
                if self.op == RENAME_COLUMN and name == self.column
                else name
            )
            if self.op == RETYPE_COLUMN and name == self.column:
                cols[out_name] = self._cast(table)
            else:
                cols[out_name] = table.column(name)
        if self.op == ADD_COLUMN:
            if self.kind == NUMERIC:
                cols[self.column] = np.full(table.n_rows, float(self.fill))
            else:
                code = self.categories.index(str(self.fill))
                cols[self.column] = np.full(table.n_rows, code, dtype=np.int64)
        # The validating constructor re-checks categorical code ranges —
        # migrations are rare boundary events, so the O(n) scan is cheap
        # insurance against a bad cast spec.
        return Table(schema, cols, copy=False)

    def apply_to_dataset(self, dataset: Dataset) -> Dataset:
        """Replay this delta over a dataset's features (labels untouched)."""
        return Dataset._from_trusted(
            self.apply_to_table(dataset.X), dataset.y, dataset.label_names
        )

    def _check_retype_source(self, schema: Schema) -> None:
        spec = schema[self.column]
        if self.values and not spec.is_categorical:
            raise SchemaMigrationError(
                f"{self.describe()}: a values cast needs a categorical source"
            )
        if self.bins and not spec.is_numeric:
            raise SchemaMigrationError(
                f"{self.describe()}: a bins cast needs a numeric source"
            )
        if self.mapping:
            if not spec.is_categorical:
                raise SchemaMigrationError(
                    f"{self.describe()}: a mapping cast needs a categorical source"
                )
            missing = [c for c in spec.categories if c not in dict(self.mapping)]
            if missing:
                raise SchemaMigrationError(
                    f"{self.describe()}: mapping misses categories {missing}"
                )

    def _cast(self, table: Table) -> np.ndarray:
        spec = table.schema[self.column]
        arr = table.column(self.column)
        if self.values:
            values = dict(self.values)
            missing = [c for c in spec.categories if c not in values]
            if missing:
                raise SchemaMigrationError(
                    f"{self.describe()}: values cast misses categories {missing}"
                )
            lut = np.array([values[c] for c in spec.categories], dtype=np.float64)
            return lut[arr]
        if self.bins:
            return np.searchsorted(
                np.asarray(self.bins, dtype=np.float64), arr, side="right"
            ).astype(np.int64)
        mapping = dict(self.mapping)
        new_codes = {cat: i for i, cat in enumerate(self.categories)}
        lut = np.array(
            [new_codes[mapping[c]] for c in spec.categories], dtype=np.int64
        )
        return lut[arr]

    # ------------------------------------------------------------------ #
    # Survive-vs-refit classification
    # ------------------------------------------------------------------ #
    @property
    def model_survives(self) -> bool:
        """Whether a fitted encoder/model stays valid across this delta.

        Only a pure rename: values and one-hot layout are bit-identical,
        so the fitted encoder migrates symbolically (its stored schema is
        renamed in lockstep).  Add/drop/retype change the encoded feature
        space and force a deterministic refit.
        """
        return self.op == RENAME_COLUMN

    def coverage_survives(self, attributes: Iterable[str]) -> bool:
        """Whether row-level rule coverage over ``attributes`` is unchanged.

        Coverage masks read only the columns a rule references, so adding
        a column never perturbs them, and renames survive because rules
        are migrated in the same step.  Dropping or retyping a referenced
        column cannot survive (and :func:`migrate_rule` refuses it).
        """
        if self.op in (ADD_COLUMN, RENAME_COLUMN):
            return True
        return self.column not in set(attributes)

    def describe(self) -> str:
        """One-line human description, used in provenance strings."""
        if self.op == ADD_COLUMN:
            return f"add_column({self.column!r}, {self.kind})"
        if self.op == DROP_COLUMN:
            return f"drop_column({self.column!r})"
        if self.op == RENAME_COLUMN:
            return f"rename_column({self.column!r} -> {self.new_name!r})"
        return f"retype_column({self.column!r} -> {self.kind})"


# ---------------------------------------------------------------------- #
# Serialization (journals, stored runs, wire formats)
# ---------------------------------------------------------------------- #
def delta_to_jsonable(delta: SchemaDelta) -> dict[str, Any]:
    """Symbolic, schema-independent encoding of a schema delta."""
    out: dict[str, Any] = {"op": delta.op, "column": delta.column}
    if delta.op == ADD_COLUMN:
        out["kind"] = delta.kind
        out["fill"] = delta.fill
        if delta.categories:
            out["categories"] = list(delta.categories)
        if delta.position is not None:
            out["position"] = delta.position
    elif delta.op == RENAME_COLUMN:
        out["new_name"] = delta.new_name
    elif delta.op == RETYPE_COLUMN:
        out["kind"] = delta.kind
        if delta.categories:
            out["categories"] = list(delta.categories)
        if delta.values:
            out["values"] = [[k, v] for k, v in delta.values]
        if delta.bins:
            out["bins"] = list(delta.bins)
        if delta.mapping:
            out["mapping"] = [[k, v] for k, v in delta.mapping]
    return out


def delta_from_jsonable(data: dict[str, Any]) -> SchemaDelta:
    """Inverse of :func:`delta_to_jsonable`."""
    op = data["op"]
    name = data["column"]
    if op == ADD_COLUMN:
        return SchemaDelta.add_column(
            name,
            data.get("kind", NUMERIC),
            tuple(data.get("categories", ())),
            fill=data.get("fill"),
            position=data.get("position"),
        )
    if op == DROP_COLUMN:
        return SchemaDelta.drop_column(name)
    if op == RENAME_COLUMN:
        return SchemaDelta.rename_column(name, data["new_name"])
    if op == RETYPE_COLUMN:
        return SchemaDelta.retype_column(
            name,
            data.get("kind", CATEGORICAL),
            tuple(data.get("categories", ())),
            values={k: v for k, v in data["values"]} if "values" in data else None,
            bins=tuple(data["bins"]) if "bins" in data else None,
            mapping={k: v for k, v in data["mapping"]} if "mapping" in data else None,
        )
    raise ValueError(f"unknown schema-delta op {op!r}")


def schema_delta_key(delta: SchemaDelta) -> str:
    """Canonical content identity of a schema delta (stable across processes)."""
    return json.dumps(delta_to_jsonable(delta), sort_keys=True, separators=(",", ":"))


def schema_fingerprint(schema: Schema) -> str:
    """Content hash of a schema — the genesis of a version lineage."""
    payload = json.dumps(
        [[c.name, c.kind, list(c.categories)] for c in schema.columns],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------- #
# Version lineage
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SchemaVersion:
    """One node of a schema's migration lineage.

    The ``version`` token is a content hash chained through the deltas
    (``sha256(parent_version + delta_key)``), so two processes replaying
    the same migrations from the same base compute identical lineages —
    the property journal replay and stored-run migration rely on.
    """

    version: str
    schema: Schema
    parent: str | None = None
    delta: SchemaDelta | None = None

    @classmethod
    def genesis(cls, schema: Schema) -> "SchemaVersion":
        """The lineage root: the base schema, addressed by its fingerprint."""
        return cls(version=schema_fingerprint(schema), schema=schema)

    def advance(self, delta: SchemaDelta) -> "SchemaVersion":
        """Apply ``delta``, returning the child version node."""
        payload = f"{self.version}:{schema_delta_key(delta)}"
        token = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
        return SchemaVersion(
            version=token,
            schema=delta.apply_to_schema(self.schema),
            parent=self.version,
            delta=delta,
        )


def lineage(schema: Schema, deltas: Iterable[SchemaDelta]) -> list[SchemaVersion]:
    """Full version lineage of replaying ``deltas`` in order over ``schema``."""
    node = SchemaVersion.genesis(schema)
    out = [node]
    for delta in deltas:
        node = node.advance(delta)
        out.append(node)
    return out


# ---------------------------------------------------------------------- #
# Ordered replay — the V2…V6 migration-file idiom
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Migration:
    """A named, ordered sequence of schema deltas replayed as a unit."""

    deltas: tuple[SchemaDelta, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.deltas, tuple):
            object.__setattr__(self, "deltas", tuple(self.deltas))

    def __iter__(self) -> Iterator[SchemaDelta]:
        return iter(self.deltas)

    def __len__(self) -> int:
        return len(self.deltas)

    def apply_to_schema(self, schema: Schema) -> Schema:
        for delta in self.deltas:
            schema = delta.apply_to_schema(schema)
        return schema

    def apply_to_table(self, table: Table) -> Table:
        return migrate_table(table, self.deltas)

    def apply_to_dataset(self, dataset: Dataset) -> Dataset:
        return migrate_dataset(dataset, self.deltas)

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "deltas": [delta_to_jsonable(d) for d in self.deltas],
        }

    @classmethod
    def from_jsonable(cls, data: dict[str, Any]) -> "Migration":
        return cls(
            deltas=tuple(delta_from_jsonable(d) for d in data.get("deltas", ())),
            name=str(data.get("name", "")),
        )


def migrate_table(table: Table, deltas: Iterable[SchemaDelta]) -> Table:
    """Replay ``deltas`` in order over a table."""
    for delta in deltas:
        table = delta.apply_to_table(table)
    return table


def migrate_dataset(dataset: Dataset, deltas: Iterable[SchemaDelta]) -> Dataset:
    """Replay ``deltas`` in order over a dataset's features."""
    for delta in deltas:
        dataset = delta.apply_to_dataset(dataset)
    return dataset


# ---------------------------------------------------------------------- #
# Rule migration (lazy imports: repro.rules imports repro.data modules)
# ---------------------------------------------------------------------- #
def migrate_rule(rule: Any, delta: SchemaDelta) -> Any:
    """Migrate one feedback rule across a schema delta.

    Renames rewrite the matching predicates in the clause and every
    exception; adds (and drops/retypes of *unreferenced* columns) leave
    the rule untouched.  Dropping or retyping a column the rule reads is
    refused — there is no faithful rewrite, and silently changing
    coverage would corrupt the run.
    """
    from repro.rules.clause import Clause
    from repro.rules.predicate import Predicate
    from repro.rules.rule import FeedbackRule

    referenced = set(rule.clause.attributes)
    for exc_clause in rule.exceptions:
        referenced |= set(exc_clause.attributes)
    if delta.op in (DROP_COLUMN, RETYPE_COLUMN) and delta.column in referenced:
        raise SchemaMigrationError(
            f"cannot {delta.describe()}: rule "
            f"{rule.name or rule.clause!r} references column {delta.column!r}"
        )
    if delta.op != RENAME_COLUMN or delta.column not in referenced:
        return rule

    def rename_clause(clause: Clause) -> Clause:
        return Clause(
            tuple(
                Predicate(delta.new_name, p.operator, p.value)
                if p.attribute == delta.column
                else p
                for p in clause.predicates
            )
        )

    return FeedbackRule(
        clause=rename_clause(rule.clause),
        pi=rule.pi,
        exceptions=tuple(rename_clause(c) for c in rule.exceptions),
        name=rule.name,
    )


def migrate_ruleset(ruleset: Any, delta: SchemaDelta) -> Any:
    """Migrate every rule of a rule set across a schema delta."""
    from repro.rules.ruleset import FeedbackRuleSet

    migrated = tuple(migrate_rule(r, delta) for r in ruleset.rules)
    if migrated == tuple(ruleset.rules):
        return ruleset
    return FeedbackRuleSet(migrated)
