"""The :class:`Table` container: a minimal mixed-type tabular frame.

``Table`` plays the role pandas would in the original FROTE implementation.
It stores one NumPy array per column — float64 for numeric columns, int64
category codes for categorical columns — plus the :class:`~repro.data.schema.Schema`
describing them.  Row selection (:meth:`Table.take`, :meth:`Table.loc_mask`)
and concatenation (:meth:`Table.concat`) are the only mutations the library
needs, and both return new tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.data.schema import CATEGORICAL, NUMERIC, ColumnSpec, Schema


class Table:
    """Column-oriented container of features over a fixed :class:`Schema`.

    Parameters
    ----------
    schema:
        Column descriptions.
    columns:
        Mapping from column name to 1-D array.  Numeric columns are stored
        as float64; categorical columns as int64 codes in
        ``[0, len(categories))``.
    copy:
        Copy the input arrays (default True) so tables never alias caller
        memory.
    """

    __slots__ = ("schema", "_data", "_n_rows")

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, np.ndarray],
        *,
        copy: bool = True,
    ) -> None:
        if set(columns) != set(schema.names):
            missing = set(schema.names) - set(columns)
            extra = set(columns) - set(schema.names)
            raise ValueError(
                f"columns do not match schema (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        data: dict[str, np.ndarray] = {}
        n_rows: int | None = None
        for spec in schema:
            dtype = np.float64 if spec.is_numeric else np.int64
            arr = np.array(columns[spec.name], dtype=dtype, copy=copy)
            if arr.ndim != 1:
                raise ValueError(
                    f"column {spec.name!r} must be 1-D, got shape {arr.shape}"
                )
            if n_rows is None:
                n_rows = arr.shape[0]
            elif arr.shape[0] != n_rows:
                raise ValueError(
                    f"column {spec.name!r} has {arr.shape[0]} rows, expected {n_rows}"
                )
            if spec.is_categorical and arr.size:
                lo, hi = arr.min(), arr.max()
                if lo < 0 or hi >= len(spec.categories):
                    raise ValueError(
                        f"column {spec.name!r} has codes outside "
                        f"[0, {len(spec.categories)}): min={lo}, max={hi}"
                    )
            data[spec.name] = arr
        self.schema = schema
        self._data = data
        self._n_rows = 0 if n_rows is None else int(n_rows)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_records(
        cls, schema: Schema, records: Iterable[Mapping[str, object]]
    ) -> "Table":
        """Build a table from an iterable of per-row dicts.

        Categorical values may be given as category strings (decoded) or as
        integer codes.
        """
        rows = list(records)
        columns: dict[str, np.ndarray] = {}
        for spec in schema:
            if spec.is_numeric:
                columns[spec.name] = np.array(
                    [float(r[spec.name]) for r in rows], dtype=np.float64
                )
            else:
                codes = np.empty(len(rows), dtype=np.int64)
                for i, r in enumerate(rows):
                    v = r[spec.name]
                    codes[i] = spec.code_of(v) if isinstance(v, str) else int(v)
                columns[spec.name] = codes
        return cls(schema, columns, copy=False)

    @classmethod
    def empty(cls, schema: Schema) -> "Table":
        """Return a table with zero rows over ``schema``."""
        cols = {
            spec.name: np.empty(0, dtype=np.float64 if spec.is_numeric else np.int64)
            for spec in schema
        }
        return cls(schema, cols, copy=False)

    @classmethod
    def _wrap(
        cls, schema: Schema, columns: dict[str, np.ndarray], n_rows: int
    ) -> "Table":
        """Wrap pre-validated column arrays without copies or checks.

        Internal fast path for the append builders and zero-copy slicing,
        where the arrays are views of already-validated storage — the
        O(n) categorical code scan of ``__init__`` would make every
        snapshot cost a full pass.  Callers guarantee dtypes, lengths,
        and code ranges.
        """
        table = object.__new__(cls)
        table.schema = schema
        table._data = columns
        table._n_rows = int(n_rows)
        return table

    @staticmethod
    def concat(tables: Iterable["Table"]) -> "Table":
        """Row-wise concatenation of tables sharing one schema."""
        tables = list(tables)
        if not tables:
            raise ValueError("concat requires at least one table")
        schema = tables[0].schema
        for t in tables[1:]:
            if t.schema != schema:
                raise ValueError("cannot concat tables with different schemas")
        cols = {
            name: np.concatenate([t._data[name] for t in tables])
            for name in schema.names
        }
        return Table(schema, cols, copy=False)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def n_columns(self) -> int:
        return len(self.schema)

    def __len__(self) -> int:
        return self._n_rows

    def column(self, name: str) -> np.ndarray:
        """Return the raw storage array (float values or int codes).

        The returned array is the internal buffer; callers must not mutate it.
        """
        try:
            return self._data[name]
        except KeyError:
            raise KeyError(f"no column named {name!r}") from None

    def decoded(self, name: str) -> np.ndarray:
        """Return a categorical column as an array of category strings."""
        spec = self.schema[name]
        if not spec.is_categorical:
            raise ValueError(f"column {name!r} is numeric; use column()")
        vocab = np.array(spec.categories, dtype=object)
        return vocab[self._data[name]]

    def row(self, i: int) -> dict[str, float | int]:
        """Return row ``i`` as a dict of raw values (codes for categoricals)."""
        if not -self._n_rows <= i < self._n_rows:
            raise IndexError(f"row index {i} out of range for {self._n_rows} rows")
        return {name: self._data[name][i].item() for name in self.schema.names}

    def row_decoded(self, i: int) -> dict[str, float | str]:
        """Return row ``i`` with categorical codes decoded to strings."""
        out: dict[str, float | str] = {}
        for spec in self.schema:
            v = self._data[spec.name][i]
            out[spec.name] = spec.categories[int(v)] if spec.is_categorical else float(v)
        return out

    # ------------------------------------------------------------------ #
    # Row selection and combination
    # ------------------------------------------------------------------ #
    def take(self, indices: np.ndarray) -> "Table":
        """Return a new table with the rows at ``indices`` (in order)."""
        idx = np.asarray(indices, dtype=np.intp)
        cols = {name: arr[idx] for name, arr in self._data.items()}
        return Table(self.schema, cols, copy=False)

    def row_slice(self, start: int, stop: int) -> "Table":
        """Return rows ``[start, stop)`` as a zero-copy view table.

        Unlike :meth:`take`, no arrays are copied — the returned table
        shares storage with this one (both are immutable by contract).
        The edit loop uses this to evaluate only the rows a
        :class:`~repro.engine.delta.DatasetDelta` appended.
        """
        start, stop, _ = slice(start, stop).indices(self._n_rows)
        n = max(stop - start, 0)
        cols = {name: arr[start:stop] for name, arr in self._data.items()}
        return Table._wrap(self.schema, cols, n)

    def loc_mask(self, mask: np.ndarray) -> "Table":
        """Return a new table with the rows where ``mask`` is True."""
        m = np.asarray(mask, dtype=bool)
        if m.shape != (self._n_rows,):
            raise ValueError(
                f"mask shape {m.shape} does not match table with {self._n_rows} rows"
            )
        cols = {name: arr[m] for name, arr in self._data.items()}
        return Table(self.schema, cols, copy=False)

    def with_column(self, name: str, values: np.ndarray) -> "Table":
        """Return a copy of the table with column ``name`` replaced."""
        spec = self.schema[name]
        dtype = np.float64 if spec.is_numeric else np.int64
        arr = np.asarray(values, dtype=dtype)
        if arr.shape != (self._n_rows,):
            raise ValueError(
                f"replacement for {name!r} has shape {arr.shape}, "
                f"expected ({self._n_rows},)"
            )
        cols = dict(self._data)
        cols[name] = arr
        return Table(self.schema, cols, copy=True)

    def __repr__(self) -> str:
        kinds = ", ".join(
            f"{c.name}:{'num' if c.is_numeric else 'cat'}" for c in self.schema
        )
        return f"Table({self._n_rows} rows; {kinds})"


def make_schema(
    numeric: Iterable[str] = (),
    categorical: Mapping[str, Iterable[str]] | None = None,
    *,
    order: Iterable[str] | None = None,
) -> Schema:
    """Convenience constructor for a :class:`Schema`.

    Parameters
    ----------
    numeric:
        Names of numeric columns.
    categorical:
        Mapping of categorical column name to its vocabulary.
    order:
        Optional explicit column ordering; defaults to numeric columns
        followed by categorical ones.
    """
    categorical = dict(categorical or {})
    specs: dict[str, ColumnSpec] = {}
    for name in numeric:
        specs[name] = ColumnSpec(name, NUMERIC)
    for name, cats in categorical.items():
        specs[name] = ColumnSpec(name, CATEGORICAL, tuple(cats))
    if order is None:
        ordered = list(numeric) + list(categorical)
    else:
        ordered = list(order)
        if set(ordered) != set(specs):
            raise ValueError("order must list exactly the declared columns")
    return Schema(tuple(specs[n] for n in ordered))
