"""Feature encoders mapping :class:`~repro.data.table.Table` to matrices.

The classifiers in :mod:`repro.models` operate on dense float matrices.  The
:class:`TabularEncoder` bridges the gap: numeric columns are optionally
standardized, categorical columns are one-hot encoded against the schema
vocabulary (so unseen rows always encode consistently).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Schema
from repro.data.table import Table


def _sharded_spans(table: Table):
    """Shard-aligned row spans when ``table`` is sharded, else ``None``."""
    if getattr(table, "shard_rows", None) is None:
        return None
    from repro.data.shards import row_block_spans

    return row_block_spans(table, advise_cold=True)


class StandardScaler:
    """Per-feature standardization to zero mean / unit variance."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0) if X.shape[0] else np.zeros(X.shape[1])
        std = X.std(axis=0) if X.shape[0] else np.ones(X.shape[1])
        # Constant features scale to 1 so they transform to exactly zero.
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        return (np.asarray(X, dtype=np.float64) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


class TabularEncoder:
    """Encode a mixed-type table as a dense float matrix.

    Numeric columns are standardized (optional); each categorical column of
    cardinality ``c`` expands to ``c`` one-hot indicator columns.  The layout
    is deterministic: numeric columns first (schema order), then one-hot
    blocks (schema order).

    Parameters
    ----------
    standardize:
        Standardize numeric features using statistics from :meth:`fit`.
    """

    def __init__(self, *, standardize: bool = True) -> None:
        self.standardize = standardize
        self.schema_: Schema | None = None
        self._scaler: StandardScaler | None = None
        self._feature_names: list[str] | None = None

    # ------------------------------------------------------------------ #
    def fit(self, table: Table) -> "TabularEncoder":
        self.schema_ = table.schema
        names: list[str] = list(table.schema.numeric_names)
        for col in table.schema.categorical_names:
            spec = table.schema[col]
            names.extend(f"{col}={cat}" for cat in spec.categories)
        self._feature_names = names
        if self.standardize and table.schema.numeric_names:
            num = self._numeric_matrix(table)
            self._scaler = StandardScaler().fit(num)
        else:
            self._scaler = None
        return self

    def transform(self, table: Table) -> np.ndarray:
        if self.schema_ is None:
            raise RuntimeError("TabularEncoder is not fitted")
        if table.schema != self.schema_:
            raise ValueError("table schema does not match the fitted schema")
        spans = _sharded_spans(table)
        if spans is not None:
            # Shard-aligned block fill: same bits as the dense pass (every
            # step below is elementwise per row), but the transient heap is
            # one shard's sub-table instead of whole materialized columns.
            out = np.empty((table.n_rows, self.n_features), dtype=np.float64)
            for start, stop in spans:
                out[start:stop] = self.transform(table.row_slice(start, stop))
            return out
        blocks: list[np.ndarray] = []
        if self.schema_.numeric_names:
            num = self._numeric_matrix(table)
            if self._scaler is not None:
                num = self._scaler.transform(num)
            blocks.append(num)
        for col in self.schema_.categorical_names:
            spec = self.schema_[col]
            codes = table.column(col)
            onehot = np.zeros((table.n_rows, len(spec.categories)), dtype=np.float64)
            if table.n_rows:
                onehot[np.arange(table.n_rows), codes] = 1.0
            blocks.append(onehot)
        if not blocks:
            return np.zeros((table.n_rows, 0), dtype=np.float64)
        return np.hstack(blocks)

    def iter_transform_blocks(self, table: Table):
        """Yield ``(start, stop, X_block)`` encoded row blocks.

        The streaming face of :meth:`transform` for row-independent
        consumers (prediction): blocks follow the table's shard alignment
        (one block for dense tables), and each block's values are
        bit-identical to the matching rows of a full :meth:`transform`.
        Peak extra heap is one encoded block, never the full matrix.
        """
        if self.schema_ is None:
            raise RuntimeError("TabularEncoder is not fitted")
        spans = _sharded_spans(table)
        if spans is None:
            yield (0, table.n_rows, self.transform(table))
            return
        for start, stop in spans:
            yield (start, stop, self.transform(table.row_slice(start, stop)))

    def fit_transform(self, table: Table) -> np.ndarray:
        return self.fit(table).transform(table)

    def migrate(self, schema: Schema) -> "TabularEncoder":
        """Re-point a fitted encoder at a *layout-identical* schema.

        The schema-evolution rename path: a renamed column changes no
        stored values and no one-hot layout, so the fitted encoder (and
        any scaler statistics) stays exact — only the schema it asserts
        against, and the derived feature names, need updating.  Any
        layout difference (kind, vocabulary, or column order) is refused;
        those migrations must refit.
        """
        if self.schema_ is None:
            raise RuntimeError("TabularEncoder is not fitted")
        old_layout = [(c.kind, c.categories) for c in self.schema_.columns]
        new_layout = [(c.kind, c.categories) for c in schema.columns]
        if old_layout != new_layout:
            raise ValueError(
                "encoder can only migrate to a schema with an identical "
                "column layout (renames); this migration must refit"
            )
        self.schema_ = schema
        names: list[str] = list(schema.numeric_names)
        for col in schema.categorical_names:
            spec = schema[col]
            names.extend(f"{col}={cat}" for cat in spec.categories)
        self._feature_names = names
        return self

    # ------------------------------------------------------------------ #
    @property
    def feature_names(self) -> tuple[str, ...]:
        if self._feature_names is None:
            raise RuntimeError("TabularEncoder is not fitted")
        return tuple(self._feature_names)

    @property
    def n_features(self) -> int:
        return len(self.feature_names)

    def _numeric_matrix(self, table: Table) -> np.ndarray:
        assert self.schema_ is not None or table.schema is not None
        schema = self.schema_ or table.schema
        if not schema.numeric_names:
            return np.zeros((table.n_rows, 0), dtype=np.float64)
        spans = _sharded_spans(table)
        if spans is not None:
            # Block-fill the exact matrix column_stack would build (same
            # bits, so downstream scaler statistics are unchanged) without
            # materializing whole sharded columns first.
            out = np.empty(
                (table.n_rows, len(schema.numeric_names)), dtype=np.float64
            )
            for start, stop in spans:
                sub = table.row_slice(start, stop)
                for j, name in enumerate(schema.numeric_names):
                    out[start:stop, j] = sub.column(name)
            return out
        cols = [table.column(n) for n in schema.numeric_names]
        return np.column_stack(cols).astype(np.float64, copy=False)


class OrdinalEncoder:
    """Encode a table as a compact matrix of raw values / integer codes.

    Tree-based models can consume categorical codes directly (they split on
    one-hot columns otherwise); this encoder keeps one column per feature:
    numeric values as-is, categorical codes as floats.  Layout follows schema
    order.
    """

    def __init__(self) -> None:
        self.schema_: Schema | None = None

    def fit(self, table: Table) -> "OrdinalEncoder":
        self.schema_ = table.schema
        return self

    def transform(self, table: Table) -> np.ndarray:
        if self.schema_ is None:
            raise RuntimeError("OrdinalEncoder is not fitted")
        if table.schema != self.schema_:
            raise ValueError("table schema does not match the fitted schema")
        cols = [table.column(n).astype(np.float64) for n in self.schema_.names]
        if not cols:
            return np.zeros((table.n_rows, 0), dtype=np.float64)
        return np.column_stack(cols)

    def fit_transform(self, table: Table) -> np.ndarray:
        return self.fit(table).transform(table)
