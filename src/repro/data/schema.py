"""Column and table schemas for mixed-type tabular data.

A :class:`Schema` describes the columns of a :class:`~repro.data.table.Table`:
each column is either *numeric* (stored as float64) or *categorical* (stored
as int64 codes into a fixed string vocabulary).  Schemas are immutable and
hashable so tables, rules, and encoders can cheaply assert they refer to the
same feature space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

NUMERIC = "numeric"
CATEGORICAL = "categorical"


@dataclass(frozen=True)
class ColumnSpec:
    """Description of a single feature column.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    kind:
        ``"numeric"`` or ``"categorical"``.
    categories:
        Vocabulary for categorical columns (ordered; codes index into it).
        Must be empty for numeric columns.
    """

    name: str
    kind: str
    categories: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in (NUMERIC, CATEGORICAL):
            raise ValueError(f"kind must be 'numeric' or 'categorical', got {self.kind!r}")
        if self.kind == NUMERIC and self.categories:
            raise ValueError(f"numeric column {self.name!r} must not define categories")
        if self.kind == CATEGORICAL:
            if len(self.categories) < 2:
                raise ValueError(
                    f"categorical column {self.name!r} needs >= 2 categories, "
                    f"got {len(self.categories)}"
                )
            if len(set(self.categories)) != len(self.categories):
                raise ValueError(f"categorical column {self.name!r} has duplicate categories")

    @property
    def is_numeric(self) -> bool:
        return self.kind == NUMERIC

    @property
    def is_categorical(self) -> bool:
        return self.kind == CATEGORICAL

    def code_of(self, value: str) -> int:
        """Return the integer code of a category value."""
        try:
            return self.categories.index(value)
        except ValueError:
            raise KeyError(
                f"value {value!r} not in categories of column {self.name!r}: "
                f"{self.categories}"
            ) from None


@dataclass(frozen=True)
class Schema:
    """Ordered collection of :class:`ColumnSpec` with name lookup."""

    columns: tuple[ColumnSpec, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate column names in schema: {dupes}")
        object.__setattr__(self, "_index", {c.name: i for i, c in enumerate(self.columns)})

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[ColumnSpec]:
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> ColumnSpec:
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise KeyError(f"no column named {name!r} in schema") from None

    def position(self, name: str) -> int:
        """Return the ordinal position of column ``name``."""
        if name not in self._index:
            raise KeyError(f"no column named {name!r} in schema")
        return self._index[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def numeric_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns if c.is_numeric)

    @property
    def categorical_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns if c.is_categorical)

    def __hash__(self) -> int:
        return hash(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns
