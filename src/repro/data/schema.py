"""Column and table schemas for mixed-type tabular data.

A :class:`Schema` describes the columns of a :class:`~repro.data.table.Table`:
each column is either *numeric* (stored as float64) or *categorical* (stored
as int64 codes into a fixed string vocabulary).  Schemas are immutable and
hashable so tables, rules, and encoders can cheaply assert they refer to the
same feature space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

NUMERIC = "numeric"
CATEGORICAL = "categorical"


@dataclass(frozen=True)
class ColumnSpec:
    """Description of a single feature column.

    Parameters
    ----------
    name:
        Column name, unique within a schema.
    kind:
        ``"numeric"`` or ``"categorical"``.
    categories:
        Vocabulary for categorical columns (ordered; codes index into it).
        Must be empty for numeric columns.
    """

    name: str
    kind: str
    categories: tuple[str, ...] = ()
    _code_index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        if self.kind not in (NUMERIC, CATEGORICAL):
            raise ValueError(f"kind must be 'numeric' or 'categorical', got {self.kind!r}")
        if self.kind == NUMERIC and self.categories:
            raise ValueError(f"numeric column {self.name!r} must not define categories")
        if self.kind == CATEGORICAL:
            if len(self.categories) < 2:
                raise ValueError(
                    f"categorical column {self.name!r} needs >= 2 categories, "
                    f"got {len(self.categories)}"
                )
            if len(set(self.categories)) != len(self.categories):
                raise ValueError(f"categorical column {self.name!r} has duplicate categories")
        object.__setattr__(
            self, "_code_index", {cat: i for i, cat in enumerate(self.categories)}
        )

    @property
    def is_numeric(self) -> bool:
        return self.kind == NUMERIC

    @property
    def is_categorical(self) -> bool:
        return self.kind == CATEGORICAL

    def code_of(self, value: str) -> int:
        """Return the integer code of a category value (O(1) dict lookup)."""
        try:
            return self._code_index[value]
        except KeyError:
            raise KeyError(
                f"value {value!r} not in categories of column {self.name!r}: "
                f"{self.categories}"
            ) from None


@dataclass(frozen=True)
class Schema:
    """Ordered collection of :class:`ColumnSpec` with name lookup."""

    columns: tuple[ColumnSpec, ...]
    _index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate column names in schema: {dupes}")
        object.__setattr__(self, "_index", {c.name: i for i, c in enumerate(self.columns)})

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[ColumnSpec]:
        return iter(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> ColumnSpec:
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise KeyError(f"no column named {name!r} in schema") from None

    def position(self, name: str) -> int:
        """Return the ordinal position of column ``name``."""
        if name not in self._index:
            raise KeyError(f"no column named {name!r} in schema")
        return self._index[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    @property
    def numeric_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns if c.is_numeric)

    @property
    def categorical_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns if c.is_categorical)

    # ------------------------------------------------------------------ #
    # Fluent evolution surface.  Each method returns a *new* schema (this
    # class is immutable); the matching data-level operations live in
    # :mod:`repro.data.evolution` as replayable :class:`SchemaDelta`s.
    def with_column(
        self,
        name: str,
        kind: str = NUMERIC,
        categories: tuple[str, ...] = (),
        *,
        position: int | None = None,
    ) -> "Schema":
        """Return a schema with a new column appended (or at ``position``)."""
        if name in self._index:
            raise ValueError(f"column {name!r} already exists in schema")
        spec = ColumnSpec(name, kind, tuple(categories))
        cols = list(self.columns)
        cols.insert(len(cols) if position is None else position, spec)
        return Schema(tuple(cols))

    def without(self, name: str) -> "Schema":
        """Return a schema with column ``name`` removed."""
        pos = self.position(name)
        return Schema(self.columns[:pos] + self.columns[pos + 1 :])

    def renamed(self, old: str, new: str) -> "Schema":
        """Return a schema with column ``old`` renamed to ``new`` in place."""
        pos = self.position(old)
        if new in self._index and new != old:
            raise ValueError(f"column {new!r} already exists in schema")
        spec = self.columns[pos]
        return Schema(
            self.columns[:pos]
            + (ColumnSpec(new, spec.kind, spec.categories),)
            + self.columns[pos + 1 :]
        )

    def retyped(
        self, name: str, kind: str, categories: tuple[str, ...] = ()
    ) -> "Schema":
        """Return a schema with column ``name`` converted to ``kind``.

        Only the schema changes here; converting stored *values* needs an
        explicit cast policy — see
        :meth:`repro.data.evolution.SchemaDelta.retype_column`.
        """
        pos = self.position(name)
        return Schema(
            self.columns[:pos]
            + (ColumnSpec(name, kind, tuple(categories)),)
            + self.columns[pos + 1 :]
        )

    def __hash__(self) -> int:
        return hash(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns
