"""Train/test splitting, including the paper's coverage-aware (tcf) split.

FROTE's evaluation protocol (paper §5.1) partitions a dataset into the
feedback-rule coverage set and its complement, sends 80% of the complement to
train / 20% to test, and moves a *training coverage fraction* ``tcf`` of the
coverage set into train (the rest into test).  ``tcf = 0`` models a brand-new
rule with no support in the training data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import RandomState, check_random_state
from repro.utils.validation import check_fraction


def train_test_split(
    dataset: Dataset,
    *,
    test_fraction: float = 0.2,
    random_state: RandomState = None,
) -> tuple[Dataset, Dataset]:
    """Uniform random split into (train, test)."""
    test_fraction = check_fraction(test_fraction, name="test_fraction")
    rng = check_random_state(random_state)
    n = dataset.n
    perm = rng.permutation(n)
    n_test = int(round(n * test_fraction))
    test_idx = perm[:n_test]
    train_idx = perm[n_test:]
    return dataset.take(train_idx), dataset.take(test_idx)


@dataclass(frozen=True)
class CoverageSplit:
    """Result of :func:`coverage_aware_split`.

    Attributes
    ----------
    train, test:
        The two partitions.
    train_coverage_mask, test_coverage_mask:
        Boolean masks over the respective partitions marking rows that came
        from the rule-coverage set.
    """

    train: Dataset
    test: Dataset
    train_coverage_mask: np.ndarray
    test_coverage_mask: np.ndarray


def coverage_aware_split(
    dataset: Dataset,
    coverage_mask: np.ndarray,
    *,
    tcf: float,
    outside_test_fraction: float = 0.2,
    random_state: RandomState = None,
) -> CoverageSplit:
    """Split ``dataset`` honouring the paper's tcf protocol.

    Parameters
    ----------
    dataset:
        Full dataset ``D``.
    coverage_mask:
        Boolean mask over ``dataset`` marking ``cov(F, D)``.
    tcf:
        Fraction of the coverage set assigned to the training partition.
    outside_test_fraction:
        Test share for the outside-coverage set (paper uses 20%).
    """
    tcf = check_fraction(tcf, name="tcf")
    outside_test_fraction = check_fraction(
        outside_test_fraction, name="outside_test_fraction"
    )
    rng = check_random_state(random_state)
    mask = np.asarray(coverage_mask, dtype=bool)
    if mask.shape != (dataset.n,):
        raise ValueError(
            f"coverage_mask shape {mask.shape} does not match dataset of {dataset.n}"
        )

    cov_idx = np.flatnonzero(mask)
    out_idx = np.flatnonzero(~mask)

    out_perm = rng.permutation(out_idx)
    n_out_test = int(round(out_perm.size * outside_test_fraction))
    out_test = out_perm[:n_out_test]
    out_train = out_perm[n_out_test:]

    cov_perm = rng.permutation(cov_idx)
    n_cov_train = int(round(cov_perm.size * tcf))
    cov_train = cov_perm[:n_cov_train]
    cov_test = cov_perm[n_cov_train:]

    train_idx = np.concatenate([out_train, cov_train])
    test_idx = np.concatenate([out_test, cov_test])
    train_cov_mask = np.zeros(train_idx.size, dtype=bool)
    train_cov_mask[out_train.size :] = True
    test_cov_mask = np.zeros(test_idx.size, dtype=bool)
    test_cov_mask[out_test.size :] = True

    # Shuffle within each partition so coverage rows are not clustered at the
    # end (some learners are order-sensitive through batching).
    train_shuffle = rng.permutation(train_idx.size)
    test_shuffle = rng.permutation(test_idx.size)
    return CoverageSplit(
        train=dataset.take(train_idx[train_shuffle]),
        test=dataset.take(test_idx[test_shuffle]),
        train_coverage_mask=train_cov_mask[train_shuffle],
        test_coverage_mask=test_cov_mask[test_shuffle],
    )


def stratified_split(
    dataset: Dataset,
    *,
    test_fraction: float = 0.2,
    random_state: RandomState = None,
) -> tuple[Dataset, Dataset]:
    """Class-stratified split into (train, test).

    Keeps per-class proportions approximately equal across partitions, which
    matters for the small high-class-count datasets (e.g. wine-like with 7
    labels).
    """
    test_fraction = check_fraction(test_fraction, name="test_fraction")
    rng = check_random_state(random_state)
    train_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    for c in range(dataset.n_classes):
        idx = np.flatnonzero(dataset.y == c)
        perm = rng.permutation(idx)
        n_test = int(round(perm.size * test_fraction))
        test_parts.append(perm[:n_test])
        train_parts.append(perm[n_test:])
    train_idx = rng.permutation(np.concatenate(train_parts))
    test_idx = rng.permutation(np.concatenate(test_parts))
    return dataset.take(train_idx), dataset.take(test_idx)
