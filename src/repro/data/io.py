"""CSV import/export for tables and datasets.

Downstream users bring their own tabular data; this module round-trips
:class:`~repro.data.dataset.Dataset` through plain CSV using only the
standard library.  Column types are either declared via a
:class:`~repro.data.schema.Schema` or inferred (a column is numeric when
every non-empty value parses as a float; otherwise categorical with a
vocabulary built from the observed values).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.data.dataset import Dataset
from repro.data.schema import CATEGORICAL, NUMERIC, ColumnSpec, Schema
from repro.data.table import Table


def infer_schema(
    header: list[str], rows: list[list[str]], *, exclude: Iterable[str] = ()
) -> Schema:
    """Infer a schema from CSV text: float-parsable columns are numeric."""
    exclude = set(exclude)
    specs: list[ColumnSpec] = []
    for j, name in enumerate(header):
        if name in exclude:
            continue
        values = [r[j] for r in rows if j < len(r)]
        if _all_numeric(values):
            specs.append(ColumnSpec(name, NUMERIC))
        else:
            vocab = tuple(dict.fromkeys(v for v in values if v != ""))
            if len(vocab) < 2:
                vocab = vocab + ("<other>",) * (2 - len(vocab))
            specs.append(ColumnSpec(name, CATEGORICAL, vocab))
    return Schema(tuple(specs))


def _all_numeric(values: list[str]) -> bool:
    saw_value = False
    for v in values:
        if v == "":
            continue
        saw_value = True
        try:
            float(v)
        except ValueError:
            return False
    return saw_value


def read_csv(
    path: str | Path,
    *,
    label_column: str,
    schema: Schema | None = None,
    label_names: tuple[str, ...] | None = None,
) -> Dataset:
    """Load a CSV file into a :class:`Dataset`.

    Parameters
    ----------
    path:
        CSV file with a header row.
    label_column:
        Column holding the class label.
    schema:
        Feature schema; inferred from the data when omitted.
    label_names:
        Class vocabulary; inferred (sorted unique labels) when omitted.
    """
    text = Path(path).read_text()
    return read_csv_text(
        text, label_column=label_column, schema=schema, label_names=label_names
    )


def read_csv_text(
    text: str,
    *,
    label_column: str,
    schema: Schema | None = None,
    label_names: tuple[str, ...] | None = None,
) -> Dataset:
    """Parse CSV content (see :func:`read_csv`)."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty CSV input") from None
    rows = [r for r in reader if r]
    if label_column not in header:
        raise ValueError(f"label column {label_column!r} not in header {header}")
    label_j = header.index(label_column)
    raw_labels = [r[label_j] for r in rows]
    if label_names is None:
        label_names = tuple(sorted(set(raw_labels)))
    if len(label_names) < 2:
        raise ValueError(f"need >= 2 classes, found {label_names}")
    label_index = {name: i for i, name in enumerate(label_names)}
    try:
        y = np.array([label_index[v] for v in raw_labels], dtype=np.int64)
    except KeyError as exc:
        raise ValueError(f"label {exc.args[0]!r} not in label_names {label_names}") from None

    if schema is None:
        schema = infer_schema(header, rows, exclude=[label_column])
    columns: dict[str, np.ndarray] = {}
    for spec in schema:
        if spec.name not in header:
            raise ValueError(f"schema column {spec.name!r} missing from CSV header")
        j = header.index(spec.name)
        values = [r[j] for r in rows]
        if spec.is_numeric:
            columns[spec.name] = np.array(
                [float(v) if v != "" else np.nan for v in values]
            )
            if np.isnan(columns[spec.name]).any():
                raise ValueError(
                    f"numeric column {spec.name!r} has missing values; "
                    "impute before loading"
                )
        else:
            codes = np.empty(len(values), dtype=np.int64)
            for i, v in enumerate(values):
                codes[i] = spec.code_of(v)
            columns[spec.name] = codes
    return Dataset(Table(schema, columns, copy=False), y, label_names)


def write_csv(dataset: Dataset, path: str | Path, *, label_column: str = "label") -> None:
    """Write a dataset to CSV (categoricals decoded to their string values)."""
    Path(path).write_text(to_csv_text(dataset, label_column=label_column))


def to_csv_text(dataset: Dataset, *, label_column: str = "label") -> str:
    """Render a dataset as CSV content (see :func:`write_csv`)."""
    if label_column in dataset.X.schema:
        raise ValueError(
            f"label column name {label_column!r} collides with a feature column"
        )
    buf = io.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    names = list(dataset.X.schema.names)
    writer.writerow(names + [label_column])
    decoded = {}
    for spec in dataset.X.schema:
        if spec.is_categorical:
            decoded[spec.name] = dataset.X.decoded(spec.name)
    for i in range(dataset.n):
        row = []
        for spec in dataset.X.schema:
            if spec.is_numeric:
                row.append(repr(float(dataset.X.column(spec.name)[i])))
            else:
                row.append(decoded[spec.name][i])
        row.append(dataset.label_names[int(dataset.y[i])])
        writer.writerow(row)
    return buf.getvalue()
