"""Tabular data substrate: schemas, tables, datasets, encoders, splits."""

from repro.data.builder import DatasetBuilder, GrowableArray, TableBuilder
from repro.data.dataset import Dataset
from repro.data.shards import (
    ShardedArray,
    ShardedTable,
    SpillDir,
    SpillPolicy,
    spill_policy_for,
)
from repro.data.encoding import OrdinalEncoder, StandardScaler, TabularEncoder
from repro.data.evolution import (
    Migration,
    SchemaDelta,
    SchemaMigrationError,
    SchemaVersion,
    lineage,
    migrate_dataset,
    migrate_table,
    schema_fingerprint,
)
from repro.data.io import (
    infer_schema,
    read_csv,
    read_csv_text,
    to_csv_text,
    write_csv,
)
from repro.data.schema import CATEGORICAL, NUMERIC, ColumnSpec, Schema
from repro.data.split import (
    CoverageSplit,
    coverage_aware_split,
    stratified_split,
    train_test_split,
)
from repro.data.table import Table, make_schema

__all__ = [
    "CATEGORICAL",
    "NUMERIC",
    "ColumnSpec",
    "Schema",
    "Table",
    "make_schema",
    "TableBuilder",
    "DatasetBuilder",
    "GrowableArray",
    "ShardedArray",
    "ShardedTable",
    "SpillDir",
    "SpillPolicy",
    "spill_policy_for",
    "Dataset",
    "SchemaDelta",
    "SchemaMigrationError",
    "SchemaVersion",
    "Migration",
    "schema_fingerprint",
    "migrate_table",
    "migrate_dataset",
    "lineage",
    "TabularEncoder",
    "OrdinalEncoder",
    "StandardScaler",
    "train_test_split",
    "stratified_split",
    "coverage_aware_split",
    "CoverageSplit",
    "read_csv",
    "read_csv_text",
    "write_csv",
    "to_csv_text",
    "infer_schema",
]
