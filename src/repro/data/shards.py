"""Out-of-core sharded column storage: chunked buffers that spill to disk.

The append builders of :mod:`repro.data.builder` keep one growable buffer
per column, which is perfect until the active dataset outgrows RAM — the
ROADMAP's beyond-RAM workload class.  This module shards those buffers
into fixed-size chunks (:class:`ShardedArray`) whose *sealed* chunks —
fully below the committed length, hence immutable — are tracked in an LRU
resident set bounded by a byte budget (:class:`SpillPolicy`).  Chunks
evicted from the resident set are written once to a spill file under a
:class:`SpillDir` and re-served through read-only ``numpy.memmap`` views,
so reads of cold data stream pages through the OS cache instead of
occupying heap.

Contract parity with :class:`~repro.data.builder.GrowableArray`:

* committed rows are immutable and every committed-prefix view ever
  returned stays valid (spill files are written once per seal and never
  rewritten in place; re-spills after a rollback go to a *fresh* file so
  open memory maps keep reading the bytes they always had);
* ``write_at`` may only target rows at or past the committed length, so a
  sealed shard is never written again — staged rows always land in
  unsealed heap shards;
* ``truncate`` (checkpoint/rollback) may unseal the boundary shard,
  reloading it from its spill file into a writable heap chunk.

:class:`ShardedTable` is the snapshot view the builders hand out: a
:class:`~repro.data.table.Table` whose row-oriented accessors
(``row_slice``, ``take``, ``loc_mask``, ``row``) read only the shards they
overlap, while ``column`` stays available as the dense escape hatch
(materializes one column — correct everywhere, resident-set-friendly
nowhere).

Nothing here changes the default path: builders constructed without a
:class:`SpillPolicy` use the dense :class:`GrowableArray` storage
bit-for-bit as before.  The policy is selected by
``FroteConfig(max_resident_mb=...)`` / ``EditSession.out_of_core(...)``.
"""

from __future__ import annotations

import itertools
import mmap
import os
import shutil
import tempfile
import weakref
from collections import OrderedDict
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro.data.schema import Schema
from repro.data.table import Table

__all__ = [
    "DEFAULT_SHARD_ROWS",
    "SpillDir",
    "SpillPolicy",
    "ShardedArray",
    "ShardedTable",
    "spill_policy_for",
]

#: Rows per shard unless the policy overrides it.  At 8 bytes per element
#: this is 512 KiB per numeric shard — large enough that per-shard Python
#: overhead vanishes, small enough that the LRU has real granularity.
DEFAULT_SHARD_ROWS = 65536

_MB = 1024 * 1024


class SpillDir:
    """Owns the directory holding a builder's shard spill files.

    Parameters
    ----------
    base:
        Parent directory for the spill directory; ``None`` uses the
        platform temp dir.

    Notes
    -----
    The directory is deleted when the :class:`SpillDir` is garbage
    collected or explicitly :meth:`close` d.  Shards hold a reference to
    their policy (which holds the :class:`SpillDir`), so spill files
    outlive every snapshot that can still read them.
    """

    def __init__(self, base: str | os.PathLike | None = None) -> None:
        self.path = Path(
            tempfile.mkdtemp(prefix="repro-spill-", dir=None if base is None else str(base))
        )
        self._count = itertools.count()
        self._finalizer = weakref.finalize(
            self, shutil.rmtree, str(self.path), True
        )

    @property
    def closed(self) -> bool:
        return not self._finalizer.alive

    def new_file(self, hint: str = "shard") -> Path:
        """Reserve a fresh spill-file path (files are written exactly once)."""
        if self.closed:
            raise RuntimeError("SpillDir is closed")
        return self.path / f"{next(self._count):06d}-{hint}.bin"

    def close(self) -> None:
        """Delete the spill directory now instead of at collection time."""
        self._finalizer()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"SpillDir({str(self.path)!r}, {state})"


class _Shard:
    """One fixed-size chunk of a :class:`ShardedArray`.

    A shard is in exactly one of three states:

    * **heap, unsealed** — a writable array; the tail of the column and
      any staged rows live here;
    * **heap, sealed** — immutable, counted against the policy's resident
      budget, eligible for eviction;
    * **spilled** — the heap copy is dropped; reads go through a lazily
      opened read-only ``numpy.memmap`` of the spill file.
    """

    __slots__ = ("dtype", "rows", "heap", "path", "sealed", "_mm", "__weakref__")

    def __init__(self, dtype: np.dtype, rows: int) -> None:
        self.dtype = dtype
        self.rows = rows
        self.heap: np.ndarray | None = np.empty(rows, dtype=dtype)
        self.path: Path | None = None
        self.sealed = False
        self._mm: np.memmap | None = None

    @property
    def nbytes(self) -> int:
        return self.rows * self.dtype.itemsize

    @property
    def spilled(self) -> bool:
        return self.heap is None

    def read(self) -> np.ndarray:
        """Read-only view of the shard's data (heap if resident, else memmap)."""
        if self.heap is not None:
            view = self.heap[:]
            view.flags.writeable = False
            return view
        if self._mm is None:
            self._mm = np.memmap(
                self.path, dtype=self.dtype, mode="r", shape=(self.rows,)
            )
            # Random access is the common read pattern (gathers, row
            # slices); without this the kernel's fault-around readahead
            # pulls a cluster of pages per touched row and a sparse
            # gather can fault in tens of MB it never reads.
            if hasattr(mmap, "MADV_RANDOM"):
                try:
                    self._mm._mmap.madvise(mmap.MADV_RANDOM)  # type: ignore[attr-defined]
                except (AttributeError, OSError):  # pragma: no cover
                    pass
        return self._mm

    def read_range(self, lo: int, hi: int) -> np.ndarray:
        """Elements ``[lo, hi)`` for a caller that will copy them.

        Heap shards and already-mapped spilled shards serve a view;
        a spilled shard with no mapping open is read with ``os.pread``
        instead of creating one — the copying read paths (multi-shard
        slices, full-column materialization) would otherwise accumulate
        one cached mapping per spilled shard, walking a beyond-RAM
        dataset straight into ``vm.max_map_count``.
        """
        if self.heap is not None:
            return self.heap[lo:hi]
        if self._mm is not None:
            return self._mm[lo:hi]
        item = self.dtype.itemsize
        fd = os.open(self.path, os.O_RDONLY)
        try:
            buf = os.pread(fd, (hi - lo) * item, lo * item)
        finally:
            os.close(fd)
        return np.frombuffer(buf, dtype=self.dtype)

    def gather_local(self, idx: np.ndarray) -> np.ndarray:
        """Elements at shard-local indices ``idx`` (sorted or not).

        Heap shards fancy-index directly.  Spilled shards read via
        ``os.pread`` instead of the mapping: faulting mapped pages costs
        a fault-around cluster (~16 pages) per touched row regardless of
        ``MADV_RANDOM``, so a sparse gather through the memmap would
        inflate RSS by orders of magnitude over the bytes actually
        needed.  Runs that span a small range coalesce into one read.
        """
        if self.heap is not None:
            return self.heap[idx]
        item = self.dtype.itemsize
        lo, hi = int(idx.min()), int(idx.max())
        span = hi - lo + 1
        fd = os.open(self.path, os.O_RDONLY)
        try:
            if span * item <= max(idx.shape[0] * item * 8, 1 << 16):
                buf = os.pread(fd, span * item, lo * item)
                return np.frombuffer(buf, dtype=self.dtype)[idx - lo]
            out = np.empty(idx.shape[0], dtype=self.dtype)
            for j, i in enumerate(idx):
                out[j] = np.frombuffer(
                    os.pread(fd, item, int(i) * item), dtype=self.dtype
                )[0]
            return out
        finally:
            os.close(fd)

    def spill(self, spilldir: SpillDir) -> None:
        """Write the heap copy to a fresh spill file and drop it.

        Always a fresh file: a shard re-sealed after a rollback may have
        different bytes than its previous spill, and rewriting in place
        would change (or, mid-truncate, SIGBUS) views served from the old
        mapping.  The stale file is unlinked — open maps keep the inode.
        """
        assert self.heap is not None and self.sealed
        path = spilldir.new_file()
        self.heap.tofile(path)
        self._forget_file()
        self.path = path
        self.heap = None

    def unseal(self, *, reload: bool) -> None:
        """Back out of the sealed state (rollback across this shard).

        ``reload`` pulls the spilled bytes back into a writable heap
        array (the shard still holds committed rows); without it the
        shard's contents are dead and a blank heap chunk suffices.
        """
        if self.heap is None:
            heap = np.empty(self.rows, dtype=self.dtype)
            if reload:
                heap[:] = np.fromfile(self.path, dtype=self.dtype, count=self.rows)
            self.heap = heap
        self._forget_file()
        self.sealed = False

    def _forget_file(self) -> None:
        self._mm = None
        if self.path is not None:
            try:
                os.unlink(self.path)
            except OSError:
                pass
            self.path = None

    def advise_cold(self) -> None:
        """Tell the OS the mapped pages won't be needed (drops them from RSS)."""
        if self._mm is None or not hasattr(mmap, "MADV_DONTNEED"):
            return
        try:
            self._mm._mmap.madvise(mmap.MADV_DONTNEED)  # type: ignore[attr-defined]
        except (AttributeError, OSError):  # pragma: no cover - platform-dependent
            pass


class SpillPolicy:
    """Sharding and residency policy shared by one builder's columns.

    Parameters
    ----------
    max_resident_bytes:
        Byte budget for the LRU set of *sealed* heap shards, across every
        :class:`ShardedArray` sharing this policy.  Unsealed tail shards
        (the working set being appended to) and the spill machinery are
        outside the budget by design.
    shard_rows:
        Rows per shard (:data:`DEFAULT_SHARD_ROWS` when ``None``).
    spill:
        Spill-file directory; a fresh private :class:`SpillDir` when
        ``None``.
    """

    def __init__(
        self,
        max_resident_bytes: int,
        *,
        shard_rows: int | None = None,
        spill: SpillDir | None = None,
    ) -> None:
        if max_resident_bytes < 0:
            raise ValueError(
                f"max_resident_bytes must be >= 0, got {max_resident_bytes}"
            )
        rows = DEFAULT_SHARD_ROWS if shard_rows is None else int(shard_rows)
        if rows < 1:
            raise ValueError(f"shard_rows must be >= 1, got {rows}")
        self.max_resident_bytes = int(max_resident_bytes)
        self.shard_rows = rows
        self.spill = spill if spill is not None else SpillDir()
        self.spill_count = 0
        self._lru: OrderedDict[_Shard, int] = OrderedDict()
        self._resident_bytes = 0

    @classmethod
    def from_mb(cls, max_resident_mb: float, **kwargs) -> "SpillPolicy":
        """Budget given in MiB (the :class:`FroteConfig` unit)."""
        return cls(int(max_resident_mb * _MB), **kwargs)

    @property
    def resident_bytes(self) -> int:
        """Heap bytes currently held by sealed shards in the LRU set."""
        return self._resident_bytes

    # ------------------------------------------------------------------ #
    def note_sealed(self, shard: _Shard) -> None:
        """Admit a freshly sealed shard and evict past the budget."""
        self._lru[shard] = shard.nbytes
        self._resident_bytes += shard.nbytes
        while self._resident_bytes > self.max_resident_bytes and self._lru:
            victim, nbytes = self._lru.popitem(last=False)
            self._resident_bytes -= nbytes
            victim.spill(self.spill)
            self.spill_count += 1

    def touch(self, shard: _Shard) -> None:
        """Mark a resident shard recently used (no-op for spilled shards)."""
        if shard in self._lru:
            self._lru.move_to_end(shard)

    def forget(self, shard: _Shard) -> None:
        """Drop a shard from the resident set (it is being unsealed)."""
        nbytes = self._lru.pop(shard, None)
        if nbytes is not None:
            self._resident_bytes -= nbytes


def spill_policy_for(config) -> SpillPolicy | None:
    """Build the spill policy a config asks for (``None`` = dense path).

    Duck-typed on ``max_resident_mb`` / ``shard_rows`` / ``spill_dir`` so
    the data layer never imports :class:`~repro.core.config.FroteConfig`.
    Each call returns a fresh policy with a private :class:`SpillDir`:
    builders must not share residency accounting across rebuilds, or
    dropped shards would pin the budget forever.
    """
    mb = getattr(config, "max_resident_mb", None)
    if mb is None:
        return None
    base = getattr(config, "spill_dir", None)
    return SpillPolicy.from_mb(
        mb,
        shard_rows=getattr(config, "shard_rows", None),
        spill=SpillDir(base) if base is not None else None,
    )


class ShardedArray:
    """A 1-D append-only array stored as fixed-size spillable shards.

    Drop-in storage replacement for
    :class:`~repro.data.builder.GrowableArray` behind the append
    builders: the mutation API (``write_at`` / ``append`` /
    ``set_length`` / ``truncate``) is identical, while reads go through
    shard-aware accessors (:meth:`slice`, :meth:`gather`, :meth:`view`)
    so consumers touch only the chunks they need.

    Parameters
    ----------
    dtype:
        Element dtype.
    policy:
        Shared :class:`SpillPolicy` (sharding width + resident budget).
    initial:
        Optional initial contents (copied into shards once).
    """

    __slots__ = ("dtype", "policy", "_shards", "_n", "_sealed_upto")

    def __init__(
        self,
        dtype: np.dtype,
        *,
        policy: SpillPolicy,
        initial: np.ndarray | None = None,
    ) -> None:
        self.dtype = np.dtype(dtype)
        self.policy = policy
        self._shards: list[_Shard] = []
        self._n = 0
        self._sealed_upto = 0  # shards [0, _sealed_upto) are sealed
        if initial is not None:
            self.append(np.asarray(initial, dtype=self.dtype))

    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of live (committed) elements."""
        return self._n

    @property
    def shard_rows(self) -> int:
        return self.policy.shard_rows

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    @property
    def n_spilled(self) -> int:
        return sum(1 for s in self._shards if s.spilled)

    @property
    def capacity(self) -> int:
        return len(self._shards) * self.shard_rows

    def storage_stats(self) -> dict[str, int]:
        """Shard counts and byte totals, for tests and the perf harness."""
        heap = sum(s.nbytes for s in self._shards if not s.spilled)
        spilled = sum(s.nbytes for s in self._shards if s.spilled)
        return {
            "n_shards": self.n_shards,
            "n_spilled": self.n_spilled,
            "heap_bytes": heap,
            "spilled_bytes": spilled,
        }

    # ------------------------------------------------------------------ #
    # Mutation (GrowableArray-compatible).
    def _ensure_capacity(self, rows: int) -> None:
        while self.capacity < rows:
            self._shards.append(_Shard(self.dtype, self.shard_rows))

    def write_at(self, start: int, values: np.ndarray) -> None:
        """Write ``values`` at ``start`` without moving the live length.

        ``start`` must not precede the live length (committed elements
        are immutable).  Writes only ever land in unsealed heap shards:
        sealing stops strictly below the committed length.
        """
        values = np.asarray(values, dtype=self.dtype)
        if start < self._n:
            raise ValueError(
                f"cannot overwrite committed elements (start={start} < n={self._n})"
            )
        self._ensure_capacity(start + values.shape[0])
        R = self.shard_rows
        pos, off = start, 0
        total = values.shape[0]
        while off < total:
            si, lo = divmod(pos, R)
            take = min(R - lo, total - off)
            shard = self._shards[si]
            assert not shard.sealed, "staged write hit a sealed shard"
            shard.heap[lo : lo + take] = values[off : off + take]
            pos += take
            off += take

    def append(self, values: np.ndarray) -> None:
        """Append ``values`` and advance the live length."""
        values = np.asarray(values, dtype=self.dtype)
        start = self._n
        self.write_at(start, values)
        self.set_length(start + values.shape[0])

    def set_length(self, n: int) -> None:
        """Advance the live length to ``n`` (after :meth:`write_at`).

        Shards that are now entirely below the committed length are
        sealed and handed to the policy, which may spill the
        least-recently-used ones past the resident budget.
        """
        if n < self._n:
            raise ValueError(f"cannot shrink committed length {self._n} to {n}")
        if n > self.capacity:
            raise ValueError(f"length {n} exceeds capacity {self.capacity}")
        self._n = n
        boundary = n // self.shard_rows
        for i in range(self._sealed_upto, boundary):
            shard = self._shards[i]
            shard.sealed = True
            self.policy.note_sealed(shard)
        self._sealed_upto = max(self._sealed_upto, boundary)

    def truncate(self, n: int) -> None:
        """Shrink the live length to ``n`` (rollback of appends).

        Same caveat as :meth:`GrowableArray.truncate`: the caller owns
        the invariant that no consumer still relies on a view past
        ``n``.  Sealed shards at or past the new boundary are unsealed;
        the boundary shard reloads its committed prefix from its spill
        file if it was already evicted.
        """
        if not 0 <= n <= self._n:
            raise ValueError(f"cannot truncate length {self._n} to {n}")
        boundary, rem = divmod(n, self.shard_rows)
        for i in range(boundary, self._sealed_upto):
            shard = self._shards[i]
            self.policy.forget(shard)
            shard.unseal(reload=(i == boundary and rem > 0))
        self._sealed_upto = min(self._sealed_upto, boundary)
        self._n = n

    # ------------------------------------------------------------------ #
    # Reads.
    def slice(self, start: int, stop: int) -> np.ndarray:
        """Elements ``[start, stop)`` as a read-only array.

        Zero-copy (a view of the heap chunk or spilled memmap) when the
        range lives in one shard; a fresh ``stop - start`` sized array
        otherwise.  Bounds are against written capacity, not the live
        length, so staged-snapshot reads work — callers normalize.
        """
        if not 0 <= start <= stop <= self.capacity:
            raise ValueError(
                f"slice [{start}, {stop}) out of range for capacity {self.capacity}"
            )
        if stop == start:
            out = np.empty(0, dtype=self.dtype)
            out.flags.writeable = False
            return out
        R = self.shard_rows
        first, last = start // R, (stop - 1) // R
        if first == last:
            shard = self._shards[first]
            self.policy.touch(shard)
            view = shard.read()[start - first * R : stop - first * R]
            view.flags.writeable = False
            return view
        out = np.empty(stop - start, dtype=self.dtype)
        pos = start
        while pos < stop:
            si, lo = divmod(pos, R)
            take = min(R - lo, stop - pos)
            shard = self._shards[si]
            self.policy.touch(shard)
            out[pos - start : pos - start + take] = shard.read_range(lo, lo + take)
            pos += take
        out.flags.writeable = False
        return out

    def gather(self, indices: np.ndarray, n: int | None = None) -> np.ndarray:
        """Elements at ``indices`` (negatives allowed), in order.

        ``n`` bounds the addressable range (default: the live length);
        reads group by shard so each chunk is visited once.
        """
        bound = self._n if n is None else n
        idx = np.asarray(indices, dtype=np.intp)
        flat = idx.reshape(-1)
        if flat.size == 0:
            return np.empty(idx.shape, dtype=self.dtype)
        neg = flat < 0
        if neg.any():
            flat = np.where(neg, flat + bound, flat)
        bad = (flat < 0) | (flat >= bound)
        if bad.any():
            raise IndexError(
                f"index {int(np.asarray(indices).reshape(-1)[int(np.argmax(bad))])} "
                f"out of range for {bound} elements"
            )
        # Group by shard via one sort instead of a full boolean mask per
        # shard (O(n log n) total, not O(n_shards · n)); sorted locals
        # also give gather_local contiguous runs to coalesce.
        out = np.empty(flat.shape[0], dtype=self.dtype)
        R = self.shard_rows
        order = np.argsort(flat, kind="stable")
        sorted_idx = flat[order]
        pos = 0
        while pos < sorted_idx.shape[0]:
            si = int(sorted_idx[pos]) // R
            end = int(np.searchsorted(sorted_idx, (si + 1) * R, side="left"))
            shard = self._shards[si]
            self.policy.touch(shard)
            out[order[pos:end]] = shard.gather_local(sorted_idx[pos:end] - si * R)
            pos = end
        return out.reshape(idx.shape)

    def view(self, n: int | None = None) -> np.ndarray:
        """Read-only array of the first ``n`` (default: live) elements.

        The dense escape hatch: zero-copy while the range fits one
        shard, a full materialization (O(n) heap) past that — callers
        that can use :meth:`slice` / :meth:`gather` should.
        """
        if n is None:
            n = self._n
        if n > self.capacity:
            raise ValueError(f"view of {n} elements exceeds capacity")
        return self.slice(0, n)

    def advise_cold(self) -> None:
        """Drop spilled shards' mapped pages from the OS page cache.

        Streaming workloads call this after a cold scan so transient
        memmap reads do not accumulate in the process RSS.
        """
        for shard in self._shards:
            if shard.spilled:
                shard.advise_cold()


def row_block_spans(table, block_rows: int | None = None, *, advise_cold: bool = False):
    """Yield ``(start, stop)`` row spans for a blocked pass over ``table``.

    For a :class:`ShardedTable` the spans align with its shard width (each
    ``table.row_slice(start, stop)`` then reads exactly one shard per
    column, zero-copy); for a plain dense :class:`~repro.data.table.Table`
    a single full-range span is yielded — the rows are already resident,
    so chunking would only add overhead.  ``block_rows`` overrides the
    span width in both cases.

    With ``advise_cold=True``, ``table.advise_cold()`` (when present) runs
    each time the generator is advanced past a span — i.e. after the
    consumer has processed the previous block.  A sequential cold scan
    reads each spilled shard exactly once, so dropping its mapped pages
    immediately keeps the whole pass's RSS peak at O(block) instead of
    letting the full spilled set accumulate in resident memory.

    Row-independent whole-table passes (rule coverage, ``frs.assign``,
    encoder transforms, prediction) iterate these spans instead of
    densifying via :meth:`ShardedTable.column`, keeping their transient
    working set O(block) instead of O(n).
    """
    n = int(table.n_rows)
    advise = getattr(table, "advise_cold", None) if advise_cold else None
    if block_rows is None:
        block_rows = getattr(table, "shard_rows", None)
    if block_rows is None or block_rows >= n:
        if n:
            yield (0, n)
        if advise is not None:
            advise()
        return
    if block_rows < 1:
        raise ValueError(f"block_rows must be >= 1, got {block_rows}")
    for start in range(0, n, block_rows):
        yield (start, min(start + block_rows, n))
        if advise is not None:
            advise()


class _LazyColumns(Mapping):
    """Mapping façade over sharded columns, materializing on access.

    Base-class :class:`Table` methods that touch ``self._data`` directly
    (``concat``, ``with_column``) keep working against a sharded
    snapshot — at full-column materialization cost, which is exactly the
    dense escape hatch :meth:`ShardedTable.column` documents.
    """

    __slots__ = ("_arrays", "_n")

    def __init__(self, arrays: dict[str, ShardedArray], n: int) -> None:
        self._arrays = arrays
        self._n = n

    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name].view(self._n)

    def __iter__(self) -> Iterator[str]:
        return iter(self._arrays)

    def __len__(self) -> int:
        return len(self._arrays)


class ShardedTable(Table):
    """A :class:`Table` snapshot served from sharded, spillable storage.

    Handed out by :meth:`TableBuilder.snapshot` when a
    :class:`SpillPolicy` is active.  Row-oriented accessors are
    shard-aware and touch only the chunks they overlap; ``column``
    materializes (the dense escape hatch for whole-column consumers such
    as model encoders).  All methods return plain dense tables/arrays,
    so downstream code sees ordinary NumPy data.
    """

    __slots__ = ("_arrays",)

    @classmethod
    def _wrap_sharded(
        cls, schema: Schema, arrays: dict[str, ShardedArray], n_rows: int
    ) -> "ShardedTable":
        table = object.__new__(cls)
        table.schema = schema
        table._arrays = arrays
        table._data = _LazyColumns(arrays, n_rows)
        table._n_rows = int(n_rows)
        return table

    # ------------------------------------------------------------------ #
    @property
    def shard_rows(self) -> int:
        """Rows per shard (every column shares one :class:`SpillPolicy`)."""
        for arr in self._arrays.values():
            return arr.shard_rows
        return DEFAULT_SHARD_ROWS

    def column(self, name: str) -> np.ndarray:
        """Materialized full column (read-only); prefer the row-oriented
        accessors when the resident budget matters."""
        try:
            arr = self._arrays[name]
        except KeyError:
            raise KeyError(f"no column named {name!r}") from None
        return arr.view(self._n_rows)

    def row_slice(self, start: int, stop: int) -> Table:
        """Rows ``[start, stop)`` reading only the shards they overlap.

        Zero-copy (heap or memmap views) when the range fits one shard
        per column; the result is a plain dense :class:`Table`.
        """
        start, stop, _ = slice(start, stop).indices(self._n_rows)
        stop = max(stop, start)
        cols = {
            name: arr.slice(start, stop) for name, arr in self._arrays.items()
        }
        return Table._wrap(self.schema, cols, stop - start)

    def take(self, indices: np.ndarray) -> Table:
        """Rows at ``indices`` via per-shard grouped gathers."""
        idx = np.asarray(indices, dtype=np.intp)
        cols = {
            name: arr.gather(idx, self._n_rows)
            for name, arr in self._arrays.items()
        }
        return Table(self.schema, cols, copy=False)

    def loc_mask(self, mask: np.ndarray) -> Table:
        """Rows where ``mask`` is True (shard-grouped, like :meth:`take`)."""
        m = np.asarray(mask, dtype=bool)
        if m.shape != (self._n_rows,):
            raise ValueError(
                f"mask shape {m.shape} does not match table with {self._n_rows} rows"
            )
        return self.take(np.flatnonzero(m))

    def row(self, i: int) -> dict[str, float | int]:
        """Row ``i`` reading one element per column (no materialization).

        Routed through :meth:`ShardedArray.gather` so spilled shards are
        read with ``pread`` — a single-element mapped fault would drag in
        a fault-around cluster of pages per column.
        """
        if not -self._n_rows <= i < self._n_rows:
            raise IndexError(f"row index {i} out of range for {self._n_rows} rows")
        probe = np.array([i], dtype=np.intp)
        return {
            name: arr.gather(probe, self._n_rows)[0].item()
            for name, arr in self._arrays.items()
        }

    def row_decoded(self, i: int) -> dict[str, float | str]:
        """Row ``i`` with categorical codes decoded to strings."""
        raw = self.row(i)
        out: dict[str, float | str] = {}
        for spec in self.schema:
            v = raw[spec.name]
            out[spec.name] = (
                spec.categories[int(v)] if spec.is_categorical else float(v)
            )
        return out

    # ------------------------------------------------------------------ #
    def advise_cold(self) -> None:
        """Drop this snapshot's spilled pages from the OS page cache."""
        for arr in self._arrays.values():
            arr.advise_cold()

    def storage_stats(self) -> dict[str, int]:
        """Aggregate shard statistics across all columns."""
        total: dict[str, int] = {}
        for arr in self._arrays.values():
            for key, value in arr.storage_stats().items():
                total[key] = total.get(key, 0) + value
        return total
