"""FROTE: Feedback Rule-Driven Oversampling for Editing Models.

Full reproduction of Alkan et al. (MLSYS 2022).  The public API surface:

* :class:`repro.FROTE` / :func:`repro.run_frote` — the model-editing loop;
* :mod:`repro.rules` — feedback rules (parse, learn, perturb, resolve);
* :mod:`repro.models` — from-scratch LR / RF / GBDT classifiers and the
  black-box training-algorithm wrapper;
* :mod:`repro.datasets` — synthetic UCI-equivalent benchmark datasets;
* :mod:`repro.baselines` — the Overlay post-processing baseline;
* :mod:`repro.experiments` — drivers regenerating every paper table/figure.

Quick start::

    from repro import FROTE, FroteConfig, parse_rule, FeedbackRuleSet
    from repro.models import paper_algorithm
    from repro.datasets import load_dataset

    data = load_dataset("adult")
    rule = parse_rule("age < 29 AND education = 'bachelors' => >50K",
                      data.X.schema, data.label_names)
    frote = FROTE(paper_algorithm("RF"), FeedbackRuleSet((rule,)),
                  FroteConfig(tau=30, q=0.5))
    result = frote.run(data)
    edited_model = result.model
"""

from repro.core import FROTE, Evaluation, FroteConfig, FroteResult, evaluate_model, run_frote
from repro.data import Dataset, Schema, Table, make_schema
from repro.rules import (
    Clause,
    FeedbackRule,
    FeedbackRuleSet,
    Predicate,
    clause,
    parse_rule,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "FROTE",
    "FroteConfig",
    "FroteResult",
    "run_frote",
    "Evaluation",
    "evaluate_model",
    "Dataset",
    "Table",
    "Schema",
    "make_schema",
    "Predicate",
    "Clause",
    "clause",
    "FeedbackRule",
    "FeedbackRuleSet",
    "parse_rule",
]
