"""FROTE: Feedback Rule-Driven Oversampling for Editing Models.

Full reproduction of Alkan et al. (MLSYS 2022), grown into a pluggable
model-editing library.  The public API surface:

* :func:`repro.edit` — the fluent :class:`~repro.engine.EditSession`
  façade: the recommended way to edit a model;
* :mod:`repro.engine` — the pluggable edit engine: strategy registries
  (``register_selector`` & co.), composable pipeline stages, and the
  :class:`~repro.engine.EditEngine` driver;
* :class:`repro.FROTE` / :func:`repro.run_frote` — the original
  paper-faithful API, kept as a thin compatibility layer over the engine;
* :mod:`repro.rules` — feedback rules (parse, learn, perturb, resolve);
* :mod:`repro.feedback` — streaming rule feedback: sources, multi-expert
  vote aggregation, and live ruleset deltas applied to running sessions
  (``EditSession.with_feedback`` / served ``SessionHandle.feed``);
* :mod:`repro.models` — from-scratch LR / RF / GBDT classifiers and the
  black-box training-algorithm wrapper;
* :mod:`repro.datasets` — synthetic UCI-equivalent benchmark datasets;
* :mod:`repro.baselines` — the Overlay post-processing baseline;
* :mod:`repro.experiments` — the declarative experiments layer:
  :class:`~repro.experiments.ExperimentSpec` grids run by an
  :class:`~repro.experiments.ExperimentRunner` (serial or
  process-parallel, resumable via a content-addressed
  :class:`~repro.experiments.RunStore`), plus the drivers regenerating
  every paper table/figure (``python -m repro.experiments
  --list-strategies`` shows every registered strategy, plugins included).

Quick start — the one-liner session::

    import repro
    from repro.datasets import load_dataset

    data = load_dataset("adult")
    result = (
        repro.edit(data)
        .with_rules("age < 29 AND education = 'bachelors' => >50K")
        .with_algorithm("RF")
        .configure(tau=30, q=0.5)
        .run()
    )
    edited_model = result.model

Plugging in a custom strategy — register it, then name it in the config::

    from repro.engine import register_selector

    @register_selector("first-k")
    class FirstKSelector:
        def select(self, bp, eta, ctx):
            import numpy as np
            return [np.arange(min(eta, pop.size)) for pop in bp.per_rule]

    result = repro.edit(data).with_rules(rule).with_algorithm("LR") \\
        .configure(selection="first-k").run()

The legacy path (identical results for identical seeds)::

    from repro import FROTE, FroteConfig, FeedbackRuleSet
    result = FROTE(algorithm, FeedbackRuleSet((rule,)),
                   FroteConfig(tau=30, q=0.5)).run(data)
"""

from repro.core import (
    FROTE,
    Evaluation,
    FroteConfig,
    FroteResult,
    JournalOptions,
    KernelOptions,
    ServeOptions,
    StorageOptions,
    evaluate_model,
    run_frote,
)
from repro.data import (
    Dataset,
    Migration,
    Schema,
    SchemaDelta,
    SchemaMigrationError,
    SchemaVersion,
    Table,
    make_schema,
)
from repro.engine import (
    MODIFIERS,
    OBJECTIVES,
    SAMPLERS,
    SELECTORS,
    EditEngine,
    EditSession,
    ProgressEvent,
    edit,
    register_modifier,
    register_objective,
    register_sampler,
    register_selector,
)
from repro.feedback import (
    AGGREGATION_POLICIES,
    FeedbackAggregator,
    QueueFeedbackSource,
    RuleProposal,
    RuleSetDelta,
    RuleVerdict,
    ScriptedFeedbackSource,
    register_aggregation_policy,
)
from repro.rules import (
    Clause,
    FeedbackRule,
    FeedbackRuleSet,
    Predicate,
    clause,
    parse_rule,
)

__version__ = "0.2.0"

__all__ = [
    "__version__",
    "edit",
    "EditSession",
    "EditEngine",
    "ProgressEvent",
    "SELECTORS",
    "MODIFIERS",
    "SAMPLERS",
    "OBJECTIVES",
    "register_selector",
    "register_modifier",
    "register_sampler",
    "register_objective",
    "FROTE",
    "FroteConfig",
    "FroteResult",
    "run_frote",
    "Evaluation",
    "evaluate_model",
    "Dataset",
    "Table",
    "Schema",
    "make_schema",
    "SchemaDelta",
    "Migration",
    "SchemaVersion",
    "SchemaMigrationError",
    "StorageOptions",
    "JournalOptions",
    "KernelOptions",
    "ServeOptions",
    "Predicate",
    "Clause",
    "clause",
    "FeedbackRule",
    "FeedbackRuleSet",
    "parse_rule",
    "AGGREGATION_POLICIES",
    "FeedbackAggregator",
    "QueueFeedbackSource",
    "RuleProposal",
    "RuleSetDelta",
    "RuleVerdict",
    "ScriptedFeedbackSource",
    "register_aggregation_policy",
]
