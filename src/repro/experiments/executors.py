"""Executors: how a flat list of :class:`RunSpec`\\ s actually runs.

The :class:`Executor` protocol is one method — ``execute(specs)`` yielding
``(index, envelope)`` pairs in *any* order — and two implementations:

* :class:`SerialExecutor` — in-process, in order; the reference.
* :class:`ProcessExecutor` — a ``ProcessPoolExecutor`` fan-out.

Both call the same pure function, :func:`execute_spec`, whose every
stochastic choice is seeded from the spec's own content (see
:mod:`repro.experiments.spec`), so the parallel executor's records are
bit-identical to the serial executor's — the only difference is completion
order, which the :class:`~repro.experiments.ExperimentRunner` re-sorts.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.experiments.kinds import RUN_KINDS
from repro.experiments.spec import RunSpec
from repro.experiments.store import STATUS_OK, STATUS_SKIPPED


def execute_spec(spec: RunSpec) -> dict:
    """Execute one run; returns its envelope ``{"status", "record"}``.

    Pure in the spec: dispatches to the registered run kind, which derives
    all randomness from ``spec.seed`` / ``spec.context_seed``.  A ``None``
    record from the kind means the run's FRS draw admits no conflict-free
    rule set (a *skipped* run, persisted as such so resumes don't retry).
    """
    kind = RUN_KINDS.get(spec.experiment)
    record = kind(spec)
    status = STATUS_OK if record is not None else STATUS_SKIPPED
    return {"status": status, "record": record}


@runtime_checkable
class Executor(Protocol):
    """Anything that can run specs and yield ``(index, envelope)`` pairs."""

    def execute(
        self, specs: Iterable[RunSpec]
    ) -> Iterator[tuple[int, dict]]:  # pragma: no cover - protocol
        ...


class SerialExecutor:
    """Run every spec in-process, in submission order."""

    workers = 1

    def execute(self, specs: Iterable[RunSpec]) -> Iterator[tuple[int, dict]]:
        for index, spec in enumerate(specs):
            yield index, execute_spec(spec)

    def __repr__(self) -> str:
        return "SerialExecutor()"


class ProcessExecutor:
    """Fan specs out over a process pool; yields in completion order.

    Each worker process rebuilds (and caches) experiment contexts from the
    specs it receives — no state crosses the process boundary except the
    specs themselves, which is why records cannot depend on worker count
    or scheduling.  ``max_pending`` bounds the submission queue so huge
    grids don't hold every pending future at once.

    Plugins under spawn/forkserver: workers re-import the library, so run
    kinds, datasets, or models registered imperatively in a ``__main__``
    script exist in the parent only — under the ``fork`` start method
    (Linux default) they are inherited, but under ``spawn`` (macOS /
    Windows default) a spec referencing them fails in the worker with an
    unknown-name error.  Put such registrations in an importable module
    (executed at import time) to make them visible everywhere.
    """

    def __init__(self, workers: int = 2, *, max_pending: int | None = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.max_pending = max_pending if max_pending is not None else 4 * workers

    def execute(self, specs: Iterable[RunSpec]) -> Iterator[tuple[int, dict]]:
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            pending = {}
            queue = iter(enumerate(specs))
            exhausted = False
            while pending or not exhausted:
                while not exhausted and len(pending) < self.max_pending:
                    try:
                        index, spec = next(queue)
                    except StopIteration:
                        exhausted = True
                        break
                    pending[pool.submit(execute_spec, spec)] = index
                if not pending:
                    break
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = pending.pop(future)
                    yield index, future.result()

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.workers})"


def make_executor(workers: int = 1) -> Executor:
    """The default executor for a worker count (1 → serial)."""
    if workers <= 1:
        return SerialExecutor()
    return ProcessExecutor(workers)
