"""Single-run and grid experiment execution.

One *run* = one FRS draw + one tcf split + (initial model, modified-data
model, FROTE-augmented model) evaluated on the held-out test set — the
three box-plot groups of the paper's Figures 2/3 and the Δ columns of its
tables.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.config import FroteConfig
from repro.core.frote import FROTE, FroteResult
from repro.core.modification import apply_modification
from repro.core.objective import Evaluation, evaluate_model
from repro.datasets import DATASETS
from repro.experiments.setup import ExperimentContext, PreparedRun, prepare_run
from repro.utils.rng import RandomState, check_random_state


class _PaperEtaView(Mapping):
    """Live, read-only view of the registry's per-dataset η defaults.

    The paper's §5.1 per-iteration generation counts live with the
    datasets themselves (``DatasetInfo.eta``, set at
    :func:`repro.datasets.register_dataset` time), so a dataset
    registered after import shows up here immediately.  Read-only by
    design: to change a default, re-register the dataset with
    ``overwrite=True`` — mutating this mapping would silently diverge
    from what the runner actually uses.
    """

    def __getitem__(self, name: str) -> int:
        info = DATASETS[name]
        if info.eta is None:
            raise KeyError(name)
        return info.eta

    def __iter__(self):
        return (name for name, info in DATASETS.items() if info.eta is not None)

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __repr__(self) -> str:
        return f"PAPER_ETA({dict(self)})"


#: Backwards-compatible mapping over the registry's η defaults (live).
PAPER_ETA = _PaperEtaView()


@dataclass(frozen=True)
class RunMetrics:
    """Test-set metrics for one model within a run."""

    j_weighted: float
    mra: float
    f1_outside: float

    @classmethod
    def from_evaluation(cls, ev: Evaluation) -> "RunMetrics":
        return cls(ev.j_weighted(), ev.mra, ev.f1_outside)


@dataclass(frozen=True)
class RunResult:
    """Outcome of a single experimental run."""

    initial: RunMetrics
    modified: RunMetrics  # after the mod strategy, before augmentation
    final: RunMetrics  # after FROTE
    n_added: int
    added_fraction: float
    iterations: int
    accepted: int
    frs_size: int
    tcf: float

    @property
    def delta_j(self) -> float:
        """ΔJ̄ of FROTE vs the initial model (paper Tables 2/3)."""
        return self.final.j_weighted - self.initial.j_weighted

    @property
    def delta_j_vs_modified(self) -> float:
        """final − mod improvement (paper's final-imp panels)."""
        return self.final.j_weighted - self.modified.j_weighted

    @property
    def delta_mra(self) -> float:
        return self.final.mra - self.initial.mra

    @property
    def delta_f1(self) -> float:
        return self.final.f1_outside - self.initial.f1_outside


def execute_run(
    ctx: ExperimentContext,
    prepared: PreparedRun,
    *,
    config: FroteConfig,
) -> tuple[RunResult, FroteResult]:
    """Train/evaluate the three models of one run and run FROTE."""
    frs = prepared.frs
    test = prepared.test

    initial_model = ctx.algorithm(prepared.train)
    initial = RunMetrics.from_evaluation(evaluate_model(initial_model, test, frs))

    mod = apply_modification(
        prepared.train, frs, config.mod_strategy, random_state=config.random_state
    )
    if config.mod_strategy == "none":
        modified = initial
    else:
        mod_model = ctx.algorithm(mod.dataset)
        modified = RunMetrics.from_evaluation(evaluate_model(mod_model, test, frs))

    frote = FROTE(ctx.algorithm, frs, config)
    result = frote.run(prepared.train)
    final = RunMetrics.from_evaluation(evaluate_model(result.model, test, frs))

    return (
        RunResult(
            initial=initial,
            modified=modified,
            final=final,
            n_added=result.n_added,
            added_fraction=result.added_fraction,
            iterations=result.iterations,
            accepted=result.accepted_iterations,
            frs_size=len(frs),
            tcf=float(np.round(_infer_tcf(prepared), 6)),
        ),
        result,
    )


def _infer_tcf(prepared: PreparedRun) -> float:
    n_cov_train = int(prepared.split.train_coverage_mask.sum())
    n_cov_test = int(prepared.split.test_coverage_mask.sum())
    total = n_cov_train + n_cov_test
    return n_cov_train / total if total else 0.0


def run_many(
    ctx: ExperimentContext,
    *,
    frs_size: int,
    tcf: float,
    n_runs: int,
    config: FroteConfig,
    random_state: RandomState = 42,
) -> list[RunResult]:
    """Repeat :func:`execute_run` with fresh FRS draws and splits.

    Draws that admit no conflict-free FRS are skipped (the paper drops
    those settings too).
    """
    rng = check_random_state(random_state)
    out: list[RunResult] = []
    for _ in range(n_runs):
        prepared = prepare_run(ctx, frs_size=frs_size, tcf=tcf, rng=rng)
        if prepared is None:
            continue
        run_cfg = FroteConfig(
            tau=config.tau,
            q=config.q,
            eta=config.eta,
            k=config.k,
            selection=config.selection,
            mod_strategy=config.mod_strategy,
            mra_weight=config.mra_weight,
            accept_equal=config.accept_equal,
            random_state=int(rng.integers(2**31)),
        )
        result, _ = execute_run(ctx, prepared, config=run_cfg)
        out.append(result)
    return out


def default_config(
    dataset_name: str,
    *,
    tau: int = 30,
    q: float = 0.5,
    selection: str = "random",
    mod_strategy: str = "relabel",
    eta_scale: float = 1.0,
    random_state: RandomState = 42,
) -> FroteConfig:
    """Paper-style configuration scaled for bench-speed iteration limits.

    The paper runs τ = 200; benchmarks default to τ = 30 with the paper's
    per-dataset η (optionally scaled), which preserves the oversampling
    quota dynamics at a fraction of the retraining cost.
    """
    eta = DATASETS[dataset_name].eta if dataset_name in DATASETS else None
    if eta is not None:
        eta = max(1, int(eta * eta_scale))
    return FroteConfig(
        tau=tau,
        q=q,
        eta=eta,
        selection=selection,
        mod_strategy=mod_strategy,
        random_state=random_state,
    )
