"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro.experiments fig2   --dataset car --model LR
    python -m repro.experiments fig3   --dataset breast_cancer --model LR
    python -m repro.experiments fig9   --dataset adult --model LR
    python -m repro.experiments table1
    python -m repro.experiments table2 --dataset mushroom --model LR
    python -m repro.experiments table3 --dataset car --model LR
    python -m repro.experiments table6 --dataset mushroom
    python -m repro.experiments ablation --dataset car --model LR --parameter k
    python -m repro.experiments bench   --quick
    python -m repro.experiments run-spec path/to/spec.json --workers 4 --store runs/
    python -m repro.experiments status  path/to/spec.json --store runs/

``run-spec`` executes a declarative :class:`~repro.experiments.
ExperimentSpec` JSON file: ``--workers N`` fans runs out over processes
(records bit-identical to serial), ``--store DIR`` persists every run by
spec hash so an interrupted grid resumes where it stopped; ``status`` reports a
grid's completion counts against a store without running anything.

``bench`` runs the performance harness (also installed as the
``repro-bench`` console script) and writes ``BENCH_hotpaths.json`` and
``BENCH_end2end.json`` to ``--out-dir`` (default: the current directory).
``bench-check`` compares the written ``BENCH_end2end.json`` against the
checked-in baseline (``--baseline``) and exits non-zero past a
``--threshold`` geomean wall-time regression — the CI perf guard.
``bench-mem`` asserts the ``out_of_core`` scenario's peak-RSS budget
(the CI memory guard), and ``bench-ratchet`` proposes a refreshed
baseline to ``--propose-dir`` when the suite is consistently at least
``--improvement`` faster than the checked-in one (always exits zero;
the CI job uploads the proposal as an artifact).  ``bench-journal``
runs the journaled-serving overhead benchmark: serving with journals
must match serving without bit-for-bit, every journal must replay, and
journal I/O must stay under ``$BENCH_JOURNAL_OVERHEAD_PCT`` (default
5%) of serving time — exits non-zero otherwise; journals are kept
under ``--out-dir`` for CI artifact upload.

Common options: ``--runs`` (repetitions), ``--tau`` (FROTE iteration
limit), ``--seed``, ``--save out.json`` (persist raw records).

Introspection: ``--list-strategies`` prints every strategy registered
with the edit engine (user plugins included); ``--list-datasets`` and
``--list-models`` print the dataset registry (per-dataset η defaults
included) and the model registry.  Each exits immediately.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.experiments.figures import (
    format_fig2,
    format_fig3,
    format_fig9,
    run_fig2,
    run_fig3,
    run_fig9,
)
from repro.experiments.persistence import save_records
from repro.experiments.report import format_table
from repro.experiments.tables import (
    format_ablation,
    format_table2,
    format_table3,
    format_table6,
    run_ablation,
    run_table2,
    run_table3,
    run_table6,
)

EXPERIMENTS = (
    "fig2", "fig3", "fig9", "table1", "table2", "table3", "table6", "ablation",
    "bench", "bench-check", "bench-mem", "bench-ratchet", "bench-journal",
    "all", "run-spec", "status",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate FROTE paper tables and figures.",
    )
    parser.add_argument("experiment", nargs="?", choices=EXPERIMENTS)
    parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="run-spec/status: path to an ExperimentSpec JSON file",
    )
    parser.add_argument(
        "--list-strategies",
        action="store_true",
        help="list every registered engine strategy (selectors, modifiers, "
        "samplers, objectives) and exit",
    )
    parser.add_argument(
        "--list-datasets",
        action="store_true",
        help="list the dataset registry (paper sizes and per-dataset η "
        "defaults) and exit",
    )
    parser.add_argument(
        "--list-models",
        action="store_true",
        help="list the model registry and exit",
    )
    parser.add_argument("--dataset", default="car", help="dataset name (see repro.datasets)")
    parser.add_argument("--model", default="LR", help="LR, RF, or LGBM")
    parser.add_argument("--runs", type=int, default=5, help="repetitions per setting")
    parser.add_argument("--tau", type=int, default=20, help="FROTE iteration limit")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--n", type=int, default=None, help="dataset size override")
    parser.add_argument(
        "--parameter",
        default="k",
        choices=("k", "q", "eta", "mod_strategy"),
        help="knob for the ablation sweep",
    )
    parser.add_argument("--save", default=None, help="write raw records to this JSON path")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run-spec/all: processes to fan runs out over (1 = serial; "
        "records are bit-identical either way)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="run-spec/status/all: RunStore directory (content-addressed "
        "per-run records; enables resume)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="bench: CI-sized configuration (smaller inputs, fewer repeats)",
    )
    parser.add_argument(
        "--out-dir",
        default=".",
        help="bench: directory for BENCH_hotpaths.json / BENCH_end2end.json "
        "(default: current directory, i.e. the repo root)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="NAME",
        help="bench: run only this hot-path benchmark or end2end scenario "
        "(repeatable; names are partitioned across the two suites, and a "
        "suite with no selected names is skipped entirely). A written "
        "BENCH_*.json is then partial — use a dedicated --out-dir, not "
        "the bench-check baseline workflow",
    )
    parser.add_argument(
        "--scale",
        default="bench",
        choices=("smoke", "bench", "paper"),
        help="scale for the 'all' suite",
    )
    parser.add_argument(
        "--baseline",
        default="benchmarks/baselines/BENCH_end2end.baseline.json",
        help="bench-check: checked-in baseline BENCH_end2end payload",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="bench-check: maximum tolerated geomean wall-time regression "
        "(default: $BENCH_REGRESSION_THRESHOLD or 0.30)",
    )
    parser.add_argument(
        "--improvement",
        type=float,
        default=None,
        help="bench-ratchet: geomean speedup fraction required before a "
        "baseline refresh is proposed (default 0.15)",
    )
    parser.add_argument(
        "--propose-dir",
        default="ratchet",
        help="bench-ratchet: directory for the proposed refreshed baseline "
        "(uploaded as a CI artifact when a ratchet qualifies)",
    )
    return parser


def format_strategies() -> str:
    """Render every engine registry (built-ins and user plugins)."""
    from repro.engine import MODIFIERS, OBJECTIVES, SAMPLERS, SELECTORS
    from repro.experiments.kinds import RUN_KINDS

    lines = ["Registered edit-engine strategies:"]
    for registry in (SELECTORS, MODIFIERS, SAMPLERS, OBJECTIVES, RUN_KINDS):
        names = ", ".join(registry.names()) or "(none)"
        lines.append(f"  {registry.kind + ':':25s}{names}")
    lines.append(
        "\nRegister your own with repro.engine.register_selector & co., "
        "then pass the name via FroteConfig or EditSession.configure()."
    )
    return "\n".join(lines)


def format_datasets() -> str:
    """Render the dataset registry, per-dataset experiment defaults included."""
    from repro.datasets import DATASETS

    rows = []
    for info in DATASETS.values():
        rows.append(
            {
                "dataset": info.name,
                "paper |D|": info.paper_instances,
                "default |D|": info.default_instances,
                "features": info.n_features,
                "labels": info.n_labels,
                "eta": info.eta if info.eta is not None else "-",
            }
        )
    return (
        format_table(rows, title="Registered datasets (eta = paper §5.1 default)")
        + "\n\nRegister your own with repro.datasets.register_dataset(...)."
    )


def format_models() -> str:
    """Render the model registry."""
    from repro.models import MODELS

    rows = []
    for info in MODELS.values():
        rows.append(
            {
                "model": info.name,
                "paper": "yes" if info.paper else "-",
                "standardize": "yes" if info.standardize else "-",
            }
        )
    return (
        format_table(rows, title="Registered models")
        + "\n\nRegister your own with repro.models.register_model(...)."
    )


def run_bench(args: argparse.Namespace) -> tuple[list[dict], str]:
    """Run the perf harness and write ``BENCH_*.json`` to ``--out-dir``."""
    from dataclasses import asdict

    from repro.perf import (
        END2END_NAMES,
        HOTPATH_NAMES,
        format_records,
        run_end2end_benchmarks,
        run_hotpath_benchmarks,
        write_end2end_json,
        write_hotpaths_json,
    )

    only = getattr(args, "only", None)
    if only is None:
        hot_only: list[str] | None = None
        e2e_only: list[str] | None = None
        run_hot = run_e2e = True
    else:
        unknown = [
            name
            for name in only
            if name not in HOTPATH_NAMES and name not in END2END_NAMES
        ]
        if unknown:
            raise SystemExit(
                f"unknown bench name(s) {unknown}; "
                f"hot paths: {list(HOTPATH_NAMES)}; "
                f"end2end scenarios: {list(END2END_NAMES)}"
            )
        hot_only = [name for name in only if name in HOTPATH_NAMES]
        e2e_only = [name for name in only if name in END2END_NAMES]
        run_hot = bool(hot_only)
        run_e2e = bool(e2e_only)
    sections = []
    hot: list = []
    e2e: list = []
    mode = "quick" if args.quick else "full"
    if run_hot:
        hot = run_hotpath_benchmarks(quick=args.quick, seed=args.seed, only=hot_only)
        hot_path = write_hotpaths_json(
            hot, out_dir=args.out_dir, quick=args.quick, seed=args.seed
        )
        sections.append(
            format_records(hot, f"Hot-path benchmarks ({mode}) -> {hot_path}")
        )
    if run_e2e:
        e2e = run_end2end_benchmarks(quick=args.quick, seed=args.seed, only=e2e_only)
        e2e_path = write_end2end_json(
            e2e, out_dir=args.out_dir, quick=args.quick, seed=args.seed
        )
        sections.append(
            format_records(e2e, f"End-to-end benchmarks ({mode}) -> {e2e_path}")
        )
    text = "\n\n".join(sections)
    return [asdict(r) for r in hot] + [asdict(r) for r in e2e], text


def bench_check_cmd(args: argparse.Namespace) -> tuple[list[dict], str]:
    """``bench-check``: CI guard comparing BENCH_end2end.json to a baseline.

    Exits non-zero on a >threshold geomean wall-time regression or a
    baseline scenario missing from the current payload.
    """
    from dataclasses import asdict

    from repro.perf.regression import compare_end2end, load_payload

    current = _current_end2end(args)
    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        raise SystemExit(f"baseline not found: {baseline_path}")
    report = compare_end2end(
        current,
        load_payload(baseline_path),
        threshold=args.threshold,
    )
    text = report.format()
    if not report.ok:
        print(text)
        raise SystemExit(1)
    return [asdict(e) for e in report.entries], text


def _current_end2end(args: argparse.Namespace):
    from repro.perf.regression import load_payload

    current_path = Path(args.out_dir) / "BENCH_end2end.json"
    if not current_path.exists():
        raise SystemExit(
            f"{current_path} not found; run "
            "`python -m repro.experiments bench --quick` first"
        )
    return load_payload(current_path)


def bench_mem_cmd(args: argparse.Namespace) -> tuple[list[dict], str]:
    """``bench-mem``: CI guard asserting the out-of-core peak-RSS budget.

    Reads the ``out_of_core`` scenario from ``BENCH_end2end.json`` and
    exits non-zero when its workload RSS exceeded ``budget * 1.5 +
    tolerance`` (the bound the scenario's worker computed), or when the
    scenario is missing — a spill regression either way.
    """
    from repro.perf.regression import memory_report

    report = memory_report(_current_end2end(args))
    text = report.format()
    if not report.ok:
        print(text)
        raise SystemExit(1)
    return [dict(e) for e in report.entries], text


def bench_ratchet_cmd(args: argparse.Namespace) -> tuple[list[dict], str]:
    """``bench-ratchet``: propose a refreshed baseline when consistently faster.

    Advisory (always exits zero): when the fresh ``BENCH_end2end.json``
    beats the checked-in baseline by the required geomean margin with no
    individual scenario slower, the current payload is written to
    ``--propose-dir`` for the CI job to upload as an artifact, and the
    summary table is appended to ``$GITHUB_STEP_SUMMARY`` when set.
    """
    from dataclasses import asdict

    from repro.perf.ratchet import DEFAULT_IMPROVEMENT, propose_ratchet, write_proposal
    from repro.perf.regression import load_payload

    current = _current_end2end(args)
    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        raise SystemExit(f"baseline not found: {baseline_path}")
    report = propose_ratchet(
        current,
        load_payload(baseline_path),
        improvement=(
            DEFAULT_IMPROVEMENT if args.improvement is None else args.improvement
        ),
    )
    lines = [report.format()]
    if report.should_ratchet:
        proposal = write_proposal(current, args.propose_dir)
        lines.append(f"proposed baseline written to {proposal}")
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(report.markdown() + "\n")
    return [asdict(e) for e in report.entries], "\n".join(lines)


def bench_journal_cmd(args: argparse.Namespace) -> tuple[list[dict], str]:
    """``bench-journal``: CI guard on the cost and fidelity of journaling.

    Runs the serving fleet plain and journaled (parity is asserted
    record-for-record, and every journal must scan clean and replay to
    its session's live history), then exits non-zero when journal I/O
    exceeds the overhead threshold.  Journals land under
    ``--out-dir/journals`` so the CI job can upload them as an artifact.
    """
    from dataclasses import asdict

    from repro.perf.journalbench import run_journal_bench

    journal_dir = Path(args.out_dir) / "journals"
    record = run_journal_bench(
        quick=args.quick, seed=args.seed, journal_dir=str(journal_dir)
    )
    extra = record.extra
    lines = [
        f"journaled serving: {extra['n_sessions']} sessions, "
        f"{record.iterations} iterations, {extra['n_journals']} journals "
        f"({extra['journal_records']} records) -> {journal_dir}",
        f"  plain     {extra['plain_seconds']:.3f}s",
        f"  journaled {extra['journaled_seconds']:.3f}s "
        f"(wall delta {extra['wall_delta_pct']:+.1f}%, informational)",
        f"  journal I/O {extra['journal_io_seconds'] * 1e3:.1f}ms = "
        f"{extra['overhead_pct']:.2f}% of serving time "
        f"(threshold {extra['threshold_pct']:.1f}%)",
        f"  parity: {'ok' if extra['parity'] else 'FAILED'}, "
        f"journal errors: {extra['journal_errors']}",
    ]
    text = "\n".join(lines)
    if not extra["within_overhead"] or extra["journal_errors"]:
        print(text)
        raise SystemExit(1)
    return [asdict(record)], text


def _load_spec(args: argparse.Namespace):
    from repro.experiments.spec import ExperimentSpec

    if not args.spec:
        raise SystemExit(
            f"{args.experiment} requires a spec path: "
            f"python -m repro.experiments {args.experiment} path/to/spec.json"
        )
    path = Path(args.spec)
    if not path.exists():
        raise SystemExit(f"spec file not found: {path}")
    return ExperimentSpec.load(path)


def run_spec_cmd(args: argparse.Namespace) -> tuple[list[dict], str]:
    """``run-spec``: execute a declarative ExperimentSpec JSON file."""
    from repro.experiments.grid import ExperimentRunner
    from repro.experiments.store import RunStore

    spec = _load_spec(args)
    store = RunStore(args.store) if args.store else None
    runner = ExperimentRunner(store=store, workers=args.workers)
    runner.on_event(
        lambda ev: print(
            f"[{spec.name}] {ev.kind} "
            + (f"{ev.index + 1}/{ev.total} {ev.spec.dataset}/{ev.spec.model}"
               f" |F|={ev.spec.frs_size} tcf={ev.spec.tcf} run={ev.spec.run}"
               if ev.spec is not None else f"({ev.total} runs)"),
            file=sys.stderr,
        )
    )
    result = runner.run(spec)
    lines = [
        f"spec {spec.name!r}: {len(result)} runs "
        f"({result.executed} executed, {result.cached} from store, "
        f"{result.skipped} skipped draws)",
    ]
    if store is not None:
        lines.append(f"records stored in {store.root} (resume with the same command)")
    return result.records, "\n".join(lines)


def status_cmd(args: argparse.Namespace) -> tuple[list[dict], str]:
    """``status``: a grid's completion counts against a store."""
    from repro.experiments.grid import ExperimentRunner
    from repro.experiments.store import RunStore

    spec = _load_spec(args)
    if not args.store:
        raise SystemExit("status requires --store DIR")
    runner = ExperimentRunner(store=RunStore(args.store))
    counts = runner.status(spec)
    text = (
        f"spec {spec.name!r} in {args.store}: "
        f"{counts['ok']}/{counts['total']} completed, "
        f"{counts['skipped']} skipped draws, {counts['missing']} missing"
    )
    return [dict(counts)], text


def run(args: argparse.Namespace) -> tuple[list[dict], str]:
    """Dispatch one experiment; returns (records, rendered text)."""
    common = dict(n_runs=args.runs, tau=args.tau, n=args.n, random_state=args.seed)
    if args.experiment == "bench":
        return run_bench(args)
    if args.experiment == "bench-check":
        return bench_check_cmd(args)
    if args.experiment == "bench-mem":
        return bench_mem_cmd(args)
    if args.experiment == "bench-ratchet":
        return bench_ratchet_cmd(args)
    if args.experiment == "bench-journal":
        return bench_journal_cmd(args)
    if args.experiment == "run-spec":
        return run_spec_cmd(args)
    if args.experiment == "status":
        return status_cmd(args)
    if args.experiment == "all":
        from repro.experiments.paper_suite import run_paper_suite

        reports = run_paper_suite(
            scale=args.scale,
            random_state=args.seed,
            progress=lambda line: print(f"[suite] {line}", file=sys.stderr),
            store=args.store,
            workers=args.workers,
        )
        text = "\n\n".join(f"### {key}\n{report}" for key, report in reports.items())
        records = [{"key": k} for k in reports]
        return records, text
    if args.experiment == "fig2":
        records = run_fig2(args.dataset, args.model, **common)
        return records, format_fig2(records)
    if args.experiment == "fig3":
        records = run_fig3(args.dataset, args.model, **common)
        return records, format_fig3(records)
    if args.experiment == "fig9":
        records = run_fig9(args.dataset, args.model, **common)
        return records, format_fig9(records)
    if args.experiment == "table1":
        from repro.datasets import table1_rows

        records = table1_rows()
        return records, format_table(records, title="Table 1 — dataset properties")
    if args.experiment == "table2":
        records = run_table2(args.dataset, args.model, **common)
        text = "\n\n".join(
            format_table2(records, metric=m)
            for m in ("delta_j", "delta_mra", "delta_f1")
        )
        return records, text
    if args.experiment == "table3":
        records = run_table3(args.dataset, args.model, **common)
        return records, format_table3(records)
    if args.experiment == "table6":
        records = run_table6(
            args.dataset,
            n_runs=args.runs,
            tau=args.tau,
            n=args.n,
            random_state=args.seed,
        )
        return records, format_table6(records)
    if args.experiment == "ablation":
        values = {
            "k": (2, 5, 10),
            "q": (0.1, 0.5, 1.0),
            "eta": (5, 20, 60),
            "mod_strategy": ("none", "relabel", "drop"),
        }[args.parameter]
        records = run_ablation(
            args.dataset,
            args.model,
            parameter=args.parameter,
            values=values,
            n_runs=args.runs,
            tau=args.tau,
            n=args.n,
            random_state=args.seed,
        )
        return records, format_ablation(records)
    raise ValueError(f"unknown experiment {args.experiment!r}")  # pragma: no cover


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    listed = False
    if args.list_strategies:
        print(format_strategies())
        listed = True
    if args.list_datasets:
        print(format_datasets())
        listed = True
    if args.list_models:
        print(format_models())
        listed = True
    if listed:
        return 0
    if args.experiment is None:
        parser.error(
            "an experiment name is required (or --list-strategies / "
            "--list-datasets / --list-models)"
        )
    records, text = run(args)
    print(text)
    if args.save:
        path = save_records(
            args.experiment,
            records,
            args.save,
            metadata={
                "dataset": args.dataset,
                "model": args.model,
                "runs": args.runs,
                "tau": args.tau,
                "seed": args.seed,
            },
        )
        print(f"\nrecords written to {path}", file=sys.stderr)
    return 0


def bench_main(argv: list[str] | None = None) -> int:
    """Console entry point for ``repro-bench``: the perf harness alone.

    ``repro-bench --quick`` is shorthand for
    ``python -m repro.experiments.cli bench --quick``.
    """
    return main(["bench", *(argv if argv is not None else sys.argv[1:])])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
