"""Command-line interface: regenerate any paper table or figure.

Usage::

    python -m repro.experiments fig2   --dataset car --model LR
    python -m repro.experiments fig3   --dataset breast_cancer --model LR
    python -m repro.experiments fig9   --dataset adult --model LR
    python -m repro.experiments table1
    python -m repro.experiments table2 --dataset mushroom --model LR
    python -m repro.experiments table3 --dataset car --model LR
    python -m repro.experiments table6 --dataset mushroom
    python -m repro.experiments ablation --dataset car --model LR --parameter k

Common options: ``--runs`` (repetitions), ``--tau`` (FROTE iteration
limit), ``--seed``, ``--save out.json`` (persist raw records).

``python -m repro.experiments --list-strategies`` prints every strategy
registered with the edit engine (user plugins included) and exits.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.figures import (
    format_fig2,
    format_fig3,
    format_fig9,
    run_fig2,
    run_fig3,
    run_fig9,
)
from repro.experiments.persistence import save_records
from repro.experiments.report import format_table
from repro.experiments.tables import (
    format_ablation,
    format_table2,
    format_table3,
    format_table6,
    run_ablation,
    run_table2,
    run_table3,
    run_table6,
)

EXPERIMENTS = (
    "fig2", "fig3", "fig9", "table1", "table2", "table3", "table6", "ablation", "all",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate FROTE paper tables and figures.",
    )
    parser.add_argument("experiment", nargs="?", choices=EXPERIMENTS)
    parser.add_argument(
        "--list-strategies",
        action="store_true",
        help="list every registered engine strategy (selectors, modifiers, "
        "samplers, objectives) and exit",
    )
    parser.add_argument("--dataset", default="car", help="dataset name (see repro.datasets)")
    parser.add_argument("--model", default="LR", help="LR, RF, or LGBM")
    parser.add_argument("--runs", type=int, default=5, help="repetitions per setting")
    parser.add_argument("--tau", type=int, default=20, help="FROTE iteration limit")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--n", type=int, default=None, help="dataset size override")
    parser.add_argument(
        "--parameter",
        default="k",
        choices=("k", "q", "eta", "mod_strategy"),
        help="knob for the ablation sweep",
    )
    parser.add_argument("--save", default=None, help="write raw records to this JSON path")
    parser.add_argument(
        "--scale",
        default="bench",
        choices=("smoke", "bench", "paper"),
        help="scale for the 'all' suite",
    )
    return parser


def format_strategies() -> str:
    """Render every engine registry (built-ins and user plugins)."""
    from repro.engine import MODIFIERS, OBJECTIVES, SAMPLERS, SELECTORS

    lines = ["Registered edit-engine strategies:"]
    for registry in (SELECTORS, MODIFIERS, SAMPLERS, OBJECTIVES):
        names = ", ".join(registry.names()) or "(none)"
        lines.append(f"  {registry.kind + ':':25s}{names}")
    lines.append(
        "\nRegister your own with repro.engine.register_selector & co., "
        "then pass the name via FroteConfig or EditSession.configure()."
    )
    return "\n".join(lines)


def run(args: argparse.Namespace) -> tuple[list[dict], str]:
    """Dispatch one experiment; returns (records, rendered text)."""
    common = dict(n_runs=args.runs, tau=args.tau, n=args.n, random_state=args.seed)
    if args.experiment == "all":
        from repro.experiments.paper_suite import run_paper_suite

        reports = run_paper_suite(
            scale=args.scale,
            random_state=args.seed,
            progress=lambda line: print(f"[suite] {line}", file=sys.stderr),
        )
        text = "\n\n".join(f"### {key}\n{report}" for key, report in reports.items())
        records = [{"key": k} for k in reports]
        return records, text
    if args.experiment == "fig2":
        records = run_fig2(args.dataset, args.model, **common)
        return records, format_fig2(records)
    if args.experiment == "fig3":
        records = run_fig3(args.dataset, args.model, **common)
        return records, format_fig3(records)
    if args.experiment == "fig9":
        records = run_fig9(args.dataset, args.model, **common)
        return records, format_fig9(records)
    if args.experiment == "table1":
        from repro.datasets import table1_rows

        records = table1_rows()
        return records, format_table(records, title="Table 1 — dataset properties")
    if args.experiment == "table2":
        records = run_table2(args.dataset, args.model, **common)
        text = "\n\n".join(
            format_table2(records, metric=m)
            for m in ("delta_j", "delta_mra", "delta_f1")
        )
        return records, text
    if args.experiment == "table3":
        records = run_table3(args.dataset, args.model, **common)
        return records, format_table3(records)
    if args.experiment == "table6":
        records = run_table6(
            args.dataset,
            n_runs=args.runs,
            tau=args.tau,
            n=args.n,
            random_state=args.seed,
        )
        return records, format_table6(records)
    if args.experiment == "ablation":
        values = {
            "k": (2, 5, 10),
            "q": (0.1, 0.5, 1.0),
            "eta": (5, 20, 60),
            "mod_strategy": ("none", "relabel", "drop"),
        }[args.parameter]
        records = run_ablation(
            args.dataset,
            args.model,
            parameter=args.parameter,
            values=values,
            n_runs=args.runs,
            tau=args.tau,
            n=args.n,
            random_state=args.seed,
        )
        return records, format_ablation(records)
    raise ValueError(f"unknown experiment {args.experiment!r}")  # pragma: no cover


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_strategies:
        print(format_strategies())
        return 0
    if args.experiment is None:
        parser.error("an experiment name is required (or --list-strategies)")
    records, text = run(args)
    print(text)
    if args.save:
        path = save_records(
            args.experiment,
            records,
            args.save,
            metadata={
                "dataset": args.dataset,
                "model": args.model,
                "runs": args.runs,
                "tau": args.tau,
                "seed": args.seed,
            },
        )
        print(f"\nrecords written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
