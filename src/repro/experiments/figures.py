"""Figure drivers: the series behind paper Figures 2, 3, and 9.

Each driver returns plain records (list of dicts) plus helpers that format
them as the ASCII equivalents of the paper's plots; benchmarks print those.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.config import FroteConfig
from repro.core.frote import FROTE
from repro.core.objective import evaluate_model
from repro.experiments.report import BoxStats, ascii_boxplot
from repro.experiments.runner import default_config, run_many
from repro.experiments.setup import build_context, prepare_run
from repro.utils.rng import RandomState, check_random_state


# ---------------------------------------------------------------------- #
# Figure 2 (and supplement Figures 4-8): benefit of augmentation
# ---------------------------------------------------------------------- #
def run_fig2(
    dataset_name: str,
    model_name: str,
    *,
    tcf_values: tuple[float, ...] = (0.0, 0.1, 0.2),
    frs_sizes: tuple[int, ...] = (1, 3, 5),
    n_runs: int = 5,
    mod_strategy: str = "relabel",
    tau: int = 20,
    n: int | None = None,
    random_state: RandomState = 42,
) -> list[dict]:
    """Test-set J̄ for initial / modified / final models across tcf values.

    Paper setting: |F| ∈ {1, 3, 5} pooled per tcf, 30 draws each; defaults
    here are scaled down for bench speed (pass larger ``n_runs``/``tau``
    to approach the paper's protocol).
    """
    ctx = build_context(dataset_name, model_name, n=n, random_state=random_state)
    rng = check_random_state(random_state)
    records: list[dict] = []
    for tcf in tcf_values:
        for frs_size in frs_sizes:
            config = default_config(
                dataset_name, tau=tau, mod_strategy=mod_strategy,
                random_state=int(rng.integers(2**31)),
            )
            for run in run_many(
                ctx,
                frs_size=frs_size,
                tcf=tcf,
                n_runs=n_runs,
                config=config,
                random_state=int(rng.integers(2**31)),
            ):
                records.append(
                    {
                        "dataset": dataset_name,
                        "model": model_name,
                        "tcf": tcf,
                        "frs_size": frs_size,
                        "j_initial": run.initial.j_weighted,
                        "j_mod": run.modified.j_weighted,
                        "j_final": run.final.j_weighted,
                        "mod_improvement": run.modified.j_weighted
                        - run.initial.j_weighted,
                        "final_improvement": run.delta_j_vs_modified,
                        "n_added": run.n_added,
                    }
                )
    return records


def format_fig2(records: list[dict], *, mod_label: str = "relabel") -> str:
    """Render Fig. 2 as grouped ASCII box plots (initial/mod/final per tcf)."""
    groups: dict[str, list[float]] = defaultdict(list)
    for r in records:
        tcf = r["tcf"]
        groups[f"tcf={tcf:<4} initial"].append(r["j_initial"])
        groups[f"tcf={tcf:<4} {mod_label}"].append(r["j_mod"])
        groups[f"tcf={tcf:<4} final"].append(r["j_final"])
    title = ""
    if records:
        title = f"J-bar on test — {records[0]['dataset']} / {records[0]['model']}"
    return ascii_boxplot(groups, title=title)


# ---------------------------------------------------------------------- #
# Figure 3 (and Figure 10): effect of feedback rule set size
# ---------------------------------------------------------------------- #
def run_fig3(
    dataset_name: str,
    model_name: str,
    *,
    frs_sizes: tuple[int, ...] = (8, 10, 15, 20),
    tcf: float = 0.2,
    n_runs: int = 5,
    tau: int = 20,
    n: int | None = None,
    random_state: RandomState = 42,
) -> list[dict]:
    """Test-set J̄ vs |F| at tcf = 0.2 (paper Fig. 3 protocol)."""
    ctx = build_context(dataset_name, model_name, n=n, random_state=random_state)
    rng = check_random_state(random_state)
    records: list[dict] = []
    for frs_size in frs_sizes:
        config = default_config(
            dataset_name, tau=tau, random_state=int(rng.integers(2**31))
        )
        runs = run_many(
            ctx,
            frs_size=frs_size,
            tcf=tcf,
            n_runs=n_runs,
            config=config,
            random_state=int(rng.integers(2**31)),
        )
        if not runs:
            # No conflict-free FRS of this size in the pool — the paper
            # reports the same for |F| in {15, 20} on some datasets.
            continue
        for run in runs:
            records.append(
                {
                    "dataset": dataset_name,
                    "model": model_name,
                    "frs_size": frs_size,
                    "j_initial": run.initial.j_weighted,
                    "j_mod": run.modified.j_weighted,
                    "j_final": run.final.j_weighted,
                }
            )
    return records


def format_fig3(records: list[dict]) -> str:
    groups: dict[str, list[float]] = defaultdict(list)
    for r in records:
        size = r["frs_size"]
        groups[f"|F|={size:<3} initial"].append(r["j_initial"])
        groups[f"|F|={size:<3} relabel"].append(r["j_mod"])
        groups[f"|F|={size:<3} final"].append(r["j_final"])
    title = ""
    if records:
        title = f"J-bar vs rule set size — {records[0]['dataset']} / {records[0]['model']}"
    return ascii_boxplot(groups, title=title)


# ---------------------------------------------------------------------- #
# Figure 9: augmentation progress
# ---------------------------------------------------------------------- #
def run_fig9(
    dataset_name: str,
    model_name: str,
    *,
    tcf_values: tuple[float, ...] = (0.0, 0.2, 0.4),
    frs_size: int = 3,
    n_runs: int = 3,
    tau: int = 25,
    n: int | None = None,
    random_state: RandomState = 42,
) -> list[dict]:
    """Held-out J̄ traced against instances added during augmentation."""
    ctx = build_context(dataset_name, model_name, n=n, random_state=random_state)
    rng = check_random_state(random_state)
    records: list[dict] = []
    for tcf in tcf_values:
        for run_id in range(n_runs):
            prepared = prepare_run(ctx, frs_size=frs_size, tcf=tcf, rng=rng)
            if prepared is None:
                continue
            config = default_config(
                dataset_name, tau=tau, random_state=int(rng.integers(2**31))
            )
            frs = prepared.frs
            test = prepared.test

            def score(model) -> float:
                return evaluate_model(model, test, frs).j_weighted()

            frote = FROTE(ctx.algorithm, frs, config)
            result = frote.run(prepared.train, eval_callback=score)
            initial_model = ctx.algorithm(prepared.train)
            records.append(
                {
                    "dataset": dataset_name,
                    "model": model_name,
                    "tcf": tcf,
                    "run": run_id,
                    "n_added": [0]
                    + [rec.n_added_total for rec in result.history if rec.accepted],
                    "j_test": [score(initial_model)]
                    + [
                        rec.external_score
                        for rec in result.history
                        if rec.accepted and rec.external_score is not None
                    ],
                }
            )
    return records


def format_fig9(records: list[dict]) -> str:
    """Median J̄ trace per tcf as a text series."""
    lines = []
    if records:
        lines.append(
            f"Augmentation progress — {records[0]['dataset']} / {records[0]['model']}"
        )
    by_tcf: dict[float, list[dict]] = defaultdict(list)
    for r in records:
        by_tcf[r["tcf"]].append(r)
    for tcf, runs in sorted(by_tcf.items()):
        lines.append(f"  tcf={tcf}:")
        for r in runs:
            pairs = ", ".join(
                f"({n}, {j:.3f})" for n, j in zip(r["n_added"], r["j_test"])
            )
            lines.append(f"    run {r['run']}: {pairs}")
    return "\n".join(lines)
