"""Figure drivers: the series behind paper Figures 2, 3, and 9.

Each driver is a pure consumer of the declarative experiments API: it
builds an :class:`~repro.experiments.ExperimentSpec`, hands it to an
:class:`~repro.experiments.ExperimentRunner`, and returns the records.
Pass your own ``runner`` (with a store and/or parallel executor) to make
any figure resumable or parallel; the records are identical either way.
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments.grid import ExperimentRunner, default_runner
from repro.experiments.report import ascii_boxplot
from repro.experiments.spec import ExperimentSpec
from repro.utils.rng import RandomState


# ---------------------------------------------------------------------- #
# Figure 2 (and supplement Figures 4-8): benefit of augmentation
# ---------------------------------------------------------------------- #
def run_fig2(
    dataset_name: str,
    model_name: str,
    *,
    tcf_values: tuple[float, ...] = (0.0, 0.1, 0.2),
    frs_sizes: tuple[int, ...] = (1, 3, 5),
    n_runs: int = 5,
    mod_strategy: str = "relabel",
    tau: int = 20,
    n: int | None = None,
    random_state: RandomState = 42,
    runner: ExperimentRunner | None = None,
) -> list[dict]:
    """Test-set J̄ for initial / modified / final models across tcf values.

    Paper setting: |F| ∈ {1, 3, 5} pooled per tcf, 30 draws each; defaults
    here are scaled down for bench speed (pass larger ``n_runs``/``tau``
    to approach the paper's protocol).
    """
    spec = fig2_spec(
        dataset_name, model_name, tcf_values=tcf_values, frs_sizes=frs_sizes,
        n_runs=n_runs, mod_strategy=mod_strategy, tau=tau, n=n,
        random_state=random_state,
    )
    return default_runner(runner).run(spec).records


def fig2_spec(
    dataset_name: str,
    model_name: str,
    *,
    tcf_values: tuple[float, ...] = (0.0, 0.1, 0.2),
    frs_sizes: tuple[int, ...] = (1, 3, 5),
    n_runs: int = 5,
    mod_strategy: str = "relabel",
    tau: int = 20,
    n: int | None = None,
    random_state: RandomState = 42,
) -> ExperimentSpec:
    """The declarative grid behind :func:`run_fig2`."""
    return ExperimentSpec(
        name=f"fig2-{dataset_name}-{model_name}",
        experiment="frote",
        datasets=(dataset_name,),
        models=(model_name,),
        frs_sizes=tuple(frs_sizes),
        tcfs=tuple(tcf_values),
        n_runs=n_runs,
        seed=int(random_state),
        n=n,
        config={"tau": tau, "mod_strategy": mod_strategy},
    )


def format_fig2(records: list[dict], *, mod_label: str = "relabel") -> str:
    """Render Fig. 2 as grouped ASCII box plots (initial/mod/final per tcf)."""
    groups: dict[str, list[float]] = defaultdict(list)
    for r in records:
        tcf = r["tcf"]
        groups[f"tcf={tcf:<4} initial"].append(r["j_initial"])
        groups[f"tcf={tcf:<4} {mod_label}"].append(r["j_mod"])
        groups[f"tcf={tcf:<4} final"].append(r["j_final"])
    title = ""
    if records:
        title = f"J-bar on test — {records[0]['dataset']} / {records[0]['model']}"
    return ascii_boxplot(groups, title=title)


# ---------------------------------------------------------------------- #
# Figure 3 (and Figure 10): effect of feedback rule set size
# ---------------------------------------------------------------------- #
def run_fig3(
    dataset_name: str,
    model_name: str,
    *,
    frs_sizes: tuple[int, ...] = (8, 10, 15, 20),
    tcf: float = 0.2,
    n_runs: int = 5,
    tau: int = 20,
    n: int | None = None,
    random_state: RandomState = 42,
    runner: ExperimentRunner | None = None,
) -> list[dict]:
    """Test-set J̄ vs |F| at tcf = 0.2 (paper Fig. 3 protocol).

    Sizes with no conflict-free FRS in the pool produce skipped runs and
    simply contribute no records — the paper reports the same for |F| in
    {15, 20} on some datasets.
    """
    spec = ExperimentSpec(
        name=f"fig3-{dataset_name}-{model_name}",
        experiment="frote",
        datasets=(dataset_name,),
        models=(model_name,),
        frs_sizes=tuple(frs_sizes),
        tcfs=(tcf,),
        n_runs=n_runs,
        seed=int(random_state),
        n=n,
        config={"tau": tau},
    )
    return default_runner(runner).run(spec).records


def format_fig3(records: list[dict]) -> str:
    groups: dict[str, list[float]] = defaultdict(list)
    for r in records:
        size = r["frs_size"]
        groups[f"|F|={size:<3} initial"].append(r["j_initial"])
        groups[f"|F|={size:<3} relabel"].append(r["j_mod"])
        groups[f"|F|={size:<3} final"].append(r["j_final"])
    title = ""
    if records:
        title = f"J-bar vs rule set size — {records[0]['dataset']} / {records[0]['model']}"
    return ascii_boxplot(groups, title=title)


# ---------------------------------------------------------------------- #
# Figure 9: augmentation progress
# ---------------------------------------------------------------------- #
def run_fig9(
    dataset_name: str,
    model_name: str,
    *,
    tcf_values: tuple[float, ...] = (0.0, 0.2, 0.4),
    frs_size: int = 3,
    n_runs: int = 3,
    tau: int = 25,
    n: int | None = None,
    random_state: RandomState = 42,
    runner: ExperimentRunner | None = None,
) -> list[dict]:
    """Held-out J̄ traced against instances added during augmentation."""
    spec = ExperimentSpec(
        name=f"fig9-{dataset_name}-{model_name}",
        experiment="trace",
        datasets=(dataset_name,),
        models=(model_name,),
        frs_sizes=(frs_size,),
        tcfs=tuple(tcf_values),
        n_runs=n_runs,
        seed=int(random_state),
        n=n,
        config={"tau": tau},
    )
    return default_runner(runner).run(spec).records


def format_fig9(records: list[dict]) -> str:
    """Median J̄ trace per tcf as a text series."""
    lines = []
    if records:
        lines.append(
            f"Augmentation progress — {records[0]['dataset']} / {records[0]['model']}"
        )
    by_tcf: dict[float, list[dict]] = defaultdict(list)
    for r in records:
        by_tcf[r["tcf"]].append(r)
    for tcf, runs in sorted(by_tcf.items()):
        lines.append(f"  tcf={tcf}:")
        for r in runs:
            pairs = ", ".join(
                f"({n}, {j:.3f})" for n, j in zip(r["n_added"], r["j_test"])
            )
            lines.append(f"    run {r['run']}: {pairs}")
    return "\n".join(lines)
