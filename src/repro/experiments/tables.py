"""Table drivers: the rows behind paper Tables 2, 3, 4, 5, and 6.

Every driver returns records (dicts) and a ``format_*`` helper renders them
in the paper's layout (mean ± std cells).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.baselines.overlay import HARD, SOFT, Overlay
from repro.core.config import FroteConfig
from repro.core.frote import FROTE
from repro.core.objective import evaluate_predictions
from repro.data.split import coverage_aware_split
from repro.experiments.report import format_mean_std, format_table
from repro.experiments.runner import default_config, execute_run, run_many
from repro.experiments.setup import (
    build_context,
    prepare_run,
    probabilistic_variant,
)
from repro.metrics.classification import accuracy_score
from repro.rules.ruleset import FeedbackRuleSet, draw_conflict_free
from repro.utils.rng import RandomState, check_random_state


# ---------------------------------------------------------------------- #
# Table 2 (and Tables 7/8): FROTE vs Overlay
# ---------------------------------------------------------------------- #
def run_table2(
    dataset_name: str,
    model_name: str,
    *,
    n_runs: int = 5,
    frs_size: int = 3,
    tau: int = 20,
    n: int | None = None,
    random_state: RandomState = 42,
) -> list[dict]:
    """ΔJ̄ / ΔMRA / ΔF of Overlay-Soft, Overlay-Hard, and FROTE.

    Paper protocol: 3 rules per run, 50/50 coverage and outside-coverage
    splits, deltas relative to the unpatched initial model.
    """
    ctx = build_context(dataset_name, model_name, n=n, random_state=random_state)
    rng = check_random_state(random_state)
    records: list[dict] = []
    for run_id in range(n_runs):
        frs = draw_conflict_free(
            list(ctx.rule_pool), frs_size, ctx.dataset.X.schema, rng
        )
        if frs is None:
            continue
        coverage = frs.coverage_mask(ctx.dataset.X)
        split = coverage_aware_split(
            ctx.dataset,
            coverage,
            tcf=0.5,
            outside_test_fraction=0.5,
            random_state=rng,
        )
        model = ctx.algorithm(split.train)
        test = split.test
        base_eval = evaluate_predictions(model.predict(test.X), test, frs)

        overlay_evals = {}
        for mode in (SOFT, HARD):
            overlay = Overlay(model, frs, split.train.X, mode=mode)
            overlay_evals[mode] = evaluate_predictions(
                overlay.predict(test.X), test, frs
            )

        config = default_config(
            dataset_name,
            tau=tau,
            mod_strategy="relabel",
            random_state=int(rng.integers(2**31)),
        )
        frote = FROTE(ctx.algorithm, frs, config)
        frote_result = frote.run(split.train)
        frote_eval = evaluate_predictions(
            frote_result.model.predict(test.X), test, frs
        )

        def deltas(ev) -> dict:
            return {
                "delta_j": ev.j_weighted() - base_eval.j_weighted(),
                "delta_mra": ev.mra - base_eval.mra,
                "delta_f1": ev.f1_outside - base_eval.f1_outside,
            }

        records.append(
            {
                "dataset": dataset_name,
                "model": model_name,
                "run": run_id,
                "overlay_soft": deltas(overlay_evals[SOFT]),
                "overlay_hard": deltas(overlay_evals[HARD]),
                "frote": deltas(frote_eval),
            }
        )
    return records


def format_table2(records: list[dict], *, metric: str = "delta_j") -> str:
    rows = []
    by_key: dict[tuple[str, str], list[dict]] = defaultdict(list)
    for r in records:
        by_key[(r["dataset"], r["model"])].append(r)
    for (dataset, model), runs in by_key.items():
        rows.append(
            {
                "dataset": dataset,
                "model": model,
                "Overlay-Soft": format_mean_std(
                    [r["overlay_soft"][metric] for r in runs]
                ),
                "Overlay-Hard": format_mean_std(
                    [r["overlay_hard"][metric] for r in runs]
                ),
                "FROTE": format_mean_std([r["frote"][metric] for r in runs]),
            }
        )
    return format_table(rows, title=f"Table 2 — {metric} vs Overlay")


# ---------------------------------------------------------------------- #
# Tables 3/4/5: random vs IP base instance selection
# ---------------------------------------------------------------------- #
def run_table3(
    dataset_name: str,
    model_name: str,
    *,
    n_runs: int = 5,
    frs_sizes: tuple[int, ...] = (1, 3, 5),
    tcf: float = 0.2,
    tau: int = 20,
    n: int | None = None,
    random_state: RandomState = 42,
) -> list[dict]:
    """ΔJ̄, Δ#Ins/|D|, ΔMRA, ΔF for the random and IP strategies.

    The paper aggregates over all runs of a dataset × model; the same rule
    sets and splits are used for both strategies (matched comparison).
    """
    ctx = build_context(dataset_name, model_name, n=n, random_state=random_state)
    rng = check_random_state(random_state)
    records: list[dict] = []
    for run_id in range(n_runs):
        frs_size = int(frs_sizes[run_id % len(frs_sizes)])
        prepared = prepare_run(ctx, frs_size=frs_size, tcf=tcf, rng=rng)
        if prepared is None:
            continue
        seed = int(rng.integers(2**31))
        per_strategy = {}
        for strategy in ("random", "ip"):
            config = default_config(
                dataset_name, tau=tau, selection=strategy, random_state=seed
            )
            run, _ = execute_run(ctx, prepared, config=config)
            per_strategy[strategy] = {
                "delta_j": run.delta_j,
                "delta_mra": run.delta_mra,
                "delta_f1": run.delta_f1,
                "added_fraction": run.added_fraction,
            }
        records.append(
            {
                "dataset": dataset_name,
                "model": model_name,
                "run": run_id,
                "frs_size": frs_size,
                **{f"{s}_{k}": v for s, d in per_strategy.items() for k, v in d.items()},
            }
        )
    return records


def format_table3(records: list[dict]) -> str:
    by_key: dict[tuple[str, str], list[dict]] = defaultdict(list)
    for r in records:
        by_key[(r["dataset"], r["model"])].append(r)
    rows = []
    for (dataset, model), runs in by_key.items():
        rows.append(
            {
                "dataset": dataset,
                "model": model,
                "dJ random": format_mean_std([r["random_delta_j"] for r in runs]),
                "dJ IP": format_mean_std([r["ip_delta_j"] for r in runs]),
                "dIns/|D| random": format_mean_std(
                    [r["random_added_fraction"] for r in runs]
                ),
                "dIns/|D| IP": format_mean_std([r["ip_added_fraction"] for r in runs]),
                "dMRA random": format_mean_std([r["random_delta_mra"] for r in runs]),
                "dMRA IP": format_mean_std([r["ip_delta_mra"] for r in runs]),
                "dF random": format_mean_std([r["random_delta_f1"] for r in runs]),
                "dF IP": format_mean_std([r["ip_delta_f1"] for r in runs]),
            }
        )
    return format_table(rows, title="Tables 3/4/5 — random vs IP selection")


# ---------------------------------------------------------------------- #
# Table 6: probabilistic rules
# ---------------------------------------------------------------------- #
def run_table6(
    dataset_name: str,
    *,
    probabilities: tuple[float, ...] = (0.4, 0.6, 0.8, 1.0),
    n_runs: int = 5,
    tau: int = 20,
    n: int | None = None,
    model_name: str = "LR",
    random_state: RandomState = 42,
) -> list[dict]:
    """Δmra and ΔJ̄ when the single feedback rule is *wrong* (paper Table 6).

    Protocol: |F| = 1, tcf = 0, test distribution unchanged (the expert's
    rule does not take effect), LR model.  MRA here measures agreement with
    the *original* labels inside the rule coverage, so a probabilistic rule
    (p < 1) that hedges toward the data should beat a fully confident one.
    """
    ctx = build_context(dataset_name, model_name, n=n, random_state=random_state)
    rng = check_random_state(random_state)
    marginal = ctx.dataset.class_counts().astype(float)
    marginal /= marginal.sum()
    records: list[dict] = []
    for run_id in range(n_runs):
        prepared = prepare_run(ctx, frs_size=1, tcf=0.0, rng=rng)
        if prepared is None:
            continue
        base_rule = prepared.frs[0]
        test = prepared.test
        cov_mask = base_rule.coverage_mask(test.X)

        initial_model = ctx.algorithm(prepared.train)
        init_pred = initial_model.predict(test.X)
        init_mra = accuracy_score(test.y[cov_mask], init_pred[cov_mask])
        init_eval = evaluate_predictions(init_pred, test, prepared.frs)

        for p in probabilities:
            rule_p = probabilistic_variant(base_rule, p, marginal)
            frs_p = FeedbackRuleSet((rule_p,))
            config = default_config(
                dataset_name,
                tau=tau,
                mod_strategy="none",  # tcf=0: relabel/drop are inapplicable
                random_state=int(rng.integers(2**31)),
            )
            frote = FROTE(ctx.algorithm, frs_p, config)
            result = frote.run(prepared.train)
            pred = result.model.predict(test.X)
            # "Rule not in effect": agreement w.r.t. original labels in
            # the coverage region.
            mra_orig = accuracy_score(test.y[cov_mask], pred[cov_mask])
            ev = evaluate_predictions(pred, test, prepared.frs)
            records.append(
                {
                    "dataset": dataset_name,
                    "run": run_id,
                    "p": p,
                    "delta_mra": mra_orig - init_mra,
                    "delta_j": ev.j_weighted() - init_eval.j_weighted(),
                }
            )
    return records


def format_table6(records: list[dict]) -> str:
    by_key: dict[tuple[str, float], list[dict]] = defaultdict(list)
    for r in records:
        by_key[(r["dataset"], r["p"])].append(r)
    rows = []
    for (dataset, p), runs in sorted(by_key.items()):
        rows.append(
            {
                "dataset": dataset,
                "p": p,
                "delta_mra": format_mean_std([r["delta_mra"] for r in runs]),
                "delta_j": format_mean_std([r["delta_j"] for r in runs]),
            }
        )
    return format_table(rows, title="Table 6 — probabilistic rules")


# ---------------------------------------------------------------------- #
# Ablations: the design-choice sweeps DESIGN.md calls out
# ---------------------------------------------------------------------- #
def run_ablation(
    dataset_name: str,
    model_name: str,
    *,
    parameter: str,
    values: tuple,
    n_runs: int = 3,
    frs_size: int = 3,
    tcf: float = 0.1,
    tau: int = 15,
    n: int | None = None,
    random_state: RandomState = 42,
) -> list[dict]:
    """Sweep one FROTE knob (``k``, ``q``, ``eta``, or ``mod_strategy``)."""
    if parameter not in ("k", "q", "eta", "mod_strategy"):
        raise ValueError(f"unsupported ablation parameter {parameter!r}")
    ctx = build_context(dataset_name, model_name, n=n, random_state=random_state)
    rng = check_random_state(random_state)
    records: list[dict] = []
    for run_id in range(n_runs):
        prepared = prepare_run(ctx, frs_size=frs_size, tcf=tcf, rng=rng)
        if prepared is None:
            continue
        seed = int(rng.integers(2**31))
        for value in values:
            kwargs = {
                "tau": tau,
                "random_state": seed,
                "eta": default_config(dataset_name).eta,
            }
            kwargs[parameter] = value
            config = FroteConfig(**kwargs)
            run, _ = execute_run(ctx, prepared, config=config)
            records.append(
                {
                    "dataset": dataset_name,
                    "model": model_name,
                    "run": run_id,
                    "parameter": parameter,
                    "value": value,
                    "delta_j": run.delta_j,
                    "delta_mra": run.delta_mra,
                    "delta_f1": run.delta_f1,
                    "n_added": run.n_added,
                }
            )
    return records


def format_ablation(records: list[dict]) -> str:
    by_val: dict[object, list[dict]] = defaultdict(list)
    for r in records:
        by_val[r["value"]].append(r)
    rows = []
    for value, runs in by_val.items():
        rows.append(
            {
                "parameter": runs[0]["parameter"],
                "value": value,
                "delta_j": format_mean_std([r["delta_j"] for r in runs]),
                "delta_mra": format_mean_std([r["delta_mra"] for r in runs]),
                "delta_f1": format_mean_std([r["delta_f1"] for r in runs]),
                "n_added": format_mean_std([float(r["n_added"]) for r in runs], digits=1),
            }
        )
    return format_table(rows, title="Ablation sweep")
