"""Table drivers: the rows behind paper Tables 2, 3, 4, 5, and 6.

Every driver is a pure consumer of the declarative experiments API — it
builds an :class:`~repro.experiments.ExperimentSpec` (sweeps included),
runs it through an :class:`~repro.experiments.ExperimentRunner`, and
post-processes the records; a ``format_*`` helper renders them in the
paper's layout (mean ± std cells).  Matched comparisons (same FRS draw and
split across swept values or strategies) come from the spec layer's
sweep-blind seed derivation, not from shared RNG state.
"""

from __future__ import annotations

from collections import defaultdict

from repro.experiments.grid import ExperimentRunner, default_runner
from repro.experiments.report import format_mean_std, format_table
from repro.experiments.spec import ExperimentSpec
from repro.utils.rng import RandomState


# ---------------------------------------------------------------------- #
# Table 2 (and Tables 7/8): FROTE vs Overlay
# ---------------------------------------------------------------------- #
def run_table2(
    dataset_name: str,
    model_name: str,
    *,
    n_runs: int = 5,
    frs_size: int = 3,
    tau: int = 20,
    n: int | None = None,
    random_state: RandomState = 42,
    runner: ExperimentRunner | None = None,
) -> list[dict]:
    """ΔJ̄ / ΔMRA / ΔF of Overlay-Soft, Overlay-Hard, and FROTE.

    Paper protocol: 3 rules per run, 50/50 coverage and outside-coverage
    splits, deltas relative to the unpatched initial model.
    """
    spec = ExperimentSpec(
        name=f"table2-{dataset_name}-{model_name}",
        experiment="overlay",
        datasets=(dataset_name,),
        models=(model_name,),
        frs_sizes=(frs_size,),
        tcfs=(0.5,),
        n_runs=n_runs,
        seed=int(random_state),
        n=n,
        config={"tau": tau, "mod_strategy": "relabel"},
        params={"outside_test_fraction": 0.5},
    )
    return default_runner(runner).run(spec).records


def format_table2(records: list[dict], *, metric: str = "delta_j") -> str:
    rows = []
    by_key: dict[tuple[str, str], list[dict]] = defaultdict(list)
    for r in records:
        by_key[(r["dataset"], r["model"])].append(r)
    for (dataset, model), runs in by_key.items():
        rows.append(
            {
                "dataset": dataset,
                "model": model,
                "Overlay-Soft": format_mean_std(
                    [r["overlay_soft"][metric] for r in runs]
                ),
                "Overlay-Hard": format_mean_std(
                    [r["overlay_hard"][metric] for r in runs]
                ),
                "FROTE": format_mean_std([r["frote"][metric] for r in runs]),
            }
        )
    return format_table(rows, title=f"Table 2 — {metric} vs Overlay")


# ---------------------------------------------------------------------- #
# Tables 3/4/5: random vs IP base instance selection
# ---------------------------------------------------------------------- #
def run_table3(
    dataset_name: str,
    model_name: str,
    *,
    n_runs: int = 5,
    frs_sizes: tuple[int, ...] = (1, 3, 5),
    tcf: float = 0.2,
    tau: int = 20,
    n: int | None = None,
    random_state: RandomState = 42,
    runner: ExperimentRunner | None = None,
) -> list[dict]:
    """ΔJ̄, Δ#Ins/|D|, ΔMRA, ΔF for the random and IP strategies.

    The paper aggregates over all runs of a dataset × model; both
    strategies execute against the same rule set and split inside one run
    kind (matched comparison).  Run ``i`` uses ``frs_sizes[i % len]``,
    cycling the sizes across repetitions like the paper's pooled draws —
    expressed here by expanding the full grid and filtering it, because
    specs are plain data.
    """
    frs_sizes = tuple(int(s) for s in frs_sizes)
    spec = ExperimentSpec(
        name=f"table3-{dataset_name}-{model_name}",
        experiment="selection",
        datasets=(dataset_name,),
        models=(model_name,),
        frs_sizes=frs_sizes,
        tcfs=(tcf,),
        n_runs=n_runs,
        seed=int(random_state),
        n=n,
        config={"tau": tau},
    )
    cycled = [
        run for run in spec.expand()
        if run.frs_size == frs_sizes[run.run % len(frs_sizes)]
    ]
    return default_runner(runner).run(cycled).records


def format_table3(records: list[dict]) -> str:
    by_key: dict[tuple[str, str], list[dict]] = defaultdict(list)
    for r in records:
        by_key[(r["dataset"], r["model"])].append(r)
    rows = []
    for (dataset, model), runs in by_key.items():
        rows.append(
            {
                "dataset": dataset,
                "model": model,
                "dJ random": format_mean_std([r["random_delta_j"] for r in runs]),
                "dJ IP": format_mean_std([r["ip_delta_j"] for r in runs]),
                "dIns/|D| random": format_mean_std(
                    [r["random_added_fraction"] for r in runs]
                ),
                "dIns/|D| IP": format_mean_std([r["ip_added_fraction"] for r in runs]),
                "dMRA random": format_mean_std([r["random_delta_mra"] for r in runs]),
                "dMRA IP": format_mean_std([r["ip_delta_mra"] for r in runs]),
                "dF random": format_mean_std([r["random_delta_f1"] for r in runs]),
                "dF IP": format_mean_std([r["ip_delta_f1"] for r in runs]),
            }
        )
    return format_table(rows, title="Tables 3/4/5 — random vs IP selection")


# ---------------------------------------------------------------------- #
# Table 6: probabilistic rules
# ---------------------------------------------------------------------- #
def run_table6(
    dataset_name: str,
    *,
    probabilities: tuple[float, ...] = (0.4, 0.6, 0.8, 1.0),
    n_runs: int = 5,
    tau: int = 20,
    n: int | None = None,
    model_name: str = "LR",
    random_state: RandomState = 42,
    runner: ExperimentRunner | None = None,
) -> list[dict]:
    """Δmra and ΔJ̄ when the single feedback rule is *wrong* (paper Table 6).

    Protocol: |F| = 1, tcf = 0, test distribution unchanged (the expert's
    rule does not take effect), LR model.  The ``p`` values are a sweep
    axis, so every probability sees the same rule draw and split per run.
    """
    spec = ExperimentSpec(
        name=f"table6-{dataset_name}",
        experiment="probabilistic",
        datasets=(dataset_name,),
        models=(model_name,),
        frs_sizes=(1,),
        tcfs=(0.0,),
        n_runs=n_runs,
        seed=int(random_state),
        n=n,
        config={"tau": tau},
        sweep={"params.p": tuple(float(p) for p in probabilities)},
    )
    return default_runner(runner).run(spec).records


def format_table6(records: list[dict]) -> str:
    by_key: dict[tuple[str, float], list[dict]] = defaultdict(list)
    for r in records:
        by_key[(r["dataset"], r["p"])].append(r)
    rows = []
    for (dataset, p), runs in sorted(by_key.items()):
        rows.append(
            {
                "dataset": dataset,
                "p": p,
                "delta_mra": format_mean_std([r["delta_mra"] for r in runs]),
                "delta_j": format_mean_std([r["delta_j"] for r in runs]),
            }
        )
    return format_table(rows, title="Table 6 — probabilistic rules")


# ---------------------------------------------------------------------- #
# Ablations: the design-choice sweeps DESIGN.md calls out
# ---------------------------------------------------------------------- #
def run_ablation(
    dataset_name: str,
    model_name: str,
    *,
    parameter: str,
    values: tuple,
    n_runs: int = 3,
    frs_size: int = 3,
    tcf: float = 0.1,
    tau: int = 15,
    n: int | None = None,
    random_state: RandomState = 42,
    runner: ExperimentRunner | None = None,
) -> list[dict]:
    """Sweep one FROTE knob (``k``, ``q``, ``eta``, or ``mod_strategy``).

    The knob is a ``config.*`` sweep axis: every value of a run shares the
    same FRS draw, split, and FROTE seed (matched sweep).
    """
    if parameter not in ("k", "q", "eta", "mod_strategy"):
        raise ValueError(f"unsupported ablation parameter {parameter!r}")
    spec = ExperimentSpec(
        name=f"ablation-{parameter}-{dataset_name}-{model_name}",
        experiment="frote",
        datasets=(dataset_name,),
        models=(model_name,),
        frs_sizes=(frs_size,),
        tcfs=(tcf,),
        n_runs=n_runs,
        seed=int(random_state),
        n=n,
        config={"tau": tau},
        sweep={f"config.{parameter}": tuple(values)},
    )
    records = []
    for run_spec, record in default_runner(runner).run(spec).pairs:
        if record is None:
            continue
        records.append(
            {
                "dataset": record["dataset"],
                "model": record["model"],
                "run": record["run"],
                "parameter": parameter,
                "value": run_spec.config_mapping[parameter],
                "delta_j": record["delta_j"],
                "delta_mra": record["delta_mra"],
                "delta_f1": record["delta_f1"],
                "n_added": record["n_added"],
            }
        )
    return records


def format_ablation(records: list[dict]) -> str:
    by_val: dict[object, list[dict]] = defaultdict(list)
    for r in records:
        by_val[r["value"]].append(r)
    rows = []
    for value, runs in by_val.items():
        rows.append(
            {
                "parameter": runs[0]["parameter"],
                "value": value,
                "delta_j": format_mean_std([r["delta_j"] for r in runs]),
                "delta_mra": format_mean_std([r["delta_mra"] for r in runs]),
                "delta_f1": format_mean_std([r["delta_f1"] for r in runs]),
                "n_added": format_mean_std([float(r["n_added"]) for r in runs], digits=1),
            }
        )
    return format_table(rows, title="Ablation sweep")
