"""The :class:`ExperimentRunner`: specs in, records out, store in between.

``runner.run(spec)`` expands the grid, skips every run the
:class:`~repro.experiments.RunStore` already holds (resume), hands the
misses to the configured :class:`~repro.experiments.executors.Executor`,
persists each outcome as it lands, and returns a :class:`GridResult` whose
record order matches the spec's expansion order — independent of executor
scheduling, so serial and parallel runs are bit-identical end to end.

Progress is surfaced the way the session API surfaces it: structured
:class:`ExperimentEvent`\\ s pushed to listeners registered with
:meth:`ExperimentRunner.on_event` (mirroring ``EditSession.on_event`` and
its :class:`~repro.engine.state.ProgressEvent`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.experiments.executors import Executor, make_executor
from repro.experiments.spec import ExperimentSpec, RunSpec
from repro.experiments.store import STATUS_OK, RunStore


@dataclass(frozen=True)
class ExperimentEvent:
    """A structured notification from the experiment grid.

    ``kind`` is one of ``"started"``, ``"run-started"``,
    ``"run-completed"``, ``"run-skipped"``, ``"run-cached"``, or
    ``"finished"``.  ``index``/``total`` locate the run in the expanded
    grid (``index`` is ``-1`` for grid-level events); ``spec`` and
    ``record`` describe the run for per-run kinds.
    """

    kind: str
    index: int
    total: int
    spec: RunSpec | None = None
    record: dict | None = None

    @property
    def completed(self) -> bool:
        return self.kind == "run-completed"


EventListener = Callable[[ExperimentEvent], None]


@dataclass(frozen=True)
class GridResult:
    """Outcome of one grid execution, in spec-expansion order."""

    runs: tuple[RunSpec, ...]
    envelopes: tuple[dict, ...]  # aligned with runs: {"status", "record"}
    executed: int  # runs actually computed this call
    cached: int  # runs served from the store
    skipped: int  # runs with no conflict-free FRS (both sources)

    @property
    def records(self) -> list[dict]:
        """Records of completed runs (skipped draws omitted), grid order."""
        return [
            env["record"]
            for env in self.envelopes
            if env["status"] == STATUS_OK
        ]

    @property
    def pairs(self) -> list[tuple[RunSpec, dict | None]]:
        """``(spec, record-or-None)`` for every run, grid order."""
        return [
            (spec, env["record"]) for spec, env in zip(self.runs, self.envelopes)
        ]

    def __len__(self) -> int:
        return len(self.runs)


class ExperimentRunner:
    """Executes experiment grids against a pluggable executor and store.

    Parameters
    ----------
    store:
        Optional :class:`RunStore`.  With a store, completed runs are
        skipped on re-execution (resume) and every new outcome is
        persisted; without one, grids run ephemerally.
    executor:
        Any :class:`~repro.experiments.executors.Executor`.  Defaults to
        :func:`make_executor` on ``workers``.
    workers:
        Convenience: ``workers=N`` builds the default parallel executor.
    journal_dir:
        Opt into the durable run journal: every :meth:`run` call appends
        its :class:`ExperimentEvent` stream — grid start/finish plus one
        record per run outcome — to an append-only journal under this
        directory (one journal per grid, named from the spec; see
        :mod:`repro.journal`).  Complements the store's
        resume-by-missing-hash with a durable *trace* of what executed
        when.
    """

    def __init__(
        self,
        *,
        store: RunStore | None = None,
        executor: Executor | None = None,
        workers: int = 1,
        journal_dir: str | None = None,
    ) -> None:
        self.store = store
        self.executor = executor if executor is not None else make_executor(workers)
        self.journal_dir = journal_dir
        self._listeners: list[EventListener] = []

    # ------------------------------------------------------------------ #
    def on_event(self, listener: EventListener) -> "ExperimentRunner":
        """Subscribe to every :class:`ExperimentEvent` this runner emits."""
        self._listeners.append(listener)
        return self

    def _emit(self, event: ExperimentEvent) -> None:
        for listener in self._listeners:
            listener(event)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _expand(spec: ExperimentSpec | Sequence[RunSpec]) -> list[RunSpec]:
        if isinstance(spec, ExperimentSpec):
            return spec.validate().expand()
        return list(spec)

    def _journal_name(self, spec: ExperimentSpec | Sequence[RunSpec]) -> str:
        if isinstance(spec, ExperimentSpec):
            import hashlib

            digest = hashlib.sha256(spec.name.encode("utf-8")).hexdigest()[:8]
            return f"{spec.name}-{digest}"
        return "grid"

    def _open_journal(self, spec: ExperimentSpec | Sequence[RunSpec]):
        """A journal writer plus the translating event listener, or None."""
        if self.journal_dir is None:
            return None, None
        from pathlib import Path

        from repro.journal.writer import JournalWriter

        name = self._journal_name(spec)
        writer = JournalWriter(
            Path(self.journal_dir) / name,
            meta={"journal_kind": "grid", "name": name},
        )

        def listener(event: ExperimentEvent) -> None:
            data: dict = {"index": event.index, "total": event.total}
            if event.spec is not None:
                data.update(
                    dataset=event.spec.dataset,
                    model=event.spec.model,
                    experiment=event.spec.experiment,
                    spec_hash=event.spec.spec_hash,
                    seed=event.spec.seed,
                )
            if event.record is not None and event.kind in (
                "run-completed", "run-skipped",
            ):
                data["record"] = event.record
            # Outcome records are the grid's durability boundary (the
            # analogue of the session journal's iteration fsync).
            durable = event.kind in ("run-completed", "run-skipped", "finished")
            kind = f"grid-{event.kind}" if event.index < 0 else event.kind
            writer.append(kind, data, sync=durable)

        return writer, listener

    def run(self, spec: ExperimentSpec | Sequence[RunSpec]) -> GridResult:
        """Execute a grid (or an explicit run list); returns its results.

        Store hits are served without executing; misses run on the
        executor and are persisted the moment they complete, so an
        interrupted grid resumes from its last finished run.  With
        ``journal_dir`` set, the full event stream is also journaled.
        """
        writer, journal_listener = self._open_journal(spec)
        if journal_listener is not None:
            self._listeners.append(journal_listener)
        try:
            return self._run(spec)
        finally:
            if journal_listener is not None:
                self._listeners.remove(journal_listener)
                writer.close()

    def _run(self, spec: ExperimentSpec | Sequence[RunSpec]) -> GridResult:
        runs = self._expand(spec)
        total = len(runs)
        envelopes: list[dict | None] = [None] * total
        self._emit(ExperimentEvent("started", -1, total))

        to_run: list[int] = []
        cached = 0
        for index, run_spec in enumerate(runs):
            stored = self.store.get(run_spec) if self.store is not None else None
            if stored is not None:
                envelopes[index] = {"status": stored.status, "record": stored.record}
                cached += 1
                self._emit(
                    ExperimentEvent(
                        "run-cached", index, total, spec=run_spec,
                        record=stored.record,
                    )
                )
            else:
                to_run.append(index)

        if to_run:
            def pending():
                # Lazy so "run-started" fires when the executor actually
                # pulls the run (serial: right before execution; parallel:
                # at submission, bounded by the executor's max_pending).
                for index in to_run:
                    self._emit(
                        ExperimentEvent("run-started", index, total, spec=runs[index])
                    )
                    yield runs[index]

            for local_index, envelope in self.executor.execute(pending()):
                index = to_run[local_index]
                run_spec = runs[index]
                envelopes[index] = envelope
                if self.store is not None:
                    self.store.put(run_spec, envelope["record"])
                kind = (
                    "run-completed"
                    if envelope["status"] == STATUS_OK
                    else "run-skipped"
                )
                self._emit(
                    ExperimentEvent(
                        kind, index, total, spec=run_spec,
                        record=envelope["record"],
                    )
                )

        skipped = sum(1 for env in envelopes if env["status"] != STATUS_OK)
        result = GridResult(
            runs=tuple(runs),
            envelopes=tuple(envelopes),
            executed=len(to_run),
            cached=cached,
            skipped=skipped,
        )
        self._emit(ExperimentEvent("finished", -1, total))
        return result

    # ------------------------------------------------------------------ #
    def status(self, spec: ExperimentSpec | Sequence[RunSpec]) -> dict[str, int]:
        """Completion counts for a grid against this runner's store."""
        runs = self._expand(spec)
        if self.store is None:
            return {"total": len(runs), "ok": 0, "skipped": 0, "missing": len(runs)}
        return self.store.status_counts(runs)


def default_runner(runner: ExperimentRunner | None) -> ExperimentRunner:
    """The given runner, or a fresh ephemeral serial one (driver default)."""
    return runner if runner is not None else ExperimentRunner()
