"""Run kinds: the measurable executors behind every experiment spec.

A *run kind* is a pure function ``RunSpec -> record | None`` registered by
name in :data:`RUN_KINDS` (an engine-style registry with did-you-mean
errors).  The kind owns everything inside one run — context, FRS draw,
split, model training, metrics — and derives every seed from the spec
alone, which is the invariant that makes executors interchangeable: any
process executing the same ``RunSpec`` produces the same record.

Built-in kinds cover the paper's protocols:

* ``"frote"`` — the three-model run behind Figures 2/3 and the ablations;
* ``"trace"`` — Figure 9's per-iteration augmentation progress;
* ``"overlay"`` — Table 2's FROTE vs Overlay-Soft/Hard comparison;
* ``"selection"`` — Tables 3/4/5's matched random-vs-IP comparison;
* ``"probabilistic"`` — Table 6's wrong-rule probabilistic protocol.

Register your own with :func:`register_run_kind` and reference it from an
:class:`~repro.experiments.ExperimentSpec` — no core edits required.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.config import FroteConfig
from repro.core.frote import FROTE
from repro.core.objective import evaluate_model, evaluate_predictions
from repro.data.split import coverage_aware_split
from repro.datasets import DATASETS
from repro.engine.registry import InfoRegistry
from repro.experiments.runner import execute_run
from repro.experiments.setup import (
    ExperimentContext,
    build_context,
    prepare_run,
    probabilistic_variant,
)
from repro.experiments.spec import RunSpec, derive_seed
from repro.metrics.classification import accuracy_score
from repro.rules.ruleset import FeedbackRuleSet, draw_conflict_free
from repro.utils.rng import check_random_state

#: Registry of run kinds; ``RunSpec.experiment`` names an entry here.
RUN_KINDS: InfoRegistry = InfoRegistry("run kind")


def register_run_kind(name: str, fn=None, *, overwrite: bool = False):
    """Register a ``RunSpec -> record | None`` executor (decorator form)."""
    return RUN_KINDS.register(name, fn, overwrite=overwrite)


# --------------------------------------------------------------------- #
# Shared per-process machinery
# --------------------------------------------------------------------- #
@lru_cache(maxsize=8)
def _cached_context(
    dataset: str, model: str, n: int | None, context_seed: int
) -> ExperimentContext:
    """Per-process cache of (dataset, model) contexts.

    Contexts are deterministic in their arguments, so worker processes
    rebuild identical contexts independently — the cache only avoids
    repeated work within a process, it never affects results.
    """
    return build_context(dataset, model, n=n, random_state=context_seed)


def shared_context(spec: RunSpec) -> ExperimentContext:
    """The (dataset, model, n, context_seed) context for ``spec``."""
    return _cached_context(spec.dataset, spec.model, spec.n, spec.context_seed)


def clear_context_cache() -> None:
    """Drop all per-process caches (tests and long-lived sessions)."""
    _cached_context.cache_clear()
    _cached_prepared.cache_clear()
    _probabilistic_baseline.cache_clear()


def frote_config_for(spec: RunSpec, **overrides) -> FroteConfig:
    """Build the run's :class:`FroteConfig` from spec overrides.

    Precedence: explicit ``overrides`` > ``spec.config`` > the dataset
    registry's per-dataset η default > ``FroteConfig`` defaults.  The
    FROTE loop's ``random_state`` is derived from the run seed unless the
    spec pins one explicitly.
    """
    kwargs = spec.config_mapping
    kwargs.update(overrides)
    if "eta" not in kwargs and spec.dataset in DATASETS:
        kwargs["eta"] = DATASETS[spec.dataset].eta
    kwargs.setdefault("random_state", derive_seed(spec.seed, "frote"))
    return FroteConfig(**kwargs)


def _prepare_rng(spec: RunSpec):
    return check_random_state(derive_seed(spec.seed, "prepare"))


@lru_cache(maxsize=8)
def _cached_prepared(
    dataset: str, model: str, n: int | None, context_seed: int,
    frs_size: int, tcf: float, seed: int,
):
    """Per-process cache of prepared runs (FRS draw + split).

    Sweep variants of a run share all these coordinates (seed derivation
    is sweep-blind), so e.g. a 4-value sweep reuses one draw instead of
    recomputing four identical ones.  Deterministic in its key — purely a
    per-process work saver, like :func:`_cached_context`.
    """
    ctx = _cached_context(dataset, model, n, context_seed)
    rng = check_random_state(derive_seed(seed, "prepare"))
    return prepare_run(ctx, frs_size=frs_size, tcf=tcf, rng=rng)


def prepared_for(spec: RunSpec):
    """The (cached) prepared run for ``spec``, or ``None`` for a dry draw."""
    return _cached_prepared(
        spec.dataset, spec.model, spec.n, spec.context_seed,
        spec.frs_size, spec.tcf, spec.seed,
    )


def _coords(spec: RunSpec) -> dict:
    """The grid coordinates every record carries."""
    return {
        "dataset": spec.dataset,
        "model": spec.model,
        "frs_size": spec.frs_size,
        "tcf": spec.tcf,
        "run": spec.run,
        "seed": spec.seed,
    }


# --------------------------------------------------------------------- #
# "frote": initial / modified / final three-model run (Figs 2-3, ablations)
# --------------------------------------------------------------------- #
@register_run_kind("frote")
def run_frote_kind(spec: RunSpec) -> dict | None:
    ctx = shared_context(spec)
    prepared = prepared_for(spec)
    if prepared is None:
        return None
    run, _ = execute_run(ctx, prepared, config=frote_config_for(spec))
    return {
        **_coords(spec),
        "j_initial": run.initial.j_weighted,
        "j_mod": run.modified.j_weighted,
        "j_final": run.final.j_weighted,
        "mod_improvement": run.modified.j_weighted - run.initial.j_weighted,
        "final_improvement": run.delta_j_vs_modified,
        "delta_j": run.delta_j,
        "delta_mra": run.delta_mra,
        "delta_f1": run.delta_f1,
        "n_added": run.n_added,
        "added_fraction": run.added_fraction,
        "iterations": run.iterations,
        "accepted": run.accepted,
        "tcf_actual": run.tcf,
    }


# --------------------------------------------------------------------- #
# "trace": per-iteration augmentation progress (Fig 9)
# --------------------------------------------------------------------- #
@register_run_kind("trace")
def run_trace_kind(spec: RunSpec) -> dict | None:
    """Fig 9's progress trace, optionally with wall-time instrumentation.

    Passing ``params={"timings": true}`` adds ``iteration_seconds`` (one
    entry per loop iteration) and ``stage_seconds`` (pipeline stage →
    total seconds) from the engine's per-stage timers — the incremental
    core's savings, observable per run.  Timing fields are wall-clock
    and therefore *not* covered by the executor-interchangeability
    invariant (everything else in the record is).
    """
    import repro

    ctx = shared_context(spec)
    prepared = prepared_for(spec)
    if prepared is None:
        return None
    frs = prepared.frs
    test = prepared.test

    def score(model) -> float:
        return evaluate_model(model, test, frs).j_weighted()

    want_timings = bool(spec.params_mapping.get("timings", False))
    iteration_seconds: list[float] = []
    stage_totals: dict[str, float] = {}

    def collect_timing(event) -> None:
        if event.stage_seconds is None:
            return
        iteration_seconds.append(event.iteration_seconds)
        for stage, seconds in event.stage_seconds.items():
            stage_totals[stage] = stage_totals.get(stage, 0.0) + seconds

    from dataclasses import asdict

    session = (
        repro.edit(prepared.train)
        .with_rules(frs)
        .with_algorithm(ctx.algorithm)
        .configure(**asdict(frote_config_for(spec)))
        .track_metric(score)
    )
    if want_timings:
        session.on_iteration(collect_timing)
    result = session.run()
    initial_model = ctx.algorithm(prepared.train)
    record = {
        **_coords(spec),
        "n_added": [0]
        + [rec.n_added_total for rec in result.history if rec.accepted],
        "j_test": [score(initial_model)]
        + [
            rec.external_score
            for rec in result.history
            if rec.accepted and rec.external_score is not None
        ],
    }
    if want_timings:
        record["iteration_seconds"] = iteration_seconds
        record["stage_seconds"] = stage_totals
    return record


# --------------------------------------------------------------------- #
# "overlay": FROTE vs Overlay-Soft/Hard deltas (Table 2)
# --------------------------------------------------------------------- #
@register_run_kind("overlay")
def run_overlay_kind(spec: RunSpec) -> dict | None:
    from repro.baselines.overlay import HARD, SOFT, Overlay

    ctx = shared_context(spec)
    rng = _prepare_rng(spec)
    frs = draw_conflict_free(
        list(ctx.rule_pool), spec.frs_size, ctx.dataset.X.schema, rng
    )
    if frs is None:
        return None
    coverage = frs.coverage_mask(ctx.dataset.X)
    split = coverage_aware_split(
        ctx.dataset,
        coverage,
        tcf=spec.tcf,
        outside_test_fraction=spec.params_mapping.get("outside_test_fraction", 0.5),
        random_state=rng,
    )
    model = ctx.algorithm(split.train)
    test = split.test
    base_eval = evaluate_predictions(model.predict(test.X), test, frs)

    overlay_evals = {}
    for mode in (SOFT, HARD):
        overlay = Overlay(model, frs, split.train.X, mode=mode)
        overlay_evals[mode] = evaluate_predictions(overlay.predict(test.X), test, frs)

    frote = FROTE(ctx.algorithm, frs, frote_config_for(spec))
    frote_result = frote.run(split.train)
    frote_eval = evaluate_predictions(frote_result.model.predict(test.X), test, frs)

    def deltas(ev) -> dict:
        return {
            "delta_j": ev.j_weighted() - base_eval.j_weighted(),
            "delta_mra": ev.mra - base_eval.mra,
            "delta_f1": ev.f1_outside - base_eval.f1_outside,
        }

    return {
        **_coords(spec),
        "overlay_soft": deltas(overlay_evals[SOFT]),
        "overlay_hard": deltas(overlay_evals[HARD]),
        "frote": deltas(frote_eval),
    }


# --------------------------------------------------------------------- #
# "selection": matched random-vs-IP strategy comparison (Tables 3/4/5)
# --------------------------------------------------------------------- #
@register_run_kind("selection")
def run_selection_kind(spec: RunSpec) -> dict | None:
    ctx = shared_context(spec)
    prepared = prepared_for(spec)
    if prepared is None:
        return None
    record = dict(_coords(spec))
    strategies = spec.params_mapping.get("strategies", "random,ip").split(",")
    for strategy in strategies:
        config = frote_config_for(spec, selection=strategy)
        run, _ = execute_run(ctx, prepared, config=config)
        record.update(
            {
                f"{strategy}_delta_j": run.delta_j,
                f"{strategy}_delta_mra": run.delta_mra,
                f"{strategy}_delta_f1": run.delta_f1,
                f"{strategy}_added_fraction": run.added_fraction,
            }
        )
    return record


# --------------------------------------------------------------------- #
# "probabilistic": wrong-rule robustness (Table 6)
# --------------------------------------------------------------------- #
@lru_cache(maxsize=4)
def _probabilistic_baseline(
    dataset: str, model: str, n: int | None, context_seed: int,
    frs_size: int, tcf: float, seed: int,
):
    """Initial-model baseline shared by every swept ``p`` of one run.

    The ``p`` values are a seed-blind sweep axis, so all of them see the
    same prepared run and the same initial model — compute it once per
    process instead of once per swept value.
    """
    ctx = _cached_context(dataset, model, n, context_seed)
    prepared = _cached_prepared(
        dataset, model, n, context_seed, frs_size, tcf, seed
    )
    if prepared is None:
        return None
    test = prepared.test
    cov_mask = prepared.frs[0].coverage_mask(test.X)
    initial_model = ctx.algorithm(prepared.train)
    init_pred = initial_model.predict(test.X)
    init_mra = accuracy_score(test.y[cov_mask], init_pred[cov_mask])
    init_eval = evaluate_predictions(init_pred, test, prepared.frs)
    return cov_mask, init_mra, init_eval


@register_run_kind("probabilistic")
def run_probabilistic_kind(spec: RunSpec) -> dict | None:
    ctx = shared_context(spec)
    prepared = prepared_for(spec)
    if prepared is None:
        return None
    p = float(spec.params_mapping.get("p", 1.0))
    marginal = ctx.dataset.class_counts().astype(float)
    marginal /= marginal.sum()

    base_rule = prepared.frs[0]
    test = prepared.test
    cov_mask, init_mra, init_eval = _probabilistic_baseline(
        spec.dataset, spec.model, spec.n, spec.context_seed,
        spec.frs_size, spec.tcf, spec.seed,
    )

    rule_p = probabilistic_variant(base_rule, p, marginal)
    frs_p = FeedbackRuleSet((rule_p,))
    # tcf=0: relabel/drop are inapplicable — no covered training rows.
    frote = FROTE(ctx.algorithm, frs_p, frote_config_for(spec, mod_strategy="none"))
    result = frote.run(prepared.train)
    pred = result.model.predict(test.X)
    # "Rule not in effect": agreement w.r.t. original labels in coverage.
    mra_orig = accuracy_score(test.y[cov_mask], pred[cov_mask])
    ev = evaluate_predictions(pred, test, prepared.frs)
    return {
        **_coords(spec),
        "p": p,
        "delta_mra": mra_orig - init_mra,
        "delta_j": ev.j_weighted() - init_eval.j_weighted(),
    }
