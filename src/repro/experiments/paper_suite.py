"""One-call reproduction of the paper's full experiment suite.

``run_paper_suite`` executes every table/figure driver at a chosen scale
through a single shared :class:`~repro.experiments.ExperimentRunner` and
returns the rendered reports; the CLI exposes it as
``python -m repro.experiments all``.  Because the drivers are pure
consumers of the spec API, passing a ``store`` makes the whole suite
resumable and ``workers`` runs it in parallel — with records identical to
a serial, storeless run.  Scales:

* ``smoke`` — seconds; 1 run, τ = 4 (CI sanity).
* ``bench`` — minutes; the defaults the benchmark suite uses.
* ``paper`` — hours; 30 runs, τ = 200, paper-size datasets (closest to
  the published protocol this reproduction supports).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.experiments.figures import (
    format_fig2,
    format_fig3,
    format_fig9,
    run_fig2,
    run_fig3,
    run_fig9,
)
from repro.experiments.grid import ExperimentRunner
from repro.experiments.report import format_table
from repro.experiments.store import RunStore
from repro.experiments.tables import (
    format_ablation,
    format_table2,
    format_table3,
    format_table6,
    run_ablation,
    run_table2,
    run_table3,
    run_table6,
)

SCALES = {
    "smoke": {"n_runs": 1, "tau": 4, "n": 600},
    "bench": {"n_runs": 3, "tau": 10, "n": None},
    "paper": {"n_runs": 30, "tau": 200, "n": None},
}


@dataclass(frozen=True)
class SuiteItem:
    """One suite entry: experiment id, driver thunk, renderer.

    ``runner`` receives the suite's shared :class:`ExperimentRunner` so
    every item draws from the same store/executor.
    """

    experiment: str
    dataset: str
    model: str
    runner: Callable[[ExperimentRunner], list[dict]]
    renderer: Callable[[list[dict]], str]


def build_suite(
    *,
    scale: str = "bench",
    datasets_fig2: tuple[str, ...] = ("car",),
    models_fig2: tuple[str, ...] = ("LR", "RF"),
    random_state: int = 42,
) -> list[SuiteItem]:
    """Assemble the suite's work items (lazily; nothing runs yet)."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {sorted(SCALES)}, got {scale!r}")
    cfg = SCALES[scale]
    n_runs, tau, n = cfg["n_runs"], cfg["tau"], cfg["n"]
    items: list[SuiteItem] = []

    for ds in datasets_fig2:
        for model in models_fig2:
            items.append(
                SuiteItem(
                    "fig2", ds, model,
                    lambda r, ds=ds, model=model: run_fig2(
                        ds, model, n_runs=n_runs, tau=tau, n=n,
                        random_state=random_state, runner=r,
                    ),
                    format_fig2,
                )
            )
    items.append(
        SuiteItem(
            "fig3", "breast_cancer", "LR",
            lambda r: run_fig3(
                "breast_cancer", "LR", frs_sizes=(3, 5, 8), n_runs=n_runs,
                tau=tau, n=n, random_state=random_state, runner=r,
            ),
            format_fig3,
        )
    )
    items.append(
        SuiteItem(
            "fig9", "adult", "LR",
            lambda r: run_fig9(
                "adult", "LR", n_runs=max(1, n_runs // 2), tau=tau,
                n=n or 1200, random_state=random_state, runner=r,
            ),
            format_fig9,
        )
    )
    for ds in ("breast_cancer", "mushroom"):
        items.append(
            SuiteItem(
                "table2", ds, "LR",
                lambda r, ds=ds: run_table2(
                    ds, "LR", n_runs=n_runs, tau=tau, n=n,
                    random_state=random_state, runner=r,
                ),
                format_table2,
            )
        )
    items.append(
        SuiteItem(
            "table3", "car", "LR",
            lambda r: run_table3(
                "car", "LR", n_runs=n_runs, tau=tau, n=n,
                random_state=random_state, runner=r,
            ),
            format_table3,
        )
    )
    items.append(
        SuiteItem(
            "table6", "mushroom", "LR",
            lambda r: run_table6(
                "mushroom", n_runs=n_runs, tau=tau, n=n,
                random_state=random_state, runner=r,
            ),
            format_table6,
        )
    )
    items.append(
        SuiteItem(
            "ablation", "car", "LR",
            lambda r: run_ablation(
                "car", "LR", parameter="k", values=(2, 5, 10),
                n_runs=max(1, n_runs // 2), tau=tau, n=n,
                random_state=random_state, runner=r,
            ),
            format_ablation,
        )
    )
    return items


def run_paper_suite(
    *,
    scale: str = "bench",
    random_state: int = 42,
    progress: Callable[[str], None] | None = None,
    store: RunStore | str | Path | None = None,
    workers: int = 1,
) -> dict[str, str]:
    """Run every suite item; returns ``{"<exp>/<dataset>/<model>": report}``.

    ``progress`` (optional) receives a line per completed item.  ``store``
    (a :class:`RunStore` or directory path) makes the suite resumable;
    ``workers > 1`` executes each item's grid in parallel — both without
    changing any record.
    """
    from repro.datasets import table1_rows

    if store is not None and not isinstance(store, RunStore):
        store = RunStore(store)
    runner = ExperimentRunner(store=store, workers=workers)

    reports: dict[str, str] = {
        "table1": format_table(table1_rows(), title="Table 1 — dataset properties")
    }
    if progress:
        progress("table1 done")
    for item in build_suite(scale=scale, random_state=random_state):
        key = f"{item.experiment}/{item.dataset}/{item.model}"
        records = item.runner(runner)
        reports[key] = item.renderer(records)
        if progress:
            progress(f"{key} done ({len(records)} records)")
    return reports
