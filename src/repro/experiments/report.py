"""ASCII reporting: tables, box statistics, and box plots.

The paper's figures are box plots over repeated runs; benchmarks print the
same content as text so results are inspectable in a terminal / CI log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary matching the paper's box-and-whisker plots."""

    median: float
    q1: float
    q3: float
    lo_whisker: float
    hi_whisker: float
    mean: float
    std: float
    n: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "BoxStats":
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            return cls(*(float("nan"),) * 7, 0)
        q1, med, q3 = np.percentile(arr, [25, 50, 75])
        iqr = q3 - q1
        lo_limit, hi_limit = q1 - 1.5 * iqr, q3 + 1.5 * iqr
        inside = arr[(arr >= lo_limit) & (arr <= hi_limit)]
        lo = float(inside.min()) if inside.size else float(arr.min())
        hi = float(inside.max()) if inside.size else float(arr.max())
        return cls(
            float(med), float(q1), float(q3), lo, hi,
            float(arr.mean()), float(arr.std()), int(arr.size),
        )

    def __str__(self) -> str:
        return (
            f"median={self.median:.3f} IQR=[{self.q1:.3f}, {self.q3:.3f}] "
            f"whiskers=[{self.lo_whisker:.3f}, {self.hi_whisker:.3f}] n={self.n}"
        )


def format_mean_std(values: Sequence[float], *, digits: int = 3) -> str:
    """``mean ± std`` string matching the paper's table cells."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return "n/a"
    return f"{arr.mean():.{digits}f} ± {arr.std():.{digits}f}"


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    *,
    title: str | None = None,
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    cols = list(columns) if columns else list(rows[0].keys())
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in cells)) for i, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


def ascii_boxplot(
    groups: Mapping[str, Sequence[float]],
    *,
    width: int = 50,
    title: str | None = None,
    lo: float | None = None,
    hi: float | None = None,
) -> str:
    """Horizontal ASCII box plots, one row per group.

    Layout per row: whisker span ``|---[  Q1▮median▮Q3  ]---|`` scaled into
    ``width`` characters between ``lo`` and ``hi`` (auto-ranged by default).
    """
    stats = {k: BoxStats.from_values(v) for k, v in groups.items()}
    valid = [s for s in stats.values() if s.n > 0]
    if not valid:
        return "(no data)"
    auto_lo = min(s.lo_whisker for s in valid)
    auto_hi = max(s.hi_whisker for s in valid)
    lo = auto_lo if lo is None else lo
    hi = auto_hi if hi is None else hi
    if hi <= lo:
        hi = lo + 1e-9

    def pos(x: float) -> int:
        return int(round((np.clip(x, lo, hi) - lo) / (hi - lo) * (width - 1)))

    name_w = max(len(k) for k in groups)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'':{name_w}}  {lo:.3f}{'':{width - 12}}{hi:.3f}")
    for name, s in stats.items():
        row = [" "] * width
        if s.n == 0:
            lines.append(f"{name:{name_w}}  (no data)")
            continue
        for x in range(pos(s.lo_whisker), pos(s.hi_whisker) + 1):
            row[x] = "-"
        for x in range(pos(s.q1), pos(s.q3) + 1):
            row[x] = "="
        row[pos(s.lo_whisker)] = "|"
        row[pos(s.hi_whisker)] = "|"
        row[pos(s.median)] = "#"
        lines.append(f"{name:{name_w}}  {''.join(row)}  {s.median:.3f}")
    return "\n".join(lines)
