"""Experiment scaffolding: rule pools, FRS draws, and tcf splits (paper §5.1).

The paper's protocol for every experiment:

1. train an initial model on the dataset, extract a rule-set explanation
   (BRCG; here the greedy substitute), and perturb it into a pool of up to
   100 feedback rules with coverage in [5%, 25%);
2. per run, draw a conflict-free FRS of the requested size from the pool;
3. split: outside-coverage 80/20 into train/test, coverage split by the
   training coverage fraction (tcf).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.data.dataset import Dataset
from repro.data.split import CoverageSplit, coverage_aware_split
from repro.datasets import load_dataset
from repro.models import algorithm as model_algorithm
from repro.models.base import TrainingAlgorithm
from repro.rules.learning import GreedyRuleLearner, learn_model_explanation
from repro.rules.perturbation import generate_feedback_pool
from repro.rules.rule import FeedbackRule
from repro.rules.ruleset import FeedbackRuleSet, draw_conflict_free
from repro.utils.rng import RandomState, check_random_state


@dataclass(frozen=True)
class ExperimentContext:
    """Reusable per-(dataset, model) state shared across runs."""

    dataset_name: str
    model_name: str
    dataset: Dataset
    algorithm: TrainingAlgorithm
    rule_pool: tuple[FeedbackRule, ...]


def build_context(
    dataset_name: str,
    model_name: str,
    *,
    n: int | None = None,
    pool_size: int = 100,
    coverage_range: tuple[float, float] = (0.05, 0.25),
    random_state: RandomState = 42,
) -> ExperimentContext:
    """Load a dataset, train the initial model, and build the rule pool."""
    rng = check_random_state(random_state)
    dataset = load_dataset(dataset_name, n, random_state=rng.integers(2**31))
    algorithm = model_algorithm(model_name)
    model = algorithm(dataset)
    explanation = learn_model_explanation(
        dataset,
        model.predict(dataset.X),
        learner=GreedyRuleLearner(max_rules_per_class=6, max_conditions=3),
    )
    if not explanation:
        raise RuntimeError(
            f"rule learner extracted no rules for {dataset_name}/{model_name}"
        )
    pool = generate_feedback_pool(
        dataset,
        explanation,
        n_rules=pool_size,
        coverage_range=coverage_range,
        random_state=rng,
    )
    if len(pool) < 3:
        raise RuntimeError(
            f"feedback pool too small for {dataset_name}: {len(pool)} rules"
        )
    return ExperimentContext(dataset_name, model_name, dataset, algorithm, tuple(pool))


@dataclass(frozen=True)
class PreparedRun:
    """One run's FRS and split, ready for FROTE / baselines."""

    frs: FeedbackRuleSet
    split: CoverageSplit

    @property
    def train(self) -> Dataset:
        return self.split.train

    @property
    def test(self) -> Dataset:
        return self.split.test


def prepare_run(
    ctx: ExperimentContext,
    *,
    frs_size: int,
    tcf: float,
    rng: np.random.Generator,
    outside_test_fraction: float = 0.2,
) -> PreparedRun | None:
    """Draw a conflict-free FRS and build the tcf split for one run.

    Returns ``None`` when no conflict-free FRS of the requested size exists
    in the pool (reported by the paper for large |F| on some datasets).
    """
    frs = draw_conflict_free(
        list(ctx.rule_pool), frs_size, ctx.dataset.X.schema, rng
    )
    if frs is None:
        return None
    coverage = frs.coverage_mask(ctx.dataset.X)
    split = coverage_aware_split(
        ctx.dataset,
        coverage,
        tcf=tcf,
        outside_test_fraction=outside_test_fraction,
        random_state=rng,
    )
    return PreparedRun(frs=frs, split=split)


def probabilistic_variant(
    rule: FeedbackRule, p: float, class_marginal: np.ndarray
) -> FeedbackRule:
    """Probabilistic rule for the Table 6 experiment.

    With probability ``p`` the label equals the rule's class; the remaining
    mass follows the training class marginal restricted to the other
    classes (the paper's base-instance label approximation).
    """
    if not 0.0 < p <= 1.0:
        raise ValueError(f"p must be in (0, 1], got {p}")
    c = rule.target_class
    marginal = np.asarray(class_marginal, dtype=np.float64).copy()
    marginal[c] = 0.0
    total = marginal.sum()
    if total <= 0:
        others = np.ones_like(marginal)
        others[c] = 0.0
        marginal = others
        total = marginal.sum()
    pi = (1.0 - p) * marginal / total
    pi[c] += p
    return FeedbackRule(rule.clause, tuple(pi), exceptions=rule.exceptions,
                        name=f"{rule.name}@p={p:g}")
