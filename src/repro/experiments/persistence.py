"""Persist experiment records as JSON.

Every driver in :mod:`repro.experiments` returns plain dict records; this
module writes/reads them with a small metadata envelope so the CLI (and
EXPERIMENTS.md regeneration) can cache expensive runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np


def _jsonable(value):
    """Coerce NumPy scalars/arrays inside records to JSON-friendly types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


@dataclass(frozen=True)
class ExperimentArchive:
    """A named batch of experiment records plus run metadata."""

    name: str
    records: list[dict]
    metadata: dict

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "metadata": _jsonable(self.metadata),
                "records": _jsonable(self.records),
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentArchive":
        payload = json.loads(text)
        for key in ("name", "records"):
            if key not in payload:
                raise ValueError(f"archive missing required key {key!r}")
        return cls(
            name=payload["name"],
            records=list(payload["records"]),
            metadata=dict(payload.get("metadata", {})),
        )


def save_records(
    name: str,
    records: list[dict],
    path: str | Path,
    *,
    metadata: dict | None = None,
) -> Path:
    """Write records to ``path`` (parent directories created)."""
    archive = ExperimentArchive(name, records, dict(metadata or {}))
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(archive.to_json())
    return out


def load_records(path: str | Path) -> ExperimentArchive:
    """Read an archive written by :func:`save_records`."""
    return ExperimentArchive.from_json(Path(path).read_text())
