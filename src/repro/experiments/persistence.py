"""Persist experiment records as JSON.

Every driver in :mod:`repro.experiments` returns plain dict records; this
module writes/reads them with a small metadata envelope so the CLI (and
EXPERIMENTS.md regeneration) can cache expensive runs.  The
content-addressed per-run store behind :class:`~repro.experiments.RunStore`
shares this module's :func:`to_jsonable` / :func:`from_jsonable` coercions.

Non-finite floats (``NaN``, ``±inf``) are encoded explicitly as
``{"__float__": "nan" | "inf" | "-inf"}`` markers: ``json.dumps`` would
otherwise emit the bare tokens ``NaN``/``Infinity``, which are *not* valid
JSON and break any strict parser reading the archives.  All dumps here pass
``allow_nan=False`` so a non-finite value that slips past the coercion
fails loudly instead of silently corrupting the file.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

_NONFINITE_KEY = "__float__"
_NONFINITE_ENCODE = {math.inf: "inf", -math.inf: "-inf"}
_NONFINITE_DECODE = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def to_jsonable(value):
    """Coerce NumPy scalars/arrays and non-finite floats to strict JSON."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return to_jsonable(float(value))
    if isinstance(value, float) and not math.isfinite(value):
        marker = "nan" if math.isnan(value) else _NONFINITE_ENCODE[value]
        return {_NONFINITE_KEY: marker}
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return value


def from_jsonable(value):
    """Invert :func:`to_jsonable`'s non-finite markers after ``json.loads``."""
    if isinstance(value, dict):
        if set(value) == {_NONFINITE_KEY} and value[_NONFINITE_KEY] in _NONFINITE_DECODE:
            return _NONFINITE_DECODE[value[_NONFINITE_KEY]]
        return {k: from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [from_jsonable(v) for v in value]
    return value


def dump_json(payload, *, indent: int | None = 2, sort_keys: bool = False) -> str:
    """Strict-JSON dumps of an already-:func:`to_jsonable` payload."""
    return json.dumps(payload, indent=indent, sort_keys=sort_keys, allow_nan=False)


# Backwards-compatible alias (pre-RunStore name).
_jsonable = to_jsonable


@dataclass(frozen=True)
class ExperimentArchive:
    """A named batch of experiment records plus run metadata."""

    name: str
    records: list[dict]
    metadata: dict

    def to_json(self) -> str:
        return dump_json(
            {
                "name": self.name,
                "metadata": to_jsonable(self.metadata),
                "records": to_jsonable(self.records),
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentArchive":
        payload = json.loads(text)
        for key in ("name", "records"):
            if key not in payload:
                raise ValueError(f"archive missing required key {key!r}")
        return cls(
            name=payload["name"],
            records=list(from_jsonable(payload["records"])),
            metadata=dict(from_jsonable(payload.get("metadata", {}))),
        )


def save_records(
    name: str,
    records: list[dict],
    path: str | Path,
    *,
    metadata: dict | None = None,
) -> Path:
    """Write records to ``path`` (parent directories created)."""
    archive = ExperimentArchive(name, records, dict(metadata or {}))
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(archive.to_json())
    return out


def load_records(path: str | Path) -> ExperimentArchive:
    """Read an archive written by :func:`save_records`."""
    return ExperimentArchive.from_json(Path(path).read_text())
