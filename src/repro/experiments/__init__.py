"""Experiment drivers reproducing the paper's tables and figures.

The layer is a declarative spec → executor → store split:

* :class:`ExperimentSpec` / :class:`RunSpec` (:mod:`~repro.experiments.spec`)
  — experiments as data, round-trippable through JSON;
* :class:`ExperimentRunner` (:mod:`~repro.experiments.grid`) with pluggable
  executors (:mod:`~repro.experiments.executors`) — serial or
  process-parallel, bit-identical either way;
* :class:`RunStore` (:mod:`~repro.experiments.store`) — content-addressed
  records keyed by spec hash, making interrupted grids resumable;
* run kinds (:mod:`~repro.experiments.kinds`) — the registered per-run
  protocols the specs name.

The ``run_fig*`` / ``run_table*`` drivers are pure consumers of that API.
"""

from repro.experiments.executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    execute_spec,
    make_executor,
)
from repro.experiments.figures import (
    fig2_spec,
    format_fig2,
    format_fig3,
    format_fig9,
    run_fig2,
    run_fig3,
    run_fig9,
)
from repro.experiments.grid import (
    ExperimentEvent,
    ExperimentRunner,
    GridResult,
)
from repro.experiments.kinds import RUN_KINDS, register_run_kind
from repro.experiments.paper_suite import SCALES, build_suite, run_paper_suite
from repro.experiments.persistence import (
    ExperimentArchive,
    from_jsonable,
    load_records,
    save_records,
    to_jsonable,
)
from repro.experiments.report import BoxStats, ascii_boxplot, format_mean_std, format_table
from repro.experiments.runner import (
    PAPER_ETA,
    RunMetrics,
    RunResult,
    default_config,
    execute_run,
    run_many,
)
from repro.experiments.setup import (
    ExperimentContext,
    PreparedRun,
    build_context,
    prepare_run,
    probabilistic_variant,
)
from repro.experiments.spec import ExperimentSpec, RunSpec, derive_seed
from repro.experiments.store import RunStore, StoredRun
from repro.experiments.tables import (
    format_ablation,
    format_table2,
    format_table3,
    format_table6,
    run_ablation,
    run_table2,
    run_table3,
    run_table6,
)

__all__ = [
    "ExperimentSpec",
    "RunSpec",
    "derive_seed",
    "ExperimentRunner",
    "ExperimentEvent",
    "GridResult",
    "RunStore",
    "StoredRun",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "make_executor",
    "execute_spec",
    "RUN_KINDS",
    "register_run_kind",
    "build_context",
    "prepare_run",
    "probabilistic_variant",
    "ExperimentContext",
    "PreparedRun",
    "execute_run",
    "run_many",
    "default_config",
    "RunResult",
    "RunMetrics",
    "PAPER_ETA",
    "run_fig2",
    "run_fig3",
    "run_fig9",
    "fig2_spec",
    "format_fig2",
    "format_fig3",
    "format_fig9",
    "run_table2",
    "run_table3",
    "run_table6",
    "run_ablation",
    "format_table2",
    "format_table3",
    "format_table6",
    "format_ablation",
    "BoxStats",
    "ascii_boxplot",
    "format_table",
    "format_mean_std",
    "ExperimentArchive",
    "save_records",
    "load_records",
    "to_jsonable",
    "from_jsonable",
    "run_paper_suite",
    "build_suite",
    "SCALES",
]
