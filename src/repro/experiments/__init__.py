"""Experiment drivers reproducing the paper's tables and figures."""

from repro.experiments.figures import (
    format_fig2,
    format_fig3,
    format_fig9,
    run_fig2,
    run_fig3,
    run_fig9,
)
from repro.experiments.paper_suite import SCALES, build_suite, run_paper_suite
from repro.experiments.persistence import (
    ExperimentArchive,
    load_records,
    save_records,
)
from repro.experiments.report import BoxStats, ascii_boxplot, format_mean_std, format_table
from repro.experiments.runner import (
    PAPER_ETA,
    RunMetrics,
    RunResult,
    default_config,
    execute_run,
    run_many,
)
from repro.experiments.setup import (
    ExperimentContext,
    PreparedRun,
    build_context,
    prepare_run,
    probabilistic_variant,
)
from repro.experiments.tables import (
    format_ablation,
    format_table2,
    format_table3,
    format_table6,
    run_ablation,
    run_table2,
    run_table3,
    run_table6,
)

__all__ = [
    "build_context",
    "prepare_run",
    "probabilistic_variant",
    "ExperimentContext",
    "PreparedRun",
    "execute_run",
    "run_many",
    "default_config",
    "RunResult",
    "RunMetrics",
    "PAPER_ETA",
    "run_fig2",
    "run_fig3",
    "run_fig9",
    "format_fig2",
    "format_fig3",
    "format_fig9",
    "run_table2",
    "run_table3",
    "run_table6",
    "run_ablation",
    "format_table2",
    "format_table3",
    "format_table6",
    "format_ablation",
    "BoxStats",
    "ascii_boxplot",
    "format_table",
    "format_mean_std",
    "ExperimentArchive",
    "save_records",
    "load_records",
    "run_paper_suite",
    "build_suite",
    "SCALES",
]
