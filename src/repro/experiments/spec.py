"""Declarative experiment specifications: grids as data.

The paper's evidence is a grid — datasets × model families × FROTE
configurations × seeded repetitions.  This module makes that grid a value:

* :class:`RunSpec` — one fully-determined run.  Frozen, hashable, and
  round-trippable through JSON; its :attr:`~RunSpec.spec_hash` is a stable
  content address (identical across processes and machines), which is what
  makes the run store resumable and parallel execution bit-identical to
  serial.
* :class:`ExperimentSpec` — the declarative grid.  :meth:`~ExperimentSpec.
  expand` flattens it into ``RunSpec``s, deriving every per-run seed from
  the spec's coordinates (never from shared RNG stream order), so the same
  spec always expands to the same runs no matter who executes them, in
  what order, or in how many processes.

Seed derivation is deliberately *sweep-blind*: two runs that differ only
in swept values (``sweep={"config.k": (2, 5)}``) share their seed, FRS
draw, and split — the paper's matched-comparison protocol for ablations
and strategy tables falls out of the derivation rule.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from itertools import product
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.experiments.persistence import from_jsonable, to_jsonable

_SEED_SPACE = 2**31

#: Scalar types allowed inside config/params/sweep values (JSON-stable).
_SCALARS = (str, int, float, bool, type(None))


def derive_seed(*parts: Any) -> int:
    """A seed in ``[0, 2**31)`` derived from ``parts`` content.

    Uses SHA-256 over the canonical JSON of ``parts`` — stable across
    processes (unlike ``hash()``, which is salted per interpreter) and
    across platforms, which is what allows a parallel executor to
    reproduce the serial executor's runs bit-for-bit.
    """
    payload = json.dumps(parts, sort_keys=True, separators=(",", ":"), default=str)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


def _freeze(mapping: Mapping[str, Any] | Sequence | None, *, what: str) -> tuple:
    """Normalize a mapping (or item tuple) to a sorted, hashable item tuple."""
    if mapping is None:
        return ()
    items = mapping.items() if isinstance(mapping, Mapping) else mapping
    frozen = []
    for key, value in items:
        if not isinstance(value, _SCALARS):
            raise TypeError(
                f"{what}[{key!r}] must be a JSON scalar "
                f"(str/int/float/bool/None), got {type(value).__name__}"
            )
        frozen.append((str(key), value))
    return tuple(sorted(frozen))


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined experimental run.

    Every stochastic choice downstream (FRS draw, split, FROTE loop) is
    seeded from :attr:`seed` / :attr:`context_seed`, so a ``RunSpec`` is a
    pure function's argument: same spec → same record, on any executor.

    ``config`` holds :class:`~repro.core.config.FroteConfig` overrides and
    ``params`` holds run-kind-specific extras (e.g. ``p`` for the
    probabilistic-rule kind); both are stored as sorted item tuples so the
    spec stays hashable — use :attr:`config_mapping` / :attr:`params_mapping`
    to read them.
    """

    experiment: str
    dataset: str
    model: str
    frs_size: int
    tcf: float
    run: int
    seed: int
    context_seed: int
    n: int | None = None
    config: tuple = ()
    params: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "config", _freeze(self.config, what="config"))
        object.__setattr__(self, "params", _freeze(self.params, what="params"))

    # ------------------------------------------------------------------ #
    @property
    def config_mapping(self) -> dict[str, Any]:
        return dict(self.config)

    @property
    def params_mapping(self) -> dict[str, Any]:
        return dict(self.params)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return {
            "experiment": self.experiment,
            "dataset": self.dataset,
            "model": self.model,
            "frs_size": self.frs_size,
            "tcf": self.tcf,
            "run": self.run,
            "seed": self.seed,
            "context_seed": self.context_seed,
            "n": self.n,
            "config": self.config_mapping,
            "params": self.params_mapping,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunSpec":
        return cls(
            experiment=payload["experiment"],
            dataset=payload["dataset"],
            model=payload["model"],
            frs_size=int(payload["frs_size"]),
            tcf=float(payload["tcf"]),
            run=int(payload["run"]),
            seed=int(payload["seed"]),
            context_seed=int(payload["context_seed"]),
            n=payload.get("n"),
            config=from_jsonable(dict(payload.get("config", {}))),
            params=from_jsonable(dict(payload.get("params", {}))),
        )

    @property
    def spec_hash(self) -> str:
        """Stable content address of this run (hex, 16 chars).

        SHA-256 over the canonical JSON of :meth:`to_dict` (non-finite
        floats — e.g. the documented ``q=math.inf`` config — encoded via
        the persistence markers); the :class:`~repro.experiments.RunStore`
        uses it as the record key.
        """
        canonical = json.dumps(
            to_jsonable(self.to_dict()),
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def with_params(self, **params: Any) -> "RunSpec":
        """A copy with ``params`` entries merged in."""
        merged = self.params_mapping
        merged.update(params)
        return replace(self, params=merged)


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment grid: define-by-data, execute-by-runner.

    ``expand()`` is the only semantics: the cartesian product of
    ``datasets × models × frs_sizes × tcfs × sweep × range(n_runs)``, one
    :class:`RunSpec` each.  ``sweep`` axes target dotted keys —
    ``"config.<knob>"`` for :class:`~repro.core.config.FroteConfig`
    overrides, ``"params.<name>"`` for run-kind parameters — and do *not*
    participate in seed derivation, so swept variants of a run share FRS
    draw and split (matched comparison).

    Round-trips through JSON (:meth:`to_json` / :meth:`from_json`,
    :meth:`save` / :meth:`load`): a checked-in spec file fully describes an
    experiment.
    """

    name: str
    datasets: tuple[str, ...]
    models: tuple[str, ...]
    experiment: str = "frote"
    frs_sizes: tuple[int, ...] = (3,)
    tcfs: tuple[float, ...] = (0.2,)
    n_runs: int = 1
    seed: int = 42
    n: int | None = None
    config: tuple = ()
    params: tuple = ()
    sweep: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "datasets", tuple(self.datasets))
        object.__setattr__(self, "models", tuple(self.models))
        object.__setattr__(self, "frs_sizes", tuple(int(s) for s in self.frs_sizes))
        object.__setattr__(self, "tcfs", tuple(float(t) for t in self.tcfs))
        object.__setattr__(self, "config", _freeze(self.config, what="config"))
        object.__setattr__(self, "params", _freeze(self.params, what="params"))
        sweep = self.sweep
        if isinstance(sweep, Mapping):
            sweep = tuple(sorted((str(k), tuple(v)) for k, v in sweep.items()))
        else:
            sweep = tuple(sorted((str(k), tuple(v)) for k, v in sweep))
        object.__setattr__(self, "sweep", sweep)
        if not self.name:
            raise ValueError("ExperimentSpec.name must be non-empty")
        if not self.datasets or not self.models:
            raise ValueError("ExperimentSpec needs at least one dataset and model")
        if self.n_runs < 1:
            raise ValueError(f"n_runs must be >= 1, got {self.n_runs}")
        for axis, _ in self.sweep:
            scope, _, key = axis.partition(".")
            if scope not in ("config", "params") or not key:
                raise ValueError(
                    f"sweep axis {axis!r} must be 'config.<knob>' or 'params.<name>'"
                )

    # ------------------------------------------------------------------ #
    def validate(self) -> "ExperimentSpec":
        """Check every referenced name against the live registries.

        Deferred (not in ``__post_init__``) so a spec may be built before
        its plugin datasets/models/kinds are registered; the runner calls
        this right before execution.
        """
        from repro.datasets import DATASETS
        from repro.experiments.kinds import RUN_KINDS
        from repro.models import MODELS

        RUN_KINDS.validate(self.experiment)
        for name in self.datasets:
            DATASETS.validate(name)
        for name in self.models:
            MODELS.validate(name)
        return self

    @property
    def total_runs(self) -> int:
        sweep_size = 1
        for _, values in self.sweep:
            sweep_size *= len(values)
        return (
            len(self.datasets) * len(self.models) * len(self.frs_sizes)
            * len(self.tcfs) * sweep_size * self.n_runs
        )

    def expand(self) -> list[RunSpec]:
        """Flatten the grid into its runs (deterministic order and seeds)."""
        sweep_axes = [(axis, values) for axis, values in self.sweep]
        sweep_combos = [
            tuple(zip((a for a, _ in sweep_axes), combo))
            for combo in product(*(values for _, values in sweep_axes))
        ] or [()]
        runs: list[RunSpec] = []
        for dataset, model in product(self.datasets, self.models):
            context_seed = derive_seed(self.seed, "context", dataset, model, self.n)
            for frs_size, tcf in product(self.frs_sizes, self.tcfs):
                for combo in sweep_combos:
                    for run_id in range(self.n_runs):
                        config = dict(self.config)
                        params = dict(self.params)
                        for axis, value in combo:
                            scope, _, key = axis.partition(".")
                            (config if scope == "config" else params)[key] = value
                        runs.append(
                            RunSpec(
                                experiment=self.experiment,
                                dataset=dataset,
                                model=model,
                                frs_size=frs_size,
                                tcf=tcf,
                                run=run_id,
                                seed=derive_seed(
                                    self.seed, "run", self.experiment, dataset,
                                    model, frs_size, tcf, run_id,
                                ),
                                context_seed=context_seed,
                                n=self.n,
                                config=config,
                                params=params,
                            )
                        )
        return runs

    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.expand())

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "experiment": self.experiment,
            "datasets": list(self.datasets),
            "models": list(self.models),
            "frs_sizes": list(self.frs_sizes),
            "tcfs": list(self.tcfs),
            "n_runs": self.n_runs,
            "seed": self.seed,
            "n": self.n,
            "config": dict(self.config),
            "params": dict(self.params),
            "sweep": {axis: list(values) for axis, values in self.sweep},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        known = {
            "name", "experiment", "datasets", "models", "frs_sizes", "tcfs",
            "n_runs", "seed", "n", "config", "params", "sweep",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown ExperimentSpec keys: {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(
            name=payload["name"],
            datasets=tuple(payload["datasets"]),
            models=tuple(payload["models"]),
            experiment=payload.get("experiment", "frote"),
            frs_sizes=tuple(payload.get("frs_sizes", (3,))),
            tcfs=tuple(payload.get("tcfs", (0.2,))),
            n_runs=int(payload.get("n_runs", 1)),
            seed=int(payload.get("seed", 42)),
            n=payload.get("n"),
            config=from_jsonable(dict(payload.get("config", {}))),
            params=from_jsonable(dict(payload.get("params", {}))),
            sweep={
                k: tuple(from_jsonable(list(v)))
                for k, v in dict(payload.get("sweep", {})).items()
            },
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(to_jsonable(self.to_dict()), indent=indent, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.to_json() + "\n")
        return out

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentSpec":
        return cls.from_json(Path(path).read_text())
