"""Content-addressed storage for experiment run records.

A :class:`RunStore` maps :attr:`~repro.experiments.spec.RunSpec.spec_hash`
→ one JSON file per run under a root directory.  Because the key is the
*content* of the run's spec, the store is what makes grids resumable: a
re-run of a half-completed grid looks up each expanded run by hash and
executes only the misses, and two stores populated by different executors
(serial, parallel, different machines) of the same spec are byte-identical.

Record files are deterministic strict JSON — sorted keys, explicit
non-finite float markers (see :mod:`repro.experiments.persistence`), no
timestamps — so ``diff -r serial/ parallel/`` is a valid equality check
(CI runs exactly that).

The envelope format itself is versioned and **migrated on read**, the
same delta-replay idiom the engine applies to live datasets: a store
written by an older release is readable forever, because each
``_migrate_vN_to_vN1`` step replays in order over the parsed payload
before :class:`StoredRun` is built.  Writes always use the current
version; ``diff``-style equality checks therefore compare stores written
by the *same* version, as before.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from repro.experiments.persistence import dump_json, from_jsonable, to_jsonable
from repro.experiments.spec import RunSpec

#: Current envelope schema version.  v1 had no explicit version field and
#: no feature-space lineage; v2 added ``schema_version`` (this integer)
#: and ``schema`` (the run's final content-hashed schema-version token,
#: empty for frozen-schema runs).
RECORD_VERSION = 2

#: Format tag written into every record envelope.
RECORD_FORMAT = f"repro.run-record/v{RECORD_VERSION}"

_FORMAT_RE = re.compile(r"^repro\.run-record/v(\d+)$")


def _migrate_v1_to_v2(payload: dict) -> dict:
    """v1 → v2: explicit ``schema_version`` int + ``schema`` lineage token.

    v1 records were all written before live schema migrations existed,
    so their feature space is by definition the frozen input schema —
    the empty lineage token.
    """
    payload = dict(payload)
    payload["schema_version"] = 2
    payload["schema"] = ""
    return payload


#: Ordered migrate-on-read steps: source version → migration function.
#: ``_read`` replays every step from the stored version up to
#: :data:`RECORD_VERSION`; a version this mapping cannot reach raises.
_RECORD_MIGRATIONS = {1: _migrate_v1_to_v2}

#: Run completed and produced a record.
STATUS_OK = "ok"
#: Run executed but was skipped (no conflict-free FRS of the requested
#: size — the paper drops those settings too).  Stored so resume does not
#: retry a draw that deterministically fails.
STATUS_SKIPPED = "skipped"


@dataclass(frozen=True)
class StoredRun:
    """One persisted run: its spec, status, and record (if any)."""

    spec_hash: str
    spec: RunSpec
    status: str
    record: dict | None
    #: Final content-hashed schema-version token of the run's feature
    #: space ("" = frozen input schema, i.e. no migrations applied).
    schema: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class RunStore:
    """Spec-hash-addressed run records in a directory of JSON files."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    def path_for(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.spec_hash}.json"

    def __contains__(self, spec: RunSpec) -> bool:
        return self.path_for(spec).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    # ------------------------------------------------------------------ #
    def put(
        self, spec: RunSpec, record: dict | None, *, schema: str = ""
    ) -> Path:
        """Persist one run's outcome (``record=None`` → skipped draw).

        ``schema`` is the run's final schema-version token when the run
        migrated its feature space mid-flight (default: frozen schema).
        """
        status = STATUS_OK if record is not None else STATUS_SKIPPED
        envelope = {
            "format": RECORD_FORMAT,
            "schema_version": RECORD_VERSION,
            "schema": str(schema),
            "spec_hash": spec.spec_hash,
            "spec": to_jsonable(spec.to_dict()),  # config may hold e.g. q=inf
            "status": status,
            "record": to_jsonable(record),
        }
        path = self.path_for(spec)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(dump_json(envelope, sort_keys=True) + "\n")
        tmp.replace(path)  # atomic: readers never observe a partial record
        return path

    def get(self, spec: RunSpec) -> StoredRun | None:
        """The stored outcome for ``spec``, or ``None`` if not yet run."""
        path = self.path_for(spec)
        if not path.exists():
            return None
        return self._read(path)

    def _read(self, path: Path) -> StoredRun:
        payload = self._migrate(path, json.loads(path.read_text()))
        record = from_jsonable(payload["record"])
        return StoredRun(
            spec_hash=payload["spec_hash"],
            spec=RunSpec.from_dict(payload["spec"]),
            status=payload["status"],
            record=record,
            schema=str(payload.get("schema", "")),
        )

    @staticmethod
    def _migrate(path: Path, payload: dict) -> dict:
        """Replay envelope migrations from the stored version to current."""
        match = _FORMAT_RE.match(str(payload.get("format", "")))
        if match is None:
            raise ValueError(
                f"{path} is not a repro.run-record envelope "
                f"(format={payload.get('format')!r})"
            )
        version = int(payload.get("schema_version", match.group(1)))
        if version > RECORD_VERSION:
            raise ValueError(
                f"{path} is a v{version} record; this build reads up to "
                f"v{RECORD_VERSION} — upgrade to read it"
            )
        while version < RECORD_VERSION:
            migrate = _RECORD_MIGRATIONS.get(version)
            if migrate is None:
                raise ValueError(
                    f"{path} is a v{version} record with no migration path "
                    f"to v{RECORD_VERSION}"
                )
            payload = migrate(payload)
            version += 1
        return payload

    def __iter__(self) -> Iterator[StoredRun]:
        for path in sorted(self.root.glob("*.json")):
            yield self._read(path)

    # ------------------------------------------------------------------ #
    def missing(self, specs: Sequence[RunSpec]) -> list[RunSpec]:
        """The subset of ``specs`` with no stored outcome yet."""
        return [spec for spec in specs if spec not in self]

    def completed(self, specs: Sequence[RunSpec]) -> list[StoredRun]:
        """Stored outcomes for the subset of ``specs`` already run."""
        out = []
        for spec in specs:
            stored = self.get(spec)
            if stored is not None:
                out.append(stored)
        return out

    def status_counts(self, specs: Sequence[RunSpec]) -> dict[str, int]:
        """``{"total", "ok", "skipped", "missing"}`` counts for a grid."""
        counts = {"total": len(specs), "ok": 0, "skipped": 0, "missing": 0}
        for spec in specs:
            stored = self.get(spec)
            if stored is None:
                counts["missing"] += 1
            elif stored.ok:
                counts["ok"] += 1
            else:
                counts["skipped"] += 1
        return counts
