"""Content-addressed storage for experiment run records.

A :class:`RunStore` maps :attr:`~repro.experiments.spec.RunSpec.spec_hash`
→ one JSON file per run under a root directory.  Because the key is the
*content* of the run's spec, the store is what makes grids resumable: a
re-run of a half-completed grid looks up each expanded run by hash and
executes only the misses, and two stores populated by different executors
(serial, parallel, different machines) of the same spec are byte-identical.

Record files are deterministic strict JSON — sorted keys, explicit
non-finite float markers (see :mod:`repro.experiments.persistence`), no
timestamps — so ``diff -r serial/ parallel/`` is a valid equality check
(CI runs exactly that).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Sequence

from repro.experiments.persistence import dump_json, from_jsonable, to_jsonable
from repro.experiments.spec import RunSpec

#: Format tag written into every record envelope.
RECORD_FORMAT = "repro.run-record/v1"

#: Run completed and produced a record.
STATUS_OK = "ok"
#: Run executed but was skipped (no conflict-free FRS of the requested
#: size — the paper drops those settings too).  Stored so resume does not
#: retry a draw that deterministically fails.
STATUS_SKIPPED = "skipped"


@dataclass(frozen=True)
class StoredRun:
    """One persisted run: its spec, status, and record (if any)."""

    spec_hash: str
    spec: RunSpec
    status: str
    record: dict | None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class RunStore:
    """Spec-hash-addressed run records in a directory of JSON files."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    def path_for(self, spec: RunSpec) -> Path:
        return self.root / f"{spec.spec_hash}.json"

    def __contains__(self, spec: RunSpec) -> bool:
        return self.path_for(spec).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    # ------------------------------------------------------------------ #
    def put(self, spec: RunSpec, record: dict | None) -> Path:
        """Persist one run's outcome (``record=None`` → skipped draw)."""
        status = STATUS_OK if record is not None else STATUS_SKIPPED
        envelope = {
            "format": RECORD_FORMAT,
            "spec_hash": spec.spec_hash,
            "spec": to_jsonable(spec.to_dict()),  # config may hold e.g. q=inf
            "status": status,
            "record": to_jsonable(record),
        }
        path = self.path_for(spec)
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(dump_json(envelope, sort_keys=True) + "\n")
        tmp.replace(path)  # atomic: readers never observe a partial record
        return path

    def get(self, spec: RunSpec) -> StoredRun | None:
        """The stored outcome for ``spec``, or ``None`` if not yet run."""
        path = self.path_for(spec)
        if not path.exists():
            return None
        return self._read(path)

    def _read(self, path: Path) -> StoredRun:
        payload = json.loads(path.read_text())
        if payload.get("format") != RECORD_FORMAT:
            raise ValueError(
                f"{path} is not a {RECORD_FORMAT} record "
                f"(format={payload.get('format')!r})"
            )
        record = from_jsonable(payload["record"])
        return StoredRun(
            spec_hash=payload["spec_hash"],
            spec=RunSpec.from_dict(payload["spec"]),
            status=payload["status"],
            record=record,
        )

    def __iter__(self) -> Iterator[StoredRun]:
        for path in sorted(self.root.glob("*.json")):
            yield self._read(path)

    # ------------------------------------------------------------------ #
    def missing(self, specs: Sequence[RunSpec]) -> list[RunSpec]:
        """The subset of ``specs`` with no stored outcome yet."""
        return [spec for spec in specs if spec not in self]

    def completed(self, specs: Sequence[RunSpec]) -> list[StoredRun]:
        """Stored outcomes for the subset of ``specs`` already run."""
        out = []
        for spec in specs:
            stored = self.get(spec)
            if stored is not None:
                out.append(stored)
        return out

    def status_counts(self, specs: Sequence[RunSpec]) -> dict[str, int]:
        """``{"total", "ok", "skipped", "missing"}`` counts for a grid."""
        counts = {"total": len(specs), "ok": 0, "skipped": 0, "missing": 0}
        for spec in specs:
            stored = self.get(spec)
            if stored is None:
                counts["missing"] += 1
            elif stored.ok:
                counts["ok"] += 1
            else:
                counts["skipped"] += 1
        return counts
