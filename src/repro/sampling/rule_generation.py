"""FROTE's rule-constrained synthetic instance generation (paper §4.2 + supplement).

Differences from vanilla SMOTE, per the paper:

1. neighbours are *not* required to share the base instance's class label —
   they must satisfy the same (possibly relaxed) feedback rule;
2. the generated instance must satisfy the **original, unrelaxed** rule;
   when the rule was relaxed, special windowing logic forces condition
   attributes back into compliance;
3. the synthetic label is sampled from the rule's distribution π instead of
   copying the base label.

Numeric condition attributes use the supplement's window logic: the
conditions on an attribute define a (min, max) window, the base/neighbour
values tighten it when they already fall inside, and the value is drawn
uniformly from the tightest window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import Table
from repro.neighbors import BruteKNN, TableNeighborSpace
from repro.rules.predicate import EQ, GE, GT, LE, LT, NE, Predicate
from repro.rules.rule import FeedbackRule


@dataclass(frozen=True)
class NumericWindow:
    """Feasible open/closed interval for one numeric attribute."""

    lo: float = -np.inf
    hi: float = np.inf
    lo_strict: bool = False
    hi_strict: bool = False
    eq: float | None = None

    def contains(self, v: float) -> bool:
        if self.eq is not None:
            return v == self.eq
        lo_ok = v > self.lo if self.lo_strict else v >= self.lo
        hi_ok = v < self.hi if self.hi_strict else v <= self.hi
        return lo_ok and hi_ok


def window_from_conditions(conditions: tuple[Predicate, ...]) -> NumericWindow:
    """Fold numeric conditions on one attribute into a :class:`NumericWindow`."""
    lo, hi = -np.inf, np.inf
    lo_strict = hi_strict = False
    eq: float | None = None
    for p in conditions:
        v = float(p.value)
        if p.operator == EQ:
            eq = v
        elif p.operator in (GT, GE):
            strict = p.operator == GT
            if v > lo or (v == lo and strict):
                lo, lo_strict = v, strict
        elif p.operator in (LT, LE):
            strict = p.operator == LT
            if v < hi or (v == hi and strict):
                hi, hi_strict = v, strict
    return NumericWindow(lo, hi, lo_strict, hi_strict, eq)


def _open_interval(lo: float, hi: float, lo_strict: bool, hi_strict: bool) -> tuple[float, float]:
    """Shrink strict endpoints by one ulp so uniform sampling respects them."""
    if lo_strict and np.isfinite(lo):
        lo = np.nextafter(lo, np.inf)
    if hi_strict and np.isfinite(hi):
        hi = np.nextafter(hi, -np.inf)
    return lo, hi


def sample_in_window(
    window: NumericWindow,
    base_v: float,
    nbr_v: float,
    attr_range: tuple[float, float],
    rng: np.random.Generator,
) -> float:
    """Draw a value satisfying ``window``, preferring the SMOTE segment.

    Priority order (the supplement's "tightest window"):

    1. the base-neighbour segment intersected with the window;
    2. the window intersected with the attribute's observed range;
    3. the window alone (midpoint when degenerate, finite bound ± range
       width when half-open).
    """
    if window.eq is not None:
        return float(window.eq)
    lo, hi = _open_interval(window.lo, window.hi, window.lo_strict, window.hi_strict)
    seg_lo, seg_hi = min(base_v, nbr_v), max(base_v, nbr_v)
    tight_lo, tight_hi = max(lo, seg_lo), min(hi, seg_hi)
    if tight_lo <= tight_hi:
        return float(rng.uniform(tight_lo, tight_hi)) if tight_lo < tight_hi else float(tight_lo)
    r_lo, r_hi = attr_range
    width = max(r_hi - r_lo, 1.0)
    cand_lo, cand_hi = max(lo, r_lo), min(hi, r_hi)
    if cand_lo <= cand_hi:
        return float(rng.uniform(cand_lo, cand_hi)) if cand_lo < cand_hi else float(cand_lo)
    # Window lies entirely outside observed range: synthesize near its edge.
    if np.isfinite(lo) and np.isfinite(hi):
        return float(rng.uniform(lo, hi)) if lo < hi else float(lo)
    if np.isfinite(lo):
        return float(rng.uniform(lo, lo + width))
    if np.isfinite(hi):
        return float(rng.uniform(hi - width, hi))
    return float(rng.uniform(r_lo, r_hi))


def pick_categorical(
    neighbor_codes: np.ndarray,
    conditions: tuple[Predicate, ...],
    categories: tuple[str, ...],
    rng: np.random.Generator,
) -> int:
    """Majority neighbour value subject to the rule's conditions.

    Values are tried in decreasing neighbour frequency (the supplement's
    sorted-candidates procedure); if every observed value violates a
    condition, a uniformly random *allowed* category is used.
    """
    allowed = set(range(len(categories)))
    for p in conditions:
        code = categories.index(str(p.value))
        if p.operator == EQ:
            allowed &= {code}
        elif p.operator == NE:
            allowed -= {code}
    if not allowed:
        raise ValueError("conditions admit no categorical value (unsatisfiable rule)")
    counts = np.bincount(neighbor_codes, minlength=len(categories))
    order = np.argsort(-counts, kind="stable")
    for code in order:
        if counts[code] > 0 and int(code) in allowed:
            return int(code)
    allowed_list = sorted(allowed)
    return int(allowed_list[rng.integers(len(allowed_list))])


@dataclass(frozen=True)
class GeneratedBatch:
    """Synthetic instances plus their sampled labels."""

    table: Table
    labels: np.ndarray

    @property
    def n(self) -> int:
        return self.table.n_rows


class RuleConstrainedGenerator:
    """Generate synthetic instances that satisfy a feedback rule.

    Parameters
    ----------
    rule:
        The original, unrelaxed feedback rule the output must satisfy.
    reference:
        Table providing attribute ranges for window fallbacks and the
        neighbour-space scaling (typically the current active dataset).
    k:
        Neighbours per base instance (paper: 5).
    """

    def __init__(self, rule: FeedbackRule, reference: Table, *, k: int = 5) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.rule = rule
        self.k = k
        self.schema = reference.schema
        self._space = TableNeighborSpace().fit(reference)
        self._ranges: dict[str, tuple[float, float]] = {}
        for name in reference.schema.numeric_names:
            col = reference.column(name)
            if col.size:
                self._ranges[name] = (float(col.min()), float(col.max()))
            else:
                self._ranges[name] = (0.0, 1.0)
        self._conditions: dict[str, tuple[Predicate, ...]] = {
            attr: rule.clause.predicates_on(attr) for attr in rule.clause.attributes
        }
        self._windows: dict[str, NumericWindow] = {
            attr: window_from_conditions(conds)
            for attr, conds in self._conditions.items()
            if self.schema[attr].is_numeric
        }

    # ------------------------------------------------------------------ #
    def generate(
        self,
        pool: Table,
        base_positions: np.ndarray,
        rng: np.random.Generator,
    ) -> GeneratedBatch:
        """One synthetic instance per base position.

        ``pool`` is the rule's base population (coverage of the possibly
        relaxed rule); ``base_positions`` index rows of ``pool``.
        """
        base_positions = np.asarray(base_positions, dtype=np.intp)
        if base_positions.size == 0:
            return GeneratedBatch(Table.empty(self.schema), np.empty(0, dtype=np.int64))
        if pool.n_rows == 0:
            raise ValueError("empty base population")

        E = self._space.encode(pool)
        if pool.n_rows > 1:
            k_eff = min(self.k, pool.n_rows - 1)
            knn = BruteKNN(self._space.metric_).fit(E)
            _, nbr_idx = knn.kneighbors(E[base_positions], k_eff, exclude_self=True)
        else:
            # Single-instance pool: the base is its own neighbourhood.
            nbr_idx = np.zeros((base_positions.size, 1), dtype=np.intp)
            k_eff = 1

        n = base_positions.size
        chosen_nbr = nbr_idx[np.arange(n), rng.integers(0, k_eff, size=n)]
        omegas = rng.uniform(0.0, 1.0, size=n)

        columns: dict[str, np.ndarray] = {}
        for spec in self.schema:
            col = pool.column(spec.name)
            conds = self._conditions.get(spec.name, ())
            if spec.is_numeric:
                base_v = col[base_positions]
                nbr_v = col[chosen_nbr]
                if not conds:
                    columns[spec.name] = base_v + (nbr_v - base_v) * omegas
                else:
                    window = self._windows[spec.name]
                    vals = np.empty(n)
                    rng_attr = self._ranges[spec.name]
                    for s in range(n):
                        vals[s] = sample_in_window(
                            window, float(base_v[s]), float(nbr_v[s]), rng_attr, rng
                        )
                    columns[spec.name] = vals
            else:
                vals_c = np.empty(n, dtype=np.int64)
                for s in range(n):
                    codes = col[nbr_idx[s]]
                    vals_c[s] = pick_categorical(
                        codes, conds, spec.categories, rng
                    )
                columns[spec.name] = vals_c

        table = Table(self.schema, columns, copy=False)
        labels = self.rule.sample_labels(n, rng)
        return GeneratedBatch(table, labels)
