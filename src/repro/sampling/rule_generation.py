"""FROTE's rule-constrained synthetic instance generation (paper §4.2 + supplement).

Differences from vanilla SMOTE, per the paper:

1. neighbours are *not* required to share the base instance's class label —
   they must satisfy the same (possibly relaxed) feedback rule;
2. the generated instance must satisfy the **original, unrelaxed** rule;
   when the rule was relaxed, special windowing logic forces condition
   attributes back into compliance;
3. the synthetic label is sampled from the rule's distribution π instead of
   copying the base label.

Numeric condition attributes use the supplement's window logic: the
conditions on an attribute define a (min, max) window, the base/neighbour
values tighten it when they already fall inside, and the value is drawn
uniformly from the tightest window.

Candidate batches are generated with NumPy array ops:
:func:`sample_in_window_batch` and :func:`pick_categorical_batch` process a
whole column at once while consuming the RNG stream exactly like the
scalar :func:`sample_in_window` / :func:`pick_categorical` loops they
replace, so fixed-seed outputs are unchanged.  The generator can also
reuse its fitted neighbour index across edit-loop iterations via the
``cache_token`` argument (see :meth:`RuleConstrainedGenerator.generate`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import Table
from repro.neighbors import BruteKNN, TableNeighborSpace
from repro.rules.predicate import EQ, GE, GT, LE, LT, NE, Predicate
from repro.rules.rule import FeedbackRule
from repro.sampling.interpolation import (
    category_counts,
    choose_neighbors,
    interpolate_numeric,
)


@dataclass(frozen=True)
class NumericWindow:
    """Feasible open/closed interval for one numeric attribute.

    Attributes
    ----------
    lo, hi : float
        Window endpoints (infinite when unbounded).
    lo_strict, hi_strict : bool
        Whether the matching endpoint is excluded.
    eq : float or None
        Exact required value; overrides the interval when set.
    """

    lo: float = -np.inf
    hi: float = np.inf
    lo_strict: bool = False
    hi_strict: bool = False
    eq: float | None = None

    def contains(self, v: float) -> bool:
        """Return whether ``v`` satisfies the window."""
        if self.eq is not None:
            return v == self.eq
        lo_ok = v > self.lo if self.lo_strict else v >= self.lo
        hi_ok = v < self.hi if self.hi_strict else v <= self.hi
        return lo_ok and hi_ok


def window_from_conditions(conditions: tuple[Predicate, ...]) -> NumericWindow:
    """Fold numeric conditions on one attribute into a :class:`NumericWindow`.

    Parameters
    ----------
    conditions : tuple of Predicate
        All predicates of one rule on a single numeric attribute.

    Returns
    -------
    NumericWindow
        The tightest interval implied by the conditions.
    """
    lo, hi = -np.inf, np.inf
    lo_strict = hi_strict = False
    eq: float | None = None
    for p in conditions:
        v = float(p.value)
        if p.operator == EQ:
            eq = v
        elif p.operator in (GT, GE):
            strict = p.operator == GT
            if v > lo or (v == lo and strict):
                lo, lo_strict = v, strict
        elif p.operator in (LT, LE):
            strict = p.operator == LT
            if v < hi or (v == hi and strict):
                hi, hi_strict = v, strict
    return NumericWindow(lo, hi, lo_strict, hi_strict, eq)


def _open_interval(lo: float, hi: float, lo_strict: bool, hi_strict: bool) -> tuple[float, float]:
    """Shrink strict endpoints by one ulp so uniform sampling respects them."""
    if lo_strict and np.isfinite(lo):
        lo = np.nextafter(lo, np.inf)
    if hi_strict and np.isfinite(hi):
        hi = np.nextafter(hi, -np.inf)
    return lo, hi


def _fallback_interval(
    lo: float, hi: float, attr_range: tuple[float, float]
) -> tuple[float, float, bool]:
    """Resolve the column-constant fallback when the SMOTE segment misses.

    Returns ``(fb_lo, fb_hi, fb_draws)`` — the interval every
    segment-missing row samples from, and whether sampling consumes a
    random draw (degenerate intervals return their endpoint draw-free,
    mirroring the scalar :func:`sample_in_window` branches).
    """
    r_lo, r_hi = attr_range
    width = max(r_hi - r_lo, 1.0)
    cand_lo, cand_hi = max(lo, r_lo), min(hi, r_hi)
    if cand_lo <= cand_hi:
        return cand_lo, cand_hi, cand_lo < cand_hi
    # Window lies entirely outside observed range: synthesize near its edge.
    if np.isfinite(lo) and np.isfinite(hi):
        return lo, hi, lo < hi
    if np.isfinite(lo):
        return lo, lo + width, True
    if np.isfinite(hi):
        return hi - width, hi, True
    return r_lo, r_hi, True


def sample_in_window(
    window: NumericWindow,
    base_v: float,
    nbr_v: float,
    attr_range: tuple[float, float],
    rng: np.random.Generator,
) -> float:
    """Draw one value satisfying ``window``, preferring the SMOTE segment.

    Priority order (the supplement's "tightest window"):

    1. the base-neighbour segment intersected with the window;
    2. the window intersected with the attribute's observed range;
    3. the window alone (midpoint when degenerate, finite bound ± range
       width when half-open).

    Parameters
    ----------
    window : NumericWindow
        Feasible interval from the rule's conditions.
    base_v, nbr_v : float
        Attribute values of the base instance and chosen neighbour.
    attr_range : tuple of float
        Observed (min, max) of the attribute in the reference table.
    rng : numpy.random.Generator
        Source of the (at most one) uniform draw.

    Returns
    -------
    float
        A value inside ``window``.
    """
    if window.eq is not None:
        return float(window.eq)
    lo, hi = _open_interval(window.lo, window.hi, window.lo_strict, window.hi_strict)
    seg_lo, seg_hi = min(base_v, nbr_v), max(base_v, nbr_v)
    tight_lo, tight_hi = max(lo, seg_lo), min(hi, seg_hi)
    if tight_lo <= tight_hi:
        return float(rng.uniform(tight_lo, tight_hi)) if tight_lo < tight_hi else float(tight_lo)
    fb_lo, fb_hi, fb_draws = _fallback_interval(lo, hi, attr_range)
    return float(rng.uniform(fb_lo, fb_hi)) if fb_draws else float(fb_lo)


def sample_in_window_batch(
    window: NumericWindow,
    base_v: np.ndarray,
    nbr_v: np.ndarray,
    attr_range: tuple[float, float],
    rng: np.random.Generator,
) -> np.ndarray:
    """Vectorized :func:`sample_in_window` over whole candidate columns.

    Parameters
    ----------
    window : NumericWindow
        Feasible interval from the rule's conditions (shared by all rows).
    base_v, nbr_v : ndarray of shape (n,)
        Base and neighbour attribute values per synthetic candidate.
    attr_range : tuple of float
        Observed (min, max) of the attribute in the reference table.
    rng : numpy.random.Generator
        Consumes exactly one uniform draw per row whose interval is
        non-degenerate, in row order — the same stream consumption as a
        per-row loop over :func:`sample_in_window`.

    Returns
    -------
    ndarray of shape (n,)
        Values inside ``window``.
    """
    base_v = np.asarray(base_v, dtype=np.float64)
    nbr_v = np.asarray(nbr_v, dtype=np.float64)
    n = base_v.shape[0]
    if window.eq is not None:
        return np.full(n, float(window.eq))
    lo, hi = _open_interval(window.lo, window.hi, window.lo_strict, window.hi_strict)
    tight_lo = np.maximum(lo, np.minimum(base_v, nbr_v))
    tight_hi = np.minimum(hi, np.maximum(base_v, nbr_v))
    in_segment = tight_lo <= tight_hi
    fb_lo, fb_hi, fb_draws = _fallback_interval(lo, hi, attr_range)
    draw_lo = np.where(in_segment, tight_lo, fb_lo)
    draw_hi = np.where(in_segment, tight_hi, fb_hi)
    draws = np.where(in_segment, tight_lo < tight_hi, fb_draws)
    vals = draw_lo.copy()  # degenerate intervals collapse to their endpoint
    rows = np.flatnonzero(draws)
    if rows.size:
        # a + (b - a) * random() is exactly Generator.uniform(a, b), so the
        # batch matches the scalar loop's stream draw for draw.
        u = rng.random(rows.size)
        vals[rows] = draw_lo[rows] + (draw_hi[rows] - draw_lo[rows]) * u
    return vals


def _allowed_codes(
    conditions: tuple[Predicate, ...], categories: tuple[str, ...]
) -> list[int]:
    """Category codes admitted by EQ/NE conditions, ascending.

    Raises
    ------
    ValueError
        If the conditions admit no categorical value (unsatisfiable rule).
    """
    allowed = set(range(len(categories)))
    for p in conditions:
        code = categories.index(str(p.value))
        if p.operator == EQ:
            allowed &= {code}
        elif p.operator == NE:
            allowed -= {code}
    if not allowed:
        raise ValueError("conditions admit no categorical value (unsatisfiable rule)")
    return sorted(allowed)


def pick_categorical(
    neighbor_codes: np.ndarray,
    conditions: tuple[Predicate, ...],
    categories: tuple[str, ...],
    rng: np.random.Generator,
) -> int:
    """Pick the majority neighbour value subject to the rule's conditions.

    Values are tried in decreasing neighbour frequency (the supplement's
    sorted-candidates procedure); if every observed value violates a
    condition, a uniformly random *allowed* category is used.

    Parameters
    ----------
    neighbor_codes : ndarray of shape (k,) of integer codes
        One sample's neighbour values for the attribute.
    conditions : tuple of Predicate
        The rule's EQ/NE conditions on the attribute.
    categories : tuple of str
        The attribute's category alphabet.
    rng : numpy.random.Generator
        Consulted only in the all-observed-violate fallback.

    Returns
    -------
    int
        An allowed category code.
    """
    allowed_list = _allowed_codes(conditions, categories)
    allowed = set(allowed_list)
    counts = np.bincount(neighbor_codes, minlength=len(categories))
    order = np.argsort(-counts, kind="stable")
    for code in order:
        if counts[code] > 0 and int(code) in allowed:
            return int(code)
    return int(allowed_list[rng.integers(len(allowed_list))])


def pick_categorical_batch(
    codes: np.ndarray,
    conditions: tuple[Predicate, ...],
    categories: tuple[str, ...],
    rng: np.random.Generator,
) -> np.ndarray:
    """Vectorized :func:`pick_categorical` over a neighbour-code matrix.

    Parameters
    ----------
    codes : ndarray of shape (n, k) of integer codes
        Row ``i`` holds candidate ``i``'s neighbour values.
    conditions : tuple of Predicate
        The rule's EQ/NE conditions on the attribute.
    categories : tuple of str
        The attribute's category alphabet.
    rng : numpy.random.Generator
        Consulted once per row whose observed values all violate the
        conditions, in row order — matching the scalar loop's stream.

    Returns
    -------
    ndarray of shape (n,) of int64
        One allowed category code per row.
    """
    allowed_list = np.asarray(_allowed_codes(conditions, categories), dtype=np.int64)
    n_cats = len(categories)
    allowed_mask = np.zeros(n_cats, dtype=bool)
    allowed_mask[allowed_list] = True
    counts = category_counts(codes, n_cats)
    # Observed + allowed codes score by frequency; argmax breaks frequency
    # ties toward the lowest code, exactly like the scalar stable argsort.
    score = np.where(allowed_mask[None, :] & (counts > 0), counts, -1)
    vals = np.argmax(score, axis=1).astype(np.int64)
    no_valid = score[np.arange(score.shape[0]), vals] < 0
    rows = np.flatnonzero(no_valid)
    if rows.size:
        vals[rows] = allowed_list[rng.integers(0, allowed_list.size, size=rows.size)]
    return vals


@dataclass(frozen=True)
class GeneratedBatch:
    """Synthetic instances plus their sampled labels."""

    table: Table
    labels: np.ndarray

    @property
    def n(self) -> int:
        """Number of generated rows."""
        return self.table.n_rows


class RuleConstrainedGenerator:
    """Generate synthetic instances that satisfy a feedback rule.

    Parameters
    ----------
    rule : FeedbackRule
        The original, unrelaxed feedback rule the output must satisfy.
    reference : Table
        Table providing attribute ranges for window fallbacks and the
        neighbour-space scaling (typically the current active dataset).
    k : int, default 5
        Neighbours per base instance (paper: 5).
    distance_backend : str or backend, optional
        ``None`` (default) keeps the exact float64 neighbour search; a
        :data:`repro.engine.DISTANCE_BACKENDS` name opts into the blocked
        kernel layer (:mod:`repro.neighbors.kernels`).
    """

    def __init__(
        self,
        rule: FeedbackRule,
        reference: Table,
        *,
        k: int = 5,
        distance_backend=None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.rule = rule
        self.k = k
        self.distance_backend = distance_backend
        self.schema = reference.schema
        self._space = TableNeighborSpace().fit(reference)
        self._index_cache: tuple[object, np.ndarray, BruteKNN | None] | None = None
        self._ranges: dict[str, tuple[float, float]] = {}
        for name in reference.schema.numeric_names:
            col = reference.column(name)
            if col.size:
                self._ranges[name] = (float(col.min()), float(col.max()))
            else:
                self._ranges[name] = (0.0, 1.0)
        self._conditions: dict[str, tuple[Predicate, ...]] = {
            attr: rule.clause.predicates_on(attr) for attr in rule.clause.attributes
        }
        self._windows: dict[str, NumericWindow] = {
            attr: window_from_conditions(conds)
            for attr, conds in self._conditions.items()
            if self.schema[attr].is_numeric
        }

    # ------------------------------------------------------------------ #
    def _fitted_index(
        self, pool: Table, cache_token: object | None
    ) -> tuple[np.ndarray, BruteKNN | None]:
        """Encode ``pool`` and fit its KNN index, reusing a cached fit.

        When ``cache_token`` is not ``None`` and matches the token of the
        previous call, the cached ``(encoded, index)`` pair is returned
        without re-encoding or re-fitting — the edit loop passes its
        dataset version so rejected iterations (pool unchanged) skip the
        rebuild.
        """
        if (
            cache_token is not None
            and self._index_cache is not None
            and self._index_cache[0] == cache_token
        ):
            return self._index_cache[1], self._index_cache[2]
        E = self._space.encode(pool)
        knn = (
            BruteKNN(self._space.metric_, backend=self.distance_backend).fit(E)
            if pool.n_rows > 1
            else None
        )
        if cache_token is not None:
            self._index_cache = (cache_token, E, knn)
        return E, knn

    # ------------------------------------------------------------------ #
    def generate(
        self,
        pool: Table,
        base_positions: np.ndarray,
        rng: np.random.Generator,
        *,
        cache_token: object | None = None,
    ) -> GeneratedBatch:
        """Generate one synthetic instance per base position.

        Parameters
        ----------
        pool : Table
            The rule's base population (coverage of the possibly relaxed
            rule).
        base_positions : ndarray of int
            Row positions into ``pool`` to use as base instances.
        rng : numpy.random.Generator
            Source for neighbour choice, interpolation, and labels.
        cache_token : hashable, optional
            Identity token for ``pool``.  Consecutive calls with the same
            non-``None`` token reuse the fitted neighbour index instead of
            re-encoding and re-fitting it; pass a fresh token (or ``None``)
            whenever the pool contents change.

        Returns
        -------
        GeneratedBatch
            The synthetic rows and their π-sampled labels.

        Raises
        ------
        ValueError
            If ``pool`` is empty while positions were requested.
        """
        base_positions = np.asarray(base_positions, dtype=np.intp)
        if base_positions.size == 0:
            return GeneratedBatch(Table.empty(self.schema), np.empty(0, dtype=np.int64))
        if pool.n_rows == 0:
            raise ValueError("empty base population")

        E, knn = self._fitted_index(pool, cache_token)
        if pool.n_rows > 1:
            k_eff = min(self.k, pool.n_rows - 1)
            assert knn is not None
            _, nbr_idx = knn.kneighbors(E[base_positions], k_eff, exclude_self=True)
        else:
            # Single-instance pool: the base is its own neighbourhood.
            nbr_idx = np.zeros((base_positions.size, 1), dtype=np.intp)

        n = base_positions.size
        chosen_nbr, omegas = choose_neighbors(nbr_idx, rng)

        columns: dict[str, np.ndarray] = {}
        for spec in self.schema:
            col = pool.column(spec.name)
            conds = self._conditions.get(spec.name, ())
            if spec.is_numeric:
                base_v = col[base_positions]
                nbr_v = col[chosen_nbr]
                if not conds:
                    columns[spec.name] = interpolate_numeric(base_v, nbr_v, omegas)
                else:
                    columns[spec.name] = sample_in_window_batch(
                        self._windows[spec.name],
                        base_v,
                        nbr_v,
                        self._ranges[spec.name],
                        rng,
                    )
            else:
                columns[spec.name] = pick_categorical_batch(
                    col[nbr_idx], conds, spec.categories, rng
                )

        table = Table(self.schema, columns, copy=False)
        labels = self.rule.sample_labels(n, rng)
        return GeneratedBatch(table, labels)
