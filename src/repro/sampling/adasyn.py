"""ADASYN (He et al., 2008): density-adaptive synthetic oversampling.

The paper's related-work section surveys oversampling alternatives; ADASYN
is the canonical density-adaptive one — minority instances with more
majority-class neighbours (harder to learn) receive proportionally more
synthetic offspring.  Included both as a standalone imbalance utility and
as an alternative FROTE base-instance weighting in ablations.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.engine.registry import register_sampler
from repro.data.table import Table
from repro.neighbors import BruteKNN, TableNeighborSpace
from repro.sampling.smote import SMOTE
from repro.utils.rng import RandomState, check_random_state


def adasyn_weights(
    table: Table,
    is_minority: np.ndarray,
    *,
    k: int = 5,
    distance_backend=None,
) -> np.ndarray:
    """Per-minority-instance generation weights.

    Weight of minority instance i is the fraction of its ``k`` nearest
    neighbours (over the whole table) that are *not* minority, normalized
    to sum to 1.  Uniform when every minority point is isolated equally.
    """
    is_minority = np.asarray(is_minority, dtype=bool)
    if is_minority.shape != (table.n_rows,):
        raise ValueError("is_minority mask does not match table")
    minority_idx = np.flatnonzero(is_minority)
    if minority_idx.size == 0:
        return np.empty(0)
    if table.n_rows < 2:
        return np.ones(minority_idx.size) / minority_idx.size
    space = TableNeighborSpace().fit(table)
    E = space.encode(table)
    k_eff = min(k, table.n_rows - 1)
    knn = BruteKNN(space.metric_, backend=distance_backend).fit(E)
    _, nbr = knn.kneighbors(E[minority_idx], k_eff, exclude_self=True)
    majority_frac = (~is_minority[nbr]).mean(axis=1)
    total = majority_frac.sum()
    if total <= 0:
        return np.ones(minority_idx.size) / minority_idx.size
    return majority_frac / total


@register_sampler("adasyn")
class ADASYN:
    """Adaptive synthetic oversampling to class balance.

    Parameters
    ----------
    k:
        Neighbourhood size for both the density weights and the SMOTE
        interpolation step.
    random_state:
        Seed for weight-proportional base sampling and interpolation.
    """

    def __init__(
        self,
        k: int = 5,
        *,
        random_state: RandomState = None,
        distance_backend=None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.random_state = random_state
        self.distance_backend = distance_backend

    def fit_resample(self, dataset: Dataset) -> Dataset:
        """Oversample every minority class to the majority class count.

        Synthesis effort is allocated per base instance by local majority
        density (the ADASYN weights), then interpolation proceeds as in
        SMOTE within each class.

        Parameters
        ----------
        dataset : Dataset
            The imbalanced dataset.

        Returns
        -------
        Dataset
            Original rows followed by the synthetic minority rows.
        """
        rng = check_random_state(self.random_state)
        counts = dataset.class_counts()
        target = int(counts.max())
        smote = SMOTE(self.k, distance_backend=self.distance_backend)
        parts = [dataset]
        for c in range(dataset.n_classes):
            deficit = target - int(counts[c])
            class_idx = np.flatnonzero(dataset.y == c)
            if deficit <= 0 or class_idx.size < 2:
                continue
            weights = adasyn_weights(
                dataset.X,
                dataset.y == c,
                k=self.k,
                distance_backend=self.distance_backend,
            )
            # Draw base instances proportionally to the density weights,
            # then interpolate within the class like SMOTE.
            base_draws = rng.choice(class_idx.size, size=deficit, p=weights)
            class_table = dataset.X.take(class_idx)
            synth = smote.generate(
                class_table,
                deficit,
                base_indices=np.unique(base_draws),
                rng=rng,
            )
            parts.append(
                Dataset(
                    synth,
                    np.full(deficit, c, dtype=np.int64),
                    dataset.label_names,
                )
            )
        return Dataset.concat(parts)
