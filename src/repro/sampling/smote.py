"""SMOTE and SMOTE-NC (Chawla et al., 2002) over mixed-type tables.

FROTE's generator extends this classic recipe; the vanilla versions here
serve as the reference implementation, as a baseline in ablations, and as
the class-imbalance utility a downstream user of the library would expect.

* numeric attribute of the synthetic point: uniform on the segment between
  the base instance and one of its ``k`` nearest neighbours (Eq. 6);
* categorical attribute (SMOTE-NC): majority value among the neighbours.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.engine.registry import register_sampler
from repro.data.table import Table
from repro.neighbors import BruteKNN, TableNeighborSpace
from repro.utils.rng import RandomState, check_random_state


def interpolate_numeric(
    base: np.ndarray, neighbor: np.ndarray, omega: np.ndarray
) -> np.ndarray:
    """Paper Eq. 6: ``v = x_i + (x_j - x_i) * omega`` element-wise."""
    return base + (neighbor - base) * omega


def majority_categorical(
    neighbor_codes: np.ndarray, rng: np.random.Generator
) -> int:
    """Most frequent code among neighbours; ties broken at random."""
    counts = np.bincount(neighbor_codes)
    top = np.flatnonzero(counts == counts.max())
    return int(top[rng.integers(top.size)]) if top.size > 1 else int(top[0])


@register_sampler("smote")
class SMOTE:
    """Synthetic Minority Oversampling with NC extension for categoricals.

    Parameters
    ----------
    k:
        Number of nearest neighbours (paper default 5).
    random_state:
        Seed for neighbour choice and interpolation weights.
    """

    def __init__(self, k: int = 5, *, random_state: RandomState = None) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.random_state = random_state

    # ------------------------------------------------------------------ #
    def generate(
        self,
        table: Table,
        n_samples: int,
        *,
        base_indices: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> Table:
        """Generate ``n_samples`` synthetic rows from ``table``.

        ``base_indices`` restricts base-instance choice (defaults to all
        rows).  Neighbours are searched over the full ``table``.
        """
        if table.n_rows < 2:
            raise ValueError("need at least 2 rows to interpolate")
        rng = rng if rng is not None else check_random_state(self.random_state)
        if base_indices is None:
            base_indices = np.arange(table.n_rows)
        base_indices = np.asarray(base_indices, dtype=np.intp)
        if base_indices.size == 0:
            raise ValueError("base_indices is empty")

        space = TableNeighborSpace().fit(table)
        E = space.encode(table)
        knn = BruteKNN(space.metric_).fit(E)
        k_eff = min(self.k, table.n_rows - 1)
        _, nbr_idx = knn.kneighbors(E[base_indices], k_eff, exclude_self=True)

        chosen_base = rng.integers(0, base_indices.size, size=n_samples)
        chosen_nbr_col = rng.integers(0, k_eff, size=n_samples)

        schema = table.schema
        columns: dict[str, np.ndarray] = {}
        b_rows = base_indices[chosen_base]
        j_rows = nbr_idx[chosen_base, chosen_nbr_col]
        omegas = rng.uniform(0.0, 1.0, size=n_samples)
        for spec in schema:
            col = table.column(spec.name)
            if spec.is_numeric:
                columns[spec.name] = interpolate_numeric(
                    col[b_rows], col[j_rows], omegas
                )
            else:
                vals = np.empty(n_samples, dtype=np.int64)
                for s in range(n_samples):
                    codes = col[nbr_idx[chosen_base[s]]]
                    vals[s] = majority_categorical(codes, rng)
                columns[spec.name] = vals
        return Table(schema, columns, copy=False)

    # ------------------------------------------------------------------ #
    def fit_resample(self, dataset: Dataset) -> Dataset:
        """Classic imbalance correction: oversample every minority class
        up to the majority class count."""
        counts = dataset.class_counts()
        target = int(counts.max())
        rng = check_random_state(self.random_state)
        parts = [dataset]
        for c in range(dataset.n_classes):
            deficit = target - int(counts[c])
            idx = np.flatnonzero(dataset.y == c)
            if deficit <= 0 or idx.size < 2:
                continue
            class_table = dataset.X.take(idx)
            synth = self.generate(class_table, deficit, rng=rng)
            parts.append(
                Dataset(synth, np.full(deficit, c, dtype=np.int64), dataset.label_names)
            )
        return Dataset.concat(parts)
