"""SMOTE and SMOTE-NC (Chawla et al., 2002) over mixed-type tables.

FROTE's generator extends this classic recipe; the vanilla versions here
serve as the reference implementation, as a baseline in ablations, and as
the class-imbalance utility a downstream user of the library would expect.

* numeric attribute of the synthetic point: uniform on the segment between
  the base instance and one of its ``k`` nearest neighbours (Eq. 6);
* categorical attribute (SMOTE-NC): majority value among the neighbours.

All candidate generation is batched: one ``kneighbors`` call over the base
matrix and one :func:`~repro.sampling.interpolation
.majority_categorical_batch` call per categorical column replace the
original per-sample Python loops while consuming the RNG stream
identically (see :mod:`repro.perf.seed_reference` for the loop versions
the parity tests compare against).
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset
from repro.data.table import Table
from repro.engine.registry import register_sampler
from repro.neighbors import BruteKNN, TableNeighborSpace
from repro.sampling.interpolation import (
    interpolate_numeric,
    majority_categorical,
    majority_categorical_batch,
)
from repro.utils.rng import RandomState, check_random_state

__all__ = ["SMOTE", "interpolate_numeric", "majority_categorical"]


@register_sampler("smote")
class SMOTE:
    """Synthetic Minority Oversampling with NC extension for categoricals.

    Parameters
    ----------
    k : int, default 5
        Number of nearest neighbours (paper default 5).
    random_state : int, Generator, or None
        Seed for neighbour choice and interpolation weights.
    distance_backend : str or backend, optional
        ``None`` (default) keeps the exact float64 neighbour search.  A
        :data:`repro.engine.DISTANCE_BACKENDS` name opts the ``kneighbors``
        call into the blocked kernel layer (:mod:`repro.neighbors.kernels`);
        neighbour sets can differ from the exact path only on distance
        ties, per the kernel contract.
    """

    def __init__(
        self,
        k: int = 5,
        *,
        random_state: RandomState = None,
        distance_backend=None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.random_state = random_state
        self.distance_backend = distance_backend

    # ------------------------------------------------------------------ #
    def generate(
        self,
        table: Table,
        n_samples: int,
        *,
        base_indices: np.ndarray | None = None,
        rng: np.random.Generator | None = None,
    ) -> Table:
        """Generate ``n_samples`` synthetic rows from ``table``.

        Parameters
        ----------
        table : Table
            Source rows; neighbours are searched over the full table.
        n_samples : int
            Number of synthetic rows to produce.
        base_indices : ndarray of int, optional
            Restricts base-instance choice (defaults to all rows).
        rng : numpy.random.Generator, optional
            Overrides the instance's ``random_state`` stream.

        Returns
        -------
        Table
            ``n_samples`` synthetic rows under the source schema.

        Raises
        ------
        ValueError
            If ``table`` has fewer than two rows or ``base_indices`` is
            empty.
        """
        if table.n_rows < 2:
            raise ValueError("need at least 2 rows to interpolate")
        rng = rng if rng is not None else check_random_state(self.random_state)
        if base_indices is None:
            base_indices = np.arange(table.n_rows)
        base_indices = np.asarray(base_indices, dtype=np.intp)
        if base_indices.size == 0:
            raise ValueError("base_indices is empty")

        space = TableNeighborSpace().fit(table)
        E = space.encode(table)
        knn = BruteKNN(space.metric_, backend=self.distance_backend).fit(E)
        k_eff = min(self.k, table.n_rows - 1)
        _, nbr_idx = knn.kneighbors(E[base_indices], k_eff, exclude_self=True)

        chosen_base = rng.integers(0, base_indices.size, size=n_samples)
        chosen_nbr_col = rng.integers(0, k_eff, size=n_samples)

        schema = table.schema
        columns: dict[str, np.ndarray] = {}
        b_rows = base_indices[chosen_base]
        j_rows = nbr_idx[chosen_base, chosen_nbr_col]
        omegas = rng.uniform(0.0, 1.0, size=n_samples)
        for spec in schema:
            col = table.column(spec.name)
            if spec.is_numeric:
                columns[spec.name] = interpolate_numeric(
                    col[b_rows], col[j_rows], omegas
                )
            else:
                codes = col[nbr_idx[chosen_base]]
                columns[spec.name] = majority_categorical_batch(
                    codes, len(spec.categories), rng
                )
        return Table(schema, columns, copy=False)

    # ------------------------------------------------------------------ #
    def fit_resample(self, dataset: Dataset) -> Dataset:
        """Oversample every minority class up to the majority class count.

        Parameters
        ----------
        dataset : Dataset
            The imbalanced dataset.

        Returns
        -------
        Dataset
            Original rows followed by the synthetic minority rows.
        """
        counts = dataset.class_counts()
        target = int(counts.max())
        rng = check_random_state(self.random_state)
        parts = [dataset]
        for c in range(dataset.n_classes):
            deficit = target - int(counts[c])
            idx = np.flatnonzero(dataset.y == c)
            if deficit <= 0 or idx.size < 2:
                continue
            class_table = dataset.X.take(idx)
            synth = self.generate(class_table, deficit, rng=rng)
            parts.append(
                Dataset(synth, np.full(deficit, c, dtype=np.int64), dataset.label_names)
            )
        return Dataset.concat(parts)
