"""Borderline instance analysis (Han et al., 2005) and IP selection weights.

The FROTE supplement pre-computes a weight per base-population instance for
the IP selection strategy: each instance is classified by the labels of its
``k`` nearest neighbours (labels = *predictions of the model being edited*):

* ``q >> p``  (most neighbours disagree)  -> *noisy*
* ``p >> q``  (most neighbours agree)     -> *safe*
* ``p ~= q``                              -> *borderline*

Borderline points sit near decision boundaries and get the largest weight
(3 vs 1 in the paper's experiments, with ``k = 10``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.table import Table
from repro.engine.registry import register_sampler
from repro.neighbors import BruteKNN, TableNeighborSpace
from repro.utils.validation import check_array_1d

NOISY, SAFE, BORDERLINE = "noisy", "safe", "borderline"

DEFAULT_WEIGHTS = {NOISY: 1.0, SAFE: 1.0, BORDERLINE: 3.0}


@dataclass(frozen=True)
class BorderlineAnalysis:
    """Per-instance category and weight."""

    categories: np.ndarray  # dtype=object of {noisy, safe, borderline}
    weights: np.ndarray  # float weights

    def count(self, category: str) -> int:
        """Number of instances classified as ``category``."""
        return int(np.sum(self.categories == category))


def classify_borderline(
    table: Table,
    labels: np.ndarray,
    *,
    k: int = 10,
    borderline_band: float = 0.3,
    weights: dict[str, float] | None = None,
    distance_backend=None,
) -> BorderlineAnalysis:
    """Classify instances as noisy / safe / borderline from neighbour labels.

    Parameters
    ----------
    table:
        Instances to classify (neighbours searched within this table).
    labels:
        Labels used for the agreement test — for FROTE these are the current
        model's *predictions* on ``table``.
    k:
        Neighbourhood size (paper supplement uses 10).
    borderline_band:
        An instance is *borderline* when the same-label neighbour fraction
        ``p/(p+q)`` falls within ``0.5 ± borderline_band/2`` — i.e. p ≈ q.
        Above the band it is *safe*; below, *noisy*.
    weights:
        Weight per category; defaults to the paper's {1, 1, 3}.
    distance_backend:
        Optional :data:`repro.engine.DISTANCE_BACKENDS` name (or backend
        instance) for the neighbour search; ``None`` keeps the exact
        float64 path.
    """
    labels = check_array_1d(labels, name="labels", dtype=np.int64)
    if labels.shape[0] != table.n_rows:
        raise ValueError("labels length does not match table")
    if table.n_rows < 2:
        cats = np.array([SAFE] * table.n_rows, dtype=object)
        w = weights or DEFAULT_WEIGHTS
        return BorderlineAnalysis(cats, np.array([w[SAFE]] * table.n_rows))
    if not 0 < borderline_band < 1:
        raise ValueError(f"borderline_band must be in (0, 1), got {borderline_band}")

    space = TableNeighborSpace().fit(table)
    E = space.encode(table)
    k_eff = min(k, table.n_rows - 1)
    knn = BruteKNN(space.metric_, backend=distance_backend).fit(E)
    _, nbr = knn.kneighbors(E, k_eff, exclude_self=True)
    same = labels[nbr] == labels[:, None]
    p_frac = same.mean(axis=1)

    lo = 0.5 - borderline_band / 2.0
    hi = 0.5 + borderline_band / 2.0
    noisy = p_frac < lo
    border = (p_frac >= lo) & (p_frac <= hi)
    cats = np.empty(table.n_rows, dtype=object)
    cats[noisy] = NOISY
    cats[border] = BORDERLINE
    cats[p_frac > hi] = SAFE
    return BorderlineAnalysis(cats, category_weights(cats, weights))


def category_weights(
    cats: np.ndarray, weights: dict[str, float] | None = None
) -> np.ndarray:
    """Map borderline categories to their selection weights, vectorized.

    Parameters
    ----------
    cats : ndarray of object
        Per-instance categories (``noisy`` / ``safe`` / ``borderline``).
    weights : dict, optional
        Weight per category; defaults to the paper's {1, 1, 3}.  A
        category's weight is looked up only when the category occurs, so
        partial dicts work.

    Returns
    -------
    ndarray of float64
        One weight per instance.
    """
    # One fused C-level pass.  The previous per-category boolean-mask
    # version scanned the object array three times plus an `assigned`
    # bookkeeping pass and lost to the seed loop at every size
    # (BENCH_hotpaths `borderline_weights` 0.84×); KeyError on unknown
    # categories is preserved by the dict lookup itself.
    w = weights or DEFAULT_WEIGHTS
    return np.fromiter(
        map(w.__getitem__, cats.tolist()), np.float64, count=cats.shape[0]
    )


@register_sampler("borderline")
class BorderlineSMOTE:
    """Borderline-SMOTE1: oversample only borderline minority instances.

    Included as the Han et al. (2005) baseline FROTE's related work builds
    on; reuses the vanilla SMOTE interpolation with base instances
    restricted to the borderline set.
    """

    def __init__(
        self,
        k: int = 5,
        *,
        k_classify: int = 10,
        random_state=None,
        distance_backend=None,
    ) -> None:
        self.k = k
        self.k_classify = k_classify
        self.random_state = random_state
        self.distance_backend = distance_backend

    def fit_resample(self, dataset):
        """Oversample minority classes from their borderline instances.

        Parameters
        ----------
        dataset : Dataset
            The imbalanced dataset.

        Returns
        -------
        Dataset
            Original rows followed by the synthetic minority rows.
        """
        from repro.data.dataset import Dataset
        from repro.sampling.smote import SMOTE
        from repro.utils.rng import check_random_state

        rng = check_random_state(self.random_state)
        counts = dataset.class_counts()
        target = int(counts.max())
        analysis = classify_borderline(
            dataset.X,
            dataset.y,
            k=self.k_classify,
            distance_backend=self.distance_backend,
        )
        parts = [dataset]
        smote = SMOTE(self.k, distance_backend=self.distance_backend)
        for c in range(dataset.n_classes):
            deficit = target - int(counts[c])
            if deficit <= 0:
                continue
            class_idx = np.flatnonzero(dataset.y == c)
            borderline_idx = class_idx[analysis.categories[class_idx] == BORDERLINE]
            base = borderline_idx if borderline_idx.size >= 2 else class_idx
            if base.size < 2:
                continue
            class_table = dataset.X.take(class_idx)
            # Positions of base rows inside the class table.
            pos = np.searchsorted(class_idx, base)
            synth = smote.generate(class_table, deficit, base_indices=pos, rng=rng)
            parts.append(
                Dataset(synth, np.full(deficit, c, dtype=np.int64), dataset.label_names)
            )
        return Dataset.concat(parts)
