"""Oversampling substrate: SMOTE, Borderline-SMOTE, rule-constrained generation.

Samplers are registered in :data:`repro.engine.SAMPLERS`;
:func:`make_sampler` instantiates one by name, so user samplers registered
via :func:`repro.engine.register_sampler` are constructible the same way
the built-ins are.
"""

from repro.engine.registry import SAMPLERS
from repro.sampling.adasyn import ADASYN, adasyn_weights
from repro.sampling.borderline import (
    BORDERLINE,
    NOISY,
    SAFE,
    BorderlineAnalysis,
    BorderlineSMOTE,
    category_weights,
    classify_borderline,
)
from repro.sampling.interpolation import (
    category_counts,
    interpolate_numeric,
    majority_categorical,
    majority_categorical_batch,
)
from repro.sampling.rule_generation import (
    GeneratedBatch,
    NumericWindow,
    RuleConstrainedGenerator,
    pick_categorical,
    pick_categorical_batch,
    sample_in_window,
    sample_in_window_batch,
    window_from_conditions,
)
from repro.sampling.smote import SMOTE


def make_sampler(name: str, **kwargs):
    """Instantiate a registered oversampler by name.

    Built-ins: ``"smote"``, ``"borderline"``, ``"adasyn"``.  All share the
    ``fit_resample(dataset) -> Dataset`` interface; plugins registered with
    :func:`repro.engine.register_sampler` resolve here too.
    """
    return SAMPLERS.create(name, **kwargs)


__all__ = [
    "make_sampler",
    "SMOTE",
    "BorderlineSMOTE",
    "ADASYN",
    "adasyn_weights",
    "interpolate_numeric",
    "majority_categorical",
    "majority_categorical_batch",
    "category_counts",
    "classify_borderline",
    "category_weights",
    "BorderlineAnalysis",
    "NOISY",
    "SAFE",
    "BORDERLINE",
    "RuleConstrainedGenerator",
    "GeneratedBatch",
    "NumericWindow",
    "window_from_conditions",
    "sample_in_window",
    "sample_in_window_batch",
    "pick_categorical",
    "pick_categorical_batch",
]
