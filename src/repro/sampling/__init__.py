"""Oversampling substrate: SMOTE, Borderline-SMOTE, rule-constrained generation."""

from repro.sampling.adasyn import ADASYN, adasyn_weights
from repro.sampling.borderline import (
    BORDERLINE,
    NOISY,
    SAFE,
    BorderlineAnalysis,
    BorderlineSMOTE,
    classify_borderline,
)
from repro.sampling.rule_generation import (
    GeneratedBatch,
    NumericWindow,
    RuleConstrainedGenerator,
    pick_categorical,
    sample_in_window,
    window_from_conditions,
)
from repro.sampling.smote import SMOTE, interpolate_numeric, majority_categorical

__all__ = [
    "SMOTE",
    "BorderlineSMOTE",
    "ADASYN",
    "adasyn_weights",
    "interpolate_numeric",
    "majority_categorical",
    "classify_borderline",
    "BorderlineAnalysis",
    "NOISY",
    "SAFE",
    "BORDERLINE",
    "RuleConstrainedGenerator",
    "GeneratedBatch",
    "NumericWindow",
    "window_from_conditions",
    "sample_in_window",
    "pick_categorical",
]
