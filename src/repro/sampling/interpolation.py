"""Shared mixed-type interpolation helpers for the SMOTE-family generators.

Every SMOTE-style generator in this package builds synthetic rows the same
way: numeric attributes interpolate along the base→neighbour segment
(paper Eq. 6) and categorical attributes aggregate the neighbourhood's
codes.  This module holds the batch (matrix-at-a-time) primitives those
generators share, so :mod:`repro.sampling.smote`,
:mod:`repro.sampling.adasyn`, :mod:`repro.sampling.borderline`, and
:mod:`repro.sampling.rule_generation` all vectorize the same way.

The batch helpers are **RNG-stream compatible** with their scalar
counterparts: calling :func:`majority_categorical_batch` consumes random
numbers in exactly the order the original per-sample loop over
:func:`majority_categorical` did, so fixed-seed outputs are bit-for-bit
identical (``repro.perf.seed_reference`` keeps the loop versions and
``tests/perf/test_seed_parity.py`` pins the equivalence).
"""

from __future__ import annotations

import numpy as np


def interpolate_numeric(
    base: np.ndarray, neighbor: np.ndarray, omega: np.ndarray
) -> np.ndarray:
    """Interpolate numeric values along base→neighbour segments (paper Eq. 6).

    Parameters
    ----------
    base : ndarray of shape (n,)
        Attribute values of the base instances.
    neighbor : ndarray of shape (n,)
        Attribute values of the chosen neighbours.
    omega : ndarray of shape (n,)
        Interpolation weights in ``[0, 1]``.

    Returns
    -------
    ndarray of shape (n,)
        ``base + (neighbor - base) * omega`` element-wise.
    """
    return base + (neighbor - base) * omega


def category_counts(codes: np.ndarray, n_categories: int) -> np.ndarray:
    """Count category occurrences per row of a neighbour-code matrix.

    Parameters
    ----------
    codes : ndarray of shape (n, k) of integer codes
        One row of neighbour codes per synthetic sample.
    n_categories : int
        Number of valid codes; counts are padded to this width.

    Returns
    -------
    ndarray of shape (n, n_categories) of int64
        ``out[i, c]`` is how often code ``c`` appears in ``codes[i]``.
    """
    codes = np.asarray(codes, dtype=np.int64)
    n = codes.shape[0]
    # One flat bincount over row-offset codes beats np.add.at (an
    # unbuffered ufunc loop) by an order of magnitude on this shape.
    offset = codes + np.arange(n, dtype=np.int64)[:, None] * n_categories
    return np.bincount(offset.ravel(), minlength=n * n_categories).reshape(
        n, n_categories
    )


def majority_categorical(
    neighbor_codes: np.ndarray, rng: np.random.Generator
) -> int:
    """Pick the most frequent code among one sample's neighbours.

    Parameters
    ----------
    neighbor_codes : ndarray of shape (k,) of integer codes
        Neighbour values of one categorical attribute.
    rng : numpy.random.Generator
        Consulted only to break ties (uniformly over the tied codes).

    Returns
    -------
    int
        The winning category code.
    """
    counts = np.bincount(neighbor_codes)
    top = np.flatnonzero(counts == counts.max())
    return int(top[rng.integers(top.size)]) if top.size > 1 else int(top[0])


def majority_categorical_batch(
    codes: np.ndarray, n_categories: int, rng: np.random.Generator
) -> np.ndarray:
    """Vectorized :func:`majority_categorical` over a whole code matrix.

    Parameters
    ----------
    codes : ndarray of shape (n, k) of integer codes
        One row of neighbour codes per synthetic sample.
    n_categories : int
        Width of the category alphabet.
    rng : numpy.random.Generator
        Consulted once per *tied* row, in row order — the same stream
        consumption as a per-row loop over :func:`majority_categorical`.

    Returns
    -------
    ndarray of shape (n,) of int64
        Majority code per row; ties broken uniformly at random.
    """
    counts = category_counts(codes, n_categories)
    max_counts = counts.max(axis=1, keepdims=True)
    is_top = counts == max_counts
    winners = np.argmax(is_top, axis=1).astype(np.int64)
    tied_rows = np.flatnonzero(is_top.sum(axis=1) > 1)
    for r in tied_rows:
        top = np.flatnonzero(is_top[r])
        winners[r] = top[rng.integers(top.size)]
    return winners


def choose_neighbors(
    nbr_idx: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Draw one neighbour column per row plus interpolation weights.

    Parameters
    ----------
    nbr_idx : ndarray of shape (n, k)
        Neighbour index matrix (row ``i`` holds sample ``i``'s candidates).
    rng : numpy.random.Generator
        Source for the column choices and the ``omega`` weights.

    Returns
    -------
    chosen : ndarray of shape (n,)
        One neighbour index per row.
    omega : ndarray of shape (n,)
        Uniform interpolation weights in ``[0, 1)``.
    """
    n, k = nbr_idx.shape
    cols = rng.integers(0, k, size=n)
    chosen = nbr_idx[np.arange(n), cols]
    omega = rng.uniform(0.0, 1.0, size=n)
    return chosen, omega
