"""The seed repository's row-at-a-time hot-path implementations, preserved.

When the edit-loop hot paths were vectorized, the original per-row Python
loops were moved here verbatim (modulo being standalone functions) so that

* ``tests/perf/test_seed_parity.py`` can pin, under a fixed RNG, that the
  vectorized implementations reproduce the seed outputs **bit-for-bit**
  (the batch code consumes the random stream in exactly the seed order);
* ``repro.perf.hotpaths`` can measure the speedup the vectorization buys,
  emitted to ``BENCH_hotpaths.json``.

Nothing here is used by the production edit loop.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.neighbors import BruteKNN, TableNeighborSpace
from repro.neighbors.brute import SELF_DISTANCE_TOL
from repro.rules.predicate import Predicate
from repro.sampling.interpolation import interpolate_numeric, majority_categorical
from repro.sampling.rule_generation import (
    NumericWindow,
    pick_categorical,
    sample_in_window,
)


def seed_topk_from_dists(
    D: np.ndarray, k: int, *, exclude_self: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Seed top-k selection: per-row Python loop for ``exclude_self``."""
    n_q, n_x = D.shape
    budget = k + 1 if exclude_self else k
    k_eff = min(budget, n_x)
    if k_eff == 0:
        return np.zeros((n_q, 0)), np.zeros((n_q, 0), dtype=np.intp)
    part = np.argpartition(D, k_eff - 1, axis=1)[:, :k_eff]
    part_d = np.take_along_axis(D, part, axis=1)
    order = np.argsort(part_d, axis=1, kind="stable")
    idx = np.take_along_axis(part, order, axis=1)
    dist = np.take_along_axis(part_d, order, axis=1)
    if exclude_self:
        keep_idx = np.empty((n_q, min(k, max(k_eff - 1, 0))), dtype=np.intp)
        keep_dist = np.empty_like(keep_idx, dtype=np.float64)
        for r in range(n_q):
            row_idx, row_dist = idx[r], dist[r]
            if row_dist.size and row_dist[0] < SELF_DISTANCE_TOL:
                row_idx, row_dist = row_idx[1:], row_dist[1:]
            else:
                row_idx, row_dist = row_idx[: k_eff - 1], row_dist[: k_eff - 1]
            keep_idx[r, : row_idx.size] = row_idx[: keep_idx.shape[1]]
            keep_dist[r, : row_dist.size] = row_dist[: keep_idx.shape[1]]
        return keep_dist, keep_idx
    return dist[:, :k], idx[:, :k]


def seed_majority_batch(codes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Seed SMOTE-NC categorical aggregation: one bincount per sample."""
    n = codes.shape[0]
    vals = np.empty(n, dtype=np.int64)
    for s in range(n):
        vals[s] = majority_categorical(codes[s], rng)
    return vals


def seed_sample_in_window_batch(
    window: NumericWindow,
    base_v: np.ndarray,
    nbr_v: np.ndarray,
    attr_range: tuple[float, float],
    rng: np.random.Generator,
) -> np.ndarray:
    """Seed constrained numeric generation: one scalar draw per sample."""
    n = base_v.shape[0]
    vals = np.empty(n)
    for s in range(n):
        vals[s] = sample_in_window(
            window, float(base_v[s]), float(nbr_v[s]), attr_range, rng
        )
    return vals


def seed_pick_categorical_batch(
    codes: np.ndarray,
    conditions: tuple[Predicate, ...],
    categories: tuple[str, ...],
    rng: np.random.Generator,
) -> np.ndarray:
    """Seed constrained categorical generation: one sorted scan per sample."""
    n = codes.shape[0]
    vals = np.empty(n, dtype=np.int64)
    for s in range(n):
        vals[s] = pick_categorical(codes[s], conditions, categories, rng)
    return vals


def seed_smote_generate(
    table: Table,
    n_samples: int,
    *,
    k: int,
    rng: np.random.Generator,
    base_indices: np.ndarray | None = None,
) -> Table:
    """The seed ``SMOTE.generate``: per-sample loop over categorical columns.

    Neighbour search and numeric interpolation were already matrix ops in
    the seed; only the SMOTE-NC majority step looped per sample.
    """
    if table.n_rows < 2:
        raise ValueError("need at least 2 rows to interpolate")
    if base_indices is None:
        base_indices = np.arange(table.n_rows)
    base_indices = np.asarray(base_indices, dtype=np.intp)

    space = TableNeighborSpace().fit(table)
    E = space.encode(table)
    knn = BruteKNN(space.metric_).fit(E)
    k_eff = min(k, table.n_rows - 1)
    _, nbr_idx = knn.kneighbors(E[base_indices], k_eff, exclude_self=True)

    chosen_base = rng.integers(0, base_indices.size, size=n_samples)
    chosen_nbr_col = rng.integers(0, k_eff, size=n_samples)

    schema = table.schema
    columns: dict[str, np.ndarray] = {}
    b_rows = base_indices[chosen_base]
    j_rows = nbr_idx[chosen_base, chosen_nbr_col]
    omegas = rng.uniform(0.0, 1.0, size=n_samples)
    for spec in schema:
        col = table.column(spec.name)
        if spec.is_numeric:
            columns[spec.name] = interpolate_numeric(col[b_rows], col[j_rows], omegas)
        else:
            vals = np.empty(n_samples, dtype=np.int64)
            for s in range(n_samples):
                codes = col[nbr_idx[chosen_base[s]]]
                vals[s] = majority_categorical(codes, rng)
            columns[spec.name] = vals
    return Table(schema, columns, copy=False)


def seed_borderline_weights(
    cats: np.ndarray, weights: dict[str, float]
) -> np.ndarray:
    """Seed borderline weight mapping: per-row dict lookup."""
    return np.array([weights[c] for c in cats], dtype=np.float64)
