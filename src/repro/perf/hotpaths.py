"""Seed-vs-current micro-benchmarks of the edit loop's hot paths.

Each benchmark times one hot path twice on identical inputs and identical
RNG seeds: the *seed* side runs the original row-at-a-time implementation
preserved in :mod:`repro.perf.seed_reference`; the *current* side runs the
vectorized implementation now used in production.  Because the two sides
are bit-for-bit output-compatible (pinned by ``tests/perf``), the speedup
is a pure measure of the vectorization.  The one exception is
``kneighbors_topk``, whose current side runs the opt-in float32 coded
kernel: equivalent under the documented tie/precision contract of
:mod:`repro.neighbors.kernels`, not bitwise.

Covered paths, per dataset (a generated mixed-type table and the adult
registry dataset):

* ``kneighbors_topk`` — HEOM distances + top-k with self-exclusion:
  dense float64 pairwise + row-wise selection (seed) versus the blocked
  coded kernel (:mod:`repro.neighbors.kernels`, current);
* ``smote_majority`` — SMOTE-NC categorical aggregation;
* ``window_sampling`` — rule-constrained numeric generation;
* ``constrained_categorical`` — rule-constrained categorical generation;
* ``borderline_weights`` — Han-2005 category→weight mapping;
* ``selection_membership`` — IP-selection chosen-row membership;
* ``smote_generate`` — the full SMOTE candidate-generation path.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table, make_schema
from repro.neighbors import BruteKNN, TableNeighborSpace, kneighbors_blocked
from repro.perf import seed_reference as seed_ref
from repro.perf.harness import CompareRecord, compare
from repro.rules.predicate import Predicate
from repro.sampling import SMOTE
from repro.sampling.borderline import (
    BORDERLINE,
    DEFAULT_WEIGHTS,
    NOISY,
    SAFE,
    category_weights,
)
from repro.sampling.interpolation import majority_categorical_batch
from repro.sampling.rule_generation import (
    pick_categorical_batch,
    sample_in_window_batch,
    window_from_conditions,
)

K_NEIGHBORS = 5

#: Every hot-path benchmark name, in emission order — the vocabulary for
#: ``run_hotpath_benchmarks(only=...)`` and ``repro-bench --only``.
HOTPATH_NAMES = (
    "kneighbors_topk",
    "smote_majority",
    "window_sampling",
    "constrained_categorical",
    "borderline_weights",
    "selection_membership",
    "smote_generate",
)


def synthetic_mixed_table(n: int, seed: int) -> Table:
    """A mixed-type table shaped like the test-suite fixture, at scale."""
    schema = make_schema(
        numeric=["age", "income"],
        categorical={
            "marital": ("single", "married", "divorced"),
            "color": ("red", "green", "blue"),
        },
    )
    rng = np.random.default_rng(seed)
    return Table(
        schema,
        {
            "age": rng.uniform(18, 80, n),
            "income": rng.uniform(10, 200, n),
            "marital": rng.integers(0, 3, n),
            "color": rng.integers(0, 3, n),
        },
    )


def _bench_table(dataset: str, n: int, seed: int) -> Table:
    if dataset == "synthetic":
        return synthetic_mixed_table(n, seed)
    from repro.datasets import load_dataset

    return load_dataset(dataset, n, random_state=seed).X


def _table_benchmarks(
    dataset: str,
    table: Table,
    *,
    seed: int,
    repeats: int,
    only: set[str] | None = None,
) -> list[CompareRecord]:
    """Hot-path comparisons over one table, optionally filtered by name."""

    def want(name: str) -> bool:
        return only is None or name in only

    records: list[CompareRecord] = []
    n = table.n_rows
    space = TableNeighborSpace().fit(table)
    E = space.encode(table)
    n_q = min(n, 2500)  # bound the dense distance matrix

    # --- neighbour search: distances + top-k with self-exclusion ------- #
    if want("kneighbors_topk"):
        # Seed side: the original whole-matrix path — dense float64 HEOM
        # pairwise, then row-at-a-time top-k.  Current side: the blocked
        # coded kernel (float32 sgemm tiles + streaming k-best).  Layouts
        # are built outside the timer: production caches them per
        # dataset_version, so the steady-state cost is the scan itself.
        base_coded = space.encode_coded(encoded=E)
        query_coded = base_coded.slice(0, n_q)

        def seed_knn():
            D = space.metric_.pairwise(E[:n_q], E)
            return seed_ref.seed_topk_from_dists(D, K_NEIGHBORS, exclude_self=True)

        records.append(
            compare(
                "kneighbors_topk", dataset, n,
                seed_knn,
                lambda: kneighbors_blocked(
                    query_coded, base_coded, K_NEIGHBORS, exclude_self=True
                ),
                repeats=repeats,
                extra={
                    "n_queries": n_q,
                    "k": K_NEIGHBORS,
                    "backend": "numpy",
                    "seed_side": "dense float64 pairwise + row-wise top-k",
                    "current_side": "blocked coded kernel, layouts prebuilt",
                },
            )
        )

    # Shared neighbour matrix for the generation benchmarks.
    generation = {"smote_majority", "window_sampling", "constrained_categorical"}
    if only is None or generation & only:
        knn = BruteKNN(space.metric_).fit(E)
        _, nbr_idx = knn.kneighbors(E[:n_q], K_NEIGHBORS, exclude_self=True)

        cat_name = table.schema.categorical_names[0]
        cat_spec = table.schema[cat_name]
        codes = table.column(cat_name)[nbr_idx]

        # --- SMOTE-NC categorical aggregation -------------------------- #
        if want("smote_majority"):
            records.append(
                compare(
                    "smote_majority", dataset, n,
                    lambda: seed_ref.seed_majority_batch(
                        codes, np.random.default_rng(seed)
                    ),
                    lambda: majority_categorical_batch(
                        codes, len(cat_spec.categories), np.random.default_rng(seed)
                    ),
                    repeats=repeats,
                    extra={"n_samples": n_q, "column": cat_name},
                )
            )

        # --- rule-constrained numeric windows -------------------------- #
        if want("window_sampling") and table.schema.numeric_names:
            num_name = table.schema.numeric_names[0]
            col = table.column(num_name)
            lo, hi = float(np.quantile(col, 0.25)), float(np.quantile(col, 0.75))
            window = window_from_conditions(
                (Predicate(num_name, ">=", lo), Predicate(num_name, "<", hi))
            )
            attr_range = (float(col.min()), float(col.max()))
            base_v = col[:n_q]
            nbr_v = col[nbr_idx[:, 0]]
            records.append(
                compare(
                    "window_sampling", dataset, n,
                    lambda: seed_ref.seed_sample_in_window_batch(
                        window, base_v, nbr_v, attr_range, np.random.default_rng(seed)
                    ),
                    lambda: sample_in_window_batch(
                        window, base_v, nbr_v, attr_range, np.random.default_rng(seed)
                    ),
                    repeats=repeats,
                    extra={"n_samples": n_q, "column": num_name},
                )
            )

        # --- rule-constrained categorical picks ------------------------ #
        if want("constrained_categorical"):
            conds = (Predicate(cat_name, "!=", cat_spec.categories[0]),)
            records.append(
                compare(
                    "constrained_categorical", dataset, n,
                    lambda: seed_ref.seed_pick_categorical_batch(
                        codes, conds, cat_spec.categories, np.random.default_rng(seed)
                    ),
                    lambda: pick_categorical_batch(
                        codes, conds, cat_spec.categories, np.random.default_rng(seed)
                    ),
                    repeats=repeats,
                    extra={"n_samples": n_q, "column": cat_name},
                )
            )

    # --- borderline category -> weight mapping ------------------------- #
    if want("borderline_weights"):
        rng = np.random.default_rng(seed)
        cats = np.array(
            [(NOISY, SAFE, BORDERLINE)[i] for i in rng.integers(0, 3, size=n)],
            dtype=object,
        )
        records.append(
            compare(
                "borderline_weights", dataset, n,
                lambda: seed_ref.seed_borderline_weights(cats, DEFAULT_WEIGHTS),
                lambda: category_weights(cats, DEFAULT_WEIGHTS),
                repeats=repeats,
            )
        )

    # --- IP-selection chosen-row membership ---------------------------- #
    if want("selection_membership"):
        rng = np.random.default_rng(seed + 1)
        pops = [
            np.sort(rng.choice(n, size=max(n // 5, 1), replace=False))
            for _ in range(5)
        ]
        chosen_rows = rng.choice(n, size=max(n // 10, 1), replace=False)

        def seed_membership() -> list[np.ndarray]:
            chosen_set = set(chosen_rows.tolist())
            out = []
            for pop in pops:
                mask = np.fromiter(
                    (int(v) in chosen_set for v in pop), dtype=bool, count=pop.size
                )
                out.append(np.flatnonzero(mask).astype(np.intp))
            return out

        def current_membership() -> list[np.ndarray]:
            return [
                np.flatnonzero(np.isin(pop, chosen_rows)).astype(np.intp)
                for pop in pops
            ]

        records.append(
            compare(
                "selection_membership", dataset, n,
                seed_membership, current_membership, repeats=repeats,
                extra={"n_rules": len(pops)},
            )
        )

    # --- full SMOTE candidate generation ------------------------------- #
    if want("smote_generate"):
        n_samples = min(n, 2000)
        records.append(
            compare(
                "smote_generate", dataset, n,
                lambda: seed_ref.seed_smote_generate(
                    table, n_samples, k=K_NEIGHBORS, rng=np.random.default_rng(seed)
                ),
                lambda: SMOTE(K_NEIGHBORS, distance_backend="numpy").generate(
                    table, n_samples, rng=np.random.default_rng(seed)
                ),
                repeats=repeats,
                extra={"n_samples": n_samples, "backend": "numpy"},
            )
        )
    return records


def run_hotpath_benchmarks(
    *,
    quick: bool = False,
    seed: int = 0,
    datasets: tuple[str, ...] | None = None,
    only: list[str] | None = None,
) -> list[CompareRecord]:
    """Run every hot-path comparison and return the records.

    Parameters
    ----------
    quick : bool, default False
        Smaller tables and fewer repeats — the CI per-PR configuration.
    seed : int, default 0
        Base seed for table generation and all benchmark RNGs.
    datasets : tuple of str, optional
        Override the benchmarked datasets (default: ``synthetic`` and
        ``adult``).
    only : list of str, optional
        Benchmark names to run (default: all of :data:`HOTPATH_NAMES`).
        Unknown names raise ``ValueError`` so a typo fails loudly instead
        of silently benchmarking nothing.  Shared setup (encoding, the
        neighbour index) is only built for the selected benchmarks, so
        iterating on one kernel stays fast.
    """
    selected: set[str] | None = None
    if only is not None:
        unknown = [name for name in only if name not in HOTPATH_NAMES]
        if unknown:
            raise ValueError(
                f"unknown hot-path benchmark(s) {unknown}; known: {list(HOTPATH_NAMES)}"
            )
        selected = set(only)
    n = 2500 if quick else 6000
    repeats = 3 if quick else 5
    names = datasets if datasets is not None else ("synthetic", "adult")
    records: list[CompareRecord] = []
    for dataset in names:
        table = _bench_table(dataset, n, seed)
        records.extend(
            _table_benchmarks(
                dataset, table, seed=seed, repeats=repeats, only=selected
            )
        )
    return records
