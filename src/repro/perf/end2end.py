"""End-to-end wall-clock benchmarks of full FROTE edit runs.

Unlike :mod:`repro.perf.hotpaths` (seed-vs-current kernels), these runs
time the production pipeline as a user drives it — dataset in,
``repro.edit(...)`` session out — so the numbers capture everything the
edit loop does per iteration: preselection, selection, generation,
retraining, and acceptance scoring.  Results land in
``BENCH_end2end.json``; tracked over PRs they are the project's
performance trajectory.
"""

from __future__ import annotations

import time

import numpy as np

import repro
from repro.data.dataset import Dataset
from repro.perf.harness import End2EndRecord
from repro.perf.hotpaths import synthetic_mixed_table


def _synthetic_dataset(n: int, seed: int) -> Dataset:
    """Binary dataset over the synthetic mixed table with planted structure."""
    table = synthetic_mixed_table(n, seed)
    age = table.column("age")
    income = table.column("income")
    rng = np.random.default_rng(seed + 1)
    y = ((age < 40) & (income > 100)).astype(np.int64)
    noise = rng.uniform(size=table.n_rows) < 0.05
    y[noise] = 1 - y[noise]
    return Dataset(table, y, ("deny", "approve"))


def _run_synthetic(*, n: int, tau: int, seed: int) -> End2EndRecord:
    """Time one session-API edit on the synthetic mixed dataset."""
    dataset = _synthetic_dataset(n, seed)
    t0 = time.perf_counter()
    result = (
        repro.edit(dataset)
        .with_rules(
            "age < 35 => approve",
            "income < 40 AND marital = 'single' => deny",
        )
        .with_algorithm("LR")
        .configure(tau=tau, q=0.5, random_state=seed)
        .run()
    )
    seconds = time.perf_counter() - t0
    return End2EndRecord(
        name="session_edit",
        dataset="synthetic",
        n_rows=dataset.n,
        tau=tau,
        seconds=seconds,
        iterations=result.iterations,
        accepted_iterations=result.accepted_iterations,
        n_added=result.n_added,
        seconds_per_iteration=seconds / max(result.iterations, 1),
        extra={"selection": "random", "model": "LR"},
    )


def _run_paper_pipeline(
    *, dataset_name: str, n: int, tau: int, seed: int
) -> End2EndRecord:
    """Time the paper's full protocol: context build, FRS draw, FROTE run.

    This exercises the same machinery as the table/figure experiment
    drivers (rule learning, feedback-pool perturbation, conflict-free FRS
    draw, coverage-aware split) before timing the edit itself, so the
    record reflects a realistic experiment workload.
    """
    from repro.experiments.setup import build_context, prepare_run

    ctx = build_context(dataset_name, "LR", n=n, random_state=seed)
    rng = np.random.default_rng(seed)
    run = prepare_run(ctx, frs_size=2, tcf=0.7, rng=rng)
    if run is None:  # pragma: no cover - pool draw can fail for tiny n
        raise RuntimeError(f"no conflict-free FRS drawable for {dataset_name}")
    t0 = time.perf_counter()
    result = (
        repro.edit(run.train)
        .with_rules(run.frs)
        .with_algorithm(ctx.algorithm)
        .configure(tau=tau, q=0.5, selection="random", random_state=seed)
        .run()
    )
    seconds = time.perf_counter() - t0
    return End2EndRecord(
        name="paper_pipeline_edit",
        dataset=dataset_name,
        n_rows=run.train.n,
        tau=tau,
        seconds=seconds,
        iterations=result.iterations,
        accepted_iterations=result.accepted_iterations,
        n_added=result.n_added,
        seconds_per_iteration=seconds / max(result.iterations, 1),
        extra={"selection": "random", "model": "LR", "frs_size": 2},
    )


def run_end2end_benchmarks(
    *, quick: bool = False, seed: int = 42
) -> list[End2EndRecord]:
    """Run the end-to-end benchmarks and return the records.

    Parameters
    ----------
    quick : bool, default False
        Smaller datasets and fewer loop iterations — the CI per-PR
        configuration (a few seconds total).
    seed : int, default 42
        Seed for dataset generation, FRS draws, and the edit loops.
    """
    if quick:
        n_syn, n_real, tau = 1200, 400, 6
    else:
        n_syn, n_real, tau = 5000, 1200, 20
    return [
        _run_synthetic(n=n_syn, tau=tau, seed=seed),
        _run_paper_pipeline(dataset_name="car", n=n_real, tau=tau, seed=seed),
    ]
