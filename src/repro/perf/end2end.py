"""End-to-end wall-clock benchmarks of full FROTE edit runs.

Unlike :mod:`repro.perf.hotpaths` (seed-vs-current kernels), these runs
time the production pipeline as a user drives it — dataset in,
``repro.edit(...)`` session out — so the numbers capture everything the
edit loop does per iteration: preselection, selection, generation,
retraining, and acceptance scoring.  Results land in
``BENCH_end2end.json``; tracked over PRs they are the project's
performance trajectory.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import numpy as np

import repro
from repro.data.dataset import Dataset
from repro.perf.harness import End2EndRecord
from repro.perf.hotpaths import synthetic_mixed_table

#: Environment override for the out-of-core scenario's fixed RSS slack
#: (MiB added to ``budget * 1.5`` to form the assertion bound), for
#: unusually noisy runners — the memory analogue of
#: ``BENCH_REGRESSION_THRESHOLD``.
RSS_TOLERANCE_ENV_VAR = "BENCH_RSS_TOLERANCE_MB"

#: Every end-to-end scenario name, in emission order — the vocabulary for
#: ``run_end2end_benchmarks(only=...)`` and ``repro-bench --only``.
END2END_NAMES = (
    "session_edit",
    "paper_pipeline_edit",
    "incremental_vs_rebuild",
    "out_of_core",
    "serving",
)


def _synthetic_dataset(n: int, seed: int) -> Dataset:
    """Binary dataset over the synthetic mixed table with planted structure."""
    table = synthetic_mixed_table(n, seed)
    age = table.column("age")
    income = table.column("income")
    rng = np.random.default_rng(seed + 1)
    y = ((age < 40) & (income > 100)).astype(np.int64)
    noise = rng.uniform(size=table.n_rows) < 0.05
    y[noise] = 1 - y[noise]
    return Dataset(table, y, ("deny", "approve"))


def _run_synthetic(*, n: int, tau: int, seed: int) -> End2EndRecord:
    """Time one session-API edit on the synthetic mixed dataset."""
    dataset = _synthetic_dataset(n, seed)
    t0 = time.perf_counter()
    result = (
        repro.edit(dataset)
        .with_rules(
            "age < 35 => approve",
            "income < 40 AND marital = 'single' => deny",
        )
        .with_algorithm("LR")
        .configure(tau=tau, q=0.5, random_state=seed)
        .run()
    )
    seconds = time.perf_counter() - t0
    return End2EndRecord(
        name="session_edit",
        dataset="synthetic",
        n_rows=dataset.n,
        tau=tau,
        seconds=seconds,
        iterations=result.iterations,
        accepted_iterations=result.accepted_iterations,
        n_added=result.n_added,
        seconds_per_iteration=seconds / max(result.iterations, 1),
        extra={"selection": "random", "model": "LR"},
    )


def _run_paper_pipeline(
    *, dataset_name: str, n: int, tau: int, seed: int
) -> End2EndRecord:
    """Time the paper's full protocol: context build, FRS draw, FROTE run.

    This exercises the same machinery as the table/figure experiment
    drivers (rule learning, feedback-pool perturbation, conflict-free FRS
    draw, coverage-aware split) before timing the edit itself, so the
    record reflects a realistic experiment workload.
    """
    from repro.experiments.setup import build_context, prepare_run

    ctx = build_context(dataset_name, "LR", n=n, random_state=seed)
    rng = np.random.default_rng(seed)
    run = prepare_run(ctx, frs_size=2, tcf=0.7, rng=rng)
    if run is None:  # pragma: no cover - pool draw can fail for tiny n
        raise RuntimeError(f"no conflict-free FRS drawable for {dataset_name}")
    t0 = time.perf_counter()
    result = (
        repro.edit(run.train)
        .with_rules(run.frs)
        .with_algorithm(ctx.algorithm)
        .configure(tau=tau, q=0.5, selection="random", random_state=seed)
        .run()
    )
    seconds = time.perf_counter() - t0
    return End2EndRecord(
        name="paper_pipeline_edit",
        dataset=dataset_name,
        n_rows=run.train.n,
        tau=tau,
        seconds=seconds,
        iterations=result.iterations,
        accepted_iterations=result.accepted_iterations,
        n_added=result.n_added,
        seconds_per_iteration=seconds / max(result.iterations, 1),
        extra={"selection": "random", "model": "LR", "frs_size": 2},
    )


def _run_incremental_vs_rebuild(
    *, n: int, batch_size: int, steps: int, seed: int
) -> End2EndRecord:
    """Matched dataset-maintenance workloads: delta path vs rebuild path.

    Both sides apply the same ``steps`` accepted batches of
    ``batch_size`` synthetic rows to a base dataset of ``n`` rows, and
    after every batch hold an up-to-date (dataset, trained KNN model,
    FRS row assignment) triple — the per-iteration state maintenance of
    the edit loop.  The *rebuild* side pays full-dataset cost each time
    (``Dataset.concat``, from-scratch ``fit``, full ``frs.assign``); the
    *incremental* side drives the delta APIs end to end
    (:class:`~repro.data.builder.DatasetBuilder` append, ``BallTree``
    index append via ``partial_update``, and the
    :class:`~repro.engine.state.EditState` delta journal merging the
    cached assignment) at O(batch) per step.  The model's prediction
    pass on the grown dataset is excluded: it costs the same in both
    modes, so including it would only dilute the number the scenario
    exists to track.  ``extra["speedup"]`` is the headline
    rebuild/incremental ratio; parity of the two paths' *outputs* is
    pinned by the test suite, not re-checked here.
    """
    from repro.core.config import FroteConfig
    from repro.data.builder import DatasetBuilder
    from repro.engine.state import EditState
    from repro.models import KNeighborsClassifier, make_algorithm
    from repro.rules.parser import parse_rule
    from repro.rules.ruleset import FeedbackRuleSet

    base = _synthetic_dataset(n, seed)
    pool = _synthetic_dataset(batch_size * steps, seed + 1)
    deltas = [
        pool.row_slice(i * batch_size, (i + 1) * batch_size) for i in range(steps)
    ]
    frs = FeedbackRuleSet(
        tuple(
            parse_rule(text, base.X.schema, base.label_names)
            for text in (
                "age < 35 => approve",
                "income < 40 AND marital = 'single' => deny",
            )
        )
    )
    algorithm = make_algorithm(lambda: KNeighborsClassifier(k=5), standardize=False)

    # Rebuild path: full-dataset cost per batch.
    t0 = time.perf_counter()
    active = base
    model = algorithm(active)
    frs.assign(active.X)
    for delta in deltas:
        active = Dataset.concat([active, delta])
        model = algorithm(active)
        frs.assign(active.X)
    rebuild_seconds = time.perf_counter() - t0

    # Incremental path: the same end state via the delta APIs.
    t0 = time.perf_counter()
    state = EditState(
        input_dataset=base,
        frs=frs,
        algorithm=algorithm,
        config=FroteConfig(incremental=True, mod_strategy="none"),
        rng=np.random.default_rng(seed),
    )
    state.record_rebuild("bench-setup")
    state.active_builder = DatasetBuilder.from_dataset(base)
    state.active = state.active_builder.snapshot()
    state.model = algorithm(state.active)
    state.active_assignment()
    for delta in deltas:
        state.active = state.active_builder.append(delta.X, delta.y)
        state.model.partial_update(delta)
        state.record_append(delta.n, "bench-batch")
        state.active_assignment()
    incremental_seconds = time.perf_counter() - t0

    return End2EndRecord(
        name="incremental_vs_rebuild",
        dataset="synthetic",
        n_rows=base.n + batch_size * steps,
        tau=steps,
        seconds=incremental_seconds,
        iterations=steps,
        accepted_iterations=steps,
        n_added=batch_size * steps,
        seconds_per_iteration=incremental_seconds / max(steps, 1),
        extra={
            "rebuild_seconds": rebuild_seconds,
            "speedup": rebuild_seconds / max(incremental_seconds, 1e-12),
            "batch_size": batch_size,
            "base_rows": base.n,
            "model": "KNN(ball_tree)",
            "work": "per accepted batch: extend dataset + refit model + FRS assignment",
        },
    )


def _run_out_of_core(
    *, budget_mb: float, batch_rows: int, shard_rows: int, seed: int
) -> End2EndRecord:
    """Beyond-RAM streaming workload with peak-RSS accounting.

    Runs :mod:`repro.perf.oocbench` in a **fresh subprocess**: peak RSS
    is a process-lifetime high-water mark, so measuring it in the bench
    process (which has already held the other scenarios' arrays) would
    be meaningless.  The worker streams batches through the sharded
    builder until the active dataset's dense size is ~4× the
    ``max_resident_mb`` budget, exercising appends (accept and reject
    paths), partial model refits, incremental FRS-assignment merges,
    and snapshot slice/gather reads on spilled data.

    ``extra["within_budget"]`` is the CI memory guard's verdict:
    workload RSS (peak minus the worker's post-import baseline) must
    stay under ``budget * 1.5`` plus a fixed tolerance
    (:data:`RSS_TOLERANCE_ENV_VAR` overrides the tolerance).  A
    regression that silently re-densifies the storage holds the full
    dataset on heap and fails the bound by construction.
    """
    tolerance_mb = float(os.environ.get(RSS_TOLERANCE_ENV_VAR, 48.0))
    cmd = [
        sys.executable, "-m", "repro.perf.oocbench",
        "--budget-mb", str(budget_mb),
        "--batch-rows", str(batch_rows),
        "--shard-rows", str(shard_rows),
        "--tolerance-mb", str(tolerance_mb),
        "--seed", str(seed),
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    proc = subprocess.run(
        cmd, capture_output=True, text=True, env=env, timeout=1800
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"oocbench worker failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    worker = json.loads(proc.stdout)
    return End2EndRecord(
        name="out_of_core",
        dataset="synthetic",
        n_rows=worker["rows"],
        tau=worker["steps"],
        seconds=worker["seconds"],
        iterations=worker["steps"],
        accepted_iterations=worker["steps"],
        n_added=worker["rows"] - batch_rows,
        seconds_per_iteration=worker["seconds"] / max(worker["steps"], 1),
        extra={
            key: worker[key]
            for key in (
                "dense_mb", "budget_mb", "tolerance_mb", "baseline_rss_mb",
                "peak_rss_mb", "workload_rss_mb", "rss_limit_mb",
                "within_budget", "n_shards", "n_spilled_shards",
                "spilled_mb", "resident_mb", "batch_rows", "shard_rows",
                "epilogue_seconds",
            )
        },
    )


def run_end2end_benchmarks(
    *, quick: bool = False, seed: int = 42, only: list[str] | None = None
) -> list[End2EndRecord]:
    """Run the end-to-end benchmarks and return the records.

    Parameters
    ----------
    quick : bool, default False
        Smaller datasets and fewer loop iterations — the CI per-PR
        configuration (a few seconds total).
    seed : int, default 42
        Seed for dataset generation, FRS draws, and the edit loops.
    only : list of str, optional
        Scenario names to run (default: all).  Unknown names raise
        ``ValueError`` so a typo in CI fails loudly instead of silently
        benchmarking nothing.
    """
    from repro.perf.servebench import run_serving_bench

    if quick:
        n_syn, n_real, tau = 1200, 400, 6
        n_ivr, batch_ivr, steps_ivr = 6000, 60, 6
        ooc_budget, ooc_batch = 24.0, 16384
    else:
        n_syn, n_real, tau = 5000, 1200, 20
        n_ivr, batch_ivr, steps_ivr = 30000, 150, 10
        ooc_budget, ooc_batch = 48.0, 16384
    scenarios = {
        "session_edit": lambda: _run_synthetic(n=n_syn, tau=tau, seed=seed),
        "paper_pipeline_edit": lambda: _run_paper_pipeline(
            dataset_name="car", n=n_real, tau=tau, seed=seed
        ),
        "incremental_vs_rebuild": lambda: _run_incremental_vs_rebuild(
            n=n_ivr, batch_size=batch_ivr, steps=steps_ivr, seed=seed
        ),
        "out_of_core": lambda: _run_out_of_core(
            budget_mb=ooc_budget, batch_rows=ooc_batch, shard_rows=16384,
            seed=seed,
        ),
        "serving": lambda: run_serving_bench(quick=quick, seed=seed),
    }
    if only is not None:
        unknown = [name for name in only if name not in scenarios]
        if unknown:
            raise ValueError(
                f"unknown end2end scenario(s) {unknown}; "
                f"known: {sorted(scenarios)}"
            )
        selected = [name for name in scenarios if name in set(only)]
    else:
        selected = list(scenarios)
    return [scenarios[name]() for name in selected]
