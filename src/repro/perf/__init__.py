"""Performance measurement subsystem: hot-path and end-to-end benchmarks.

Systems claims need first-class measurement infrastructure; this package
is the library's.  It has three parts:

* :mod:`repro.perf.seed_reference` — the original row-at-a-time hot-path
  implementations, preserved verbatim for parity tests and speedup
  measurement;
* :mod:`repro.perf.hotpaths` / :mod:`repro.perf.end2end` — the benchmark
  definitions;
* :mod:`repro.perf.harness` — timing plus the versioned ``BENCH_*.json``
  schema and writers;
* :mod:`repro.perf.regression` / :mod:`repro.perf.ratchet` — the CI
  guards: geomean wall-time comparison against the checked-in baseline,
  the out-of-core peak-RSS budget check, and the baseline-refresh
  ratchet proposal;
* :mod:`repro.perf.oocbench` — the beyond-RAM streaming workload behind
  the ``out_of_core`` scenario (run as a subprocess for clean peak-RSS
  accounting).

Run everything with ``repro-bench`` (or
``python -m repro.experiments.cli bench``); add ``--quick`` for the
CI-sized configuration.  ``benchmarks/perf/`` wraps the same entry points
as pytest benchmarks.
"""

from repro.perf.harness import (
    END2END_FILENAME,
    HOTPATHS_FILENAME,
    SCHEMA_VERSION,
    CompareRecord,
    End2EndRecord,
    format_records,
    validate_bench_payload,
    write_end2end_json,
    write_hotpaths_json,
)
from repro.perf.ratchet import RatchetReport, propose_ratchet, write_proposal
from repro.perf.regression import (
    MemoryReport,
    RegressionEntry,
    RegressionReport,
    compare_end2end,
    load_payload,
    memory_report,
    regression_threshold,
)

__all__ = [
    "SCHEMA_VERSION",
    "HOTPATHS_FILENAME",
    "END2END_FILENAME",
    "CompareRecord",
    "End2EndRecord",
    "MemoryReport",
    "RatchetReport",
    "RegressionEntry",
    "RegressionReport",
    "compare_end2end",
    "load_payload",
    "memory_report",
    "propose_ratchet",
    "regression_threshold",
    "write_proposal",
    "format_records",
    "validate_bench_payload",
    "write_hotpaths_json",
    "write_end2end_json",
    "run_hotpath_benchmarks",
    "run_end2end_benchmarks",
    "HOTPATH_NAMES",
    "END2END_NAMES",
]


def __getattr__(name):
    # Benchmark-name vocabularies, without importing the (heavier)
    # benchmark modules at package-import time.
    if name == "HOTPATH_NAMES":
        from repro.perf.hotpaths import HOTPATH_NAMES

        return HOTPATH_NAMES
    if name == "END2END_NAMES":
        from repro.perf.end2end import END2END_NAMES

        return END2END_NAMES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def run_hotpath_benchmarks(**kwargs):
    """Lazy forward to :func:`repro.perf.hotpaths.run_hotpath_benchmarks`."""
    from repro.perf.hotpaths import run_hotpath_benchmarks as _run

    return _run(**kwargs)


def run_end2end_benchmarks(**kwargs):
    """Lazy forward to :func:`repro.perf.end2end.run_end2end_benchmarks`."""
    from repro.perf.end2end import run_end2end_benchmarks as _run

    return _run(**kwargs)
