"""Serving benchmark: N concurrent edit sessions through ``repro.serve``.

Measures what the serving layer is *for* — multi-tenant throughput and
tail latency: submit ``n_sessions`` independent edit sessions with
mixed priorities to one :class:`~repro.serve.service.EditService`
under a shared resident-byte budget, drive them all concurrently, and
report sessions/sec plus p50/p99 engine-step latency.  The pool's
high-water mark (``peak_reserved_mb``) doubles as the CI guard that
the shared budget was never exceeded.
"""

from __future__ import annotations

import asyncio
import time

import repro
from repro.perf.harness import End2EndRecord


def _session_spec(n: int, tau: int, seed: int):
    """One tenant's edit session over its own synthetic dataset."""
    from repro.perf.end2end import _synthetic_dataset

    dataset = _synthetic_dataset(n, seed)
    return (
        repro.edit(dataset)
        .with_rules(
            "age < 35 => approve",
            "income < 40 AND marital = 'single' => deny",
        )
        .with_algorithm("LR")
        .configure(tau=tau, q=0.5, random_state=seed)
    )


async def _serve_fleet(
    *,
    n_sessions: int,
    n: int | tuple[int, ...],
    tau: int,
    seed: int,
    pool_mb: float,
    session_mb: float,
    policy: str,
    journal_dir: str | None = None,
) -> dict:
    """Submit and drive the fleet; return outcomes plus service stats.

    ``n`` may be a tuple of per-tenant dataset sizes (cycled over the
    fleet) — the journal bench uses a mixed fleet so small sessions
    exercise the accepted-batch path while large ones dominate the
    timing.
    """
    from repro.serve import EditService

    sizes = (n,) * n_sessions if isinstance(n, int) else n
    service = EditService(
        policy=policy,
        memory_budget_mb=pool_mb,
        default_session_mb=session_mb,
        journal_dir=journal_dir,
    )
    handles = [
        service.submit(
            _session_spec(sizes[i % len(sizes)], tau, seed + i),
            name=f"tenant-{i}",
            priority=1.0 + (i % 3),  # mixed priorities: 1, 2, 3
        )
        for i in range(n_sessions)
    ]
    results = await asyncio.gather(*(h.run_to_completion() for h in handles))
    stats = service.stats()
    stats["results"] = results
    stats["reserved_after_mb"] = service.pool.reserved_mb
    stats["max_concurrent"] = service.scheduler.max_concurrent
    await service.close()  # settles nothing (all done); closes the journal
    stats["journal_errors"] = service.journal_errors
    stats["journal_io_seconds"] = service.journal_io_seconds
    return stats


def run_serving_bench(*, quick: bool = False, seed: int = 42) -> End2EndRecord:
    """Benchmark concurrent serving and return its ``serving`` record.

    Parameters
    ----------
    quick : bool, default False
        CI scale: 8 sessions on small datasets.  Full scale runs 12
        sessions on larger ones.
    seed : int, default 42
        Base seed; session *i* uses ``seed + i``.

    Returns
    -------
    End2EndRecord
        ``extra`` carries the serving metrics: ``sessions_per_sec``,
        ``p50_step_ms`` / ``p99_step_ms``, ``n_sessions``, ``pool_mb``,
        ``peak_reserved_mb``, and ``within_budget`` (the shared-budget
        guard read by ``bench-check``'s memory report).
    """
    if quick:
        n_sessions, n, tau = 8, 400, 5
    else:
        n_sessions, n, tau = 12, 900, 8
    pool_mb = 16.0 * n_sessions
    session_mb = 16.0
    policy = "weighted-priority"

    t0 = time.perf_counter()
    stats = asyncio.run(
        _serve_fleet(
            n_sessions=n_sessions,
            n=n,
            tau=tau,
            seed=seed,
            pool_mb=pool_mb,
            session_mb=session_mb,
            policy=policy,
        )
    )
    seconds = time.perf_counter() - t0
    results = stats.pop("results")
    iterations = sum(r.iterations for r in results)
    within_budget = (
        stats["peak_reserved_mb"] <= pool_mb + 1e-9
        and stats["reserved_after_mb"] <= 1e-9
        and stats["n_completed"] == n_sessions
    )
    return End2EndRecord(
        name="serving",
        dataset="synthetic",
        n_rows=n_sessions * n,
        tau=tau,
        seconds=seconds,
        iterations=iterations,
        accepted_iterations=sum(r.accepted_iterations for r in results),
        n_added=sum(r.n_added for r in results),
        seconds_per_iteration=seconds / max(iterations, 1),
        extra={
            "n_sessions": n_sessions,
            "sessions_per_sec": n_sessions / max(seconds, 1e-12),
            "p50_step_ms": stats["p50_step_ms"],
            "p99_step_ms": stats["p99_step_ms"],
            "steps_total": stats["steps_total"],
            "pool_mb": pool_mb,
            "session_mb": session_mb,
            "peak_reserved_mb": stats["peak_reserved_mb"],
            "within_budget": within_budget,
            "policy": policy,
            "max_concurrent": stats["max_concurrent"],
            "model": "LR",
        },
    )
