"""CI regression guard: compare ``BENCH_end2end.json`` against a baseline.

The repository checks in a baseline end-to-end payload
(``benchmarks/baselines/BENCH_end2end.baseline.json``); the CI perf job
re-runs ``repro-bench --quick`` and calls :func:`compare_end2end` on the
fresh payload.  Records are matched by ``(name, dataset)`` and scored by
their wall-time ratio; the job fails when the **geometric mean** of the
ratios exceeds ``1 + threshold`` (default: a 30% regression) or when a
baseline scenario disappeared (silent coverage loss).

Wall-clock comparisons across machines are inherently noisy — the
geomean over all scenarios plus a generous threshold absorbs most of it,
and ``BENCH_REGRESSION_THRESHOLD`` overrides the threshold for unusually
slow runners without a code change.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.perf.harness import geomean, validate_bench_payload

__all__ = [
    "DEFAULT_THRESHOLD",
    "THRESHOLD_ENV_VAR",
    "MemoryReport",
    "RegressionEntry",
    "RegressionReport",
    "compare_end2end",
    "format_entry_table",
    "load_payload",
    "memory_report",
    "regression_threshold",
]

#: Fail when the geomean wall-time ratio exceeds 1 + this.
DEFAULT_THRESHOLD = 0.30

#: Environment override for the threshold (a float, e.g. ``0.5``).
THRESHOLD_ENV_VAR = "BENCH_REGRESSION_THRESHOLD"


def regression_threshold(default: float = DEFAULT_THRESHOLD) -> float:
    """The active threshold: :data:`THRESHOLD_ENV_VAR` or ``default``."""
    raw = os.environ.get(THRESHOLD_ENV_VAR)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"{THRESHOLD_ENV_VAR}={raw!r} is not a float"
        ) from exc
    if value < 0:
        raise ValueError(f"{THRESHOLD_ENV_VAR} must be >= 0, got {value}")
    return value


@dataclass(frozen=True)
class RegressionEntry:
    """One (name, dataset) scenario present in both payloads."""

    name: str
    dataset: str
    baseline_seconds: float
    current_seconds: float

    @property
    def ratio(self) -> float:
        """Current / baseline wall time (> 1 means slower)."""
        return self.current_seconds / max(self.baseline_seconds, 1e-12)


def format_entry_table(entries: tuple["RegressionEntry", ...]) -> list[str]:
    """Fixed-width scenario/baseline/current/ratio rows, shared by the
    regression and ratchet reports so the two outputs cannot drift."""
    header = f"{'scenario':34s}{'baseline (s)':>14s}{'current (s)':>13s}{'ratio':>8s}"
    lines = [header, "-" * len(header)]
    for e in entries:
        lines.append(
            f"{e.name + '/' + e.dataset:34s}"
            f"{e.baseline_seconds:14.4f}{e.current_seconds:13.4f}"
            f"{e.ratio:8.2f}"
        )
    return lines


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of one baseline comparison."""

    entries: tuple[RegressionEntry, ...]
    missing: tuple[str, ...]  # scenarios in the baseline but not current
    added: tuple[str, ...]  # scenarios in current but not the baseline
    threshold: float
    extra_failures: tuple[str, ...] = field(default=())

    @property
    def geomean_ratio(self) -> float:
        return geomean([e.ratio for e in self.entries])

    @property
    def failures(self) -> tuple[str, ...]:
        out = list(self.extra_failures)
        if self.missing:
            out.append(
                "baseline scenarios missing from the current payload: "
                + ", ".join(self.missing)
            )
        if self.entries and self.geomean_ratio > 1.0 + self.threshold:
            out.append(
                f"geomean wall-time ratio {self.geomean_ratio:.3f} exceeds "
                f"the {1.0 + self.threshold:.2f} regression bound"
            )
        return tuple(out)

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        """Human-readable comparison table plus the verdict."""
        lines = ["Perf regression check (BENCH_end2end vs baseline)"]
        lines.extend(format_entry_table(self.entries))
        if self.entries:
            lines.append(
                f"geomean ratio: {self.geomean_ratio:.3f} "
                f"(bound: {1.0 + self.threshold:.2f})"
            )
        for name in self.added:
            lines.append(f"new scenario (no baseline yet): {name}")
        if self.ok:
            lines.append("OK: no perf regression")
        else:
            for failure in self.failures:
                lines.append(f"FAIL: {failure}")
        return "\n".join(lines)


@dataclass(frozen=True)
class MemoryReport:
    """Outcome of the out-of-core peak-RSS budget check (``bench-mem``).

    One entry per ``out_of_core`` record in the payload; the check fails
    when any record exceeded its in-worker RSS bound (``budget * 1.5 +
    tolerance``) — or when the scenario is missing entirely, which would
    silently disable the guard.
    """

    entries: tuple[dict[str, Any], ...]

    @property
    def failures(self) -> tuple[str, ...]:
        out = []
        if not self.entries:
            out.append(
                "no out_of_core scenario in the payload — the memory "
                "guard has nothing to check (re-run `bench --quick`)"
            )
        for rec in self.entries:
            extra = rec["extra"]
            if not extra.get("within_budget"):
                out.append(
                    f"out_of_core/{rec['dataset']}: workload RSS "
                    f"{extra['workload_rss_mb']:.1f} MiB exceeds the "
                    f"{extra['rss_limit_mb']:.1f} MiB bound "
                    f"(budget {extra['budget_mb']:.0f} MiB * 1.5 + "
                    f"{extra['tolerance_mb']:.0f} MiB tolerance)"
                )
        return tuple(out)

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        """Human-readable peak-RSS table plus the verdict."""
        lines = ["Memory-budget check (out_of_core peak RSS vs budget)"]
        header = (
            f"{'scenario':24s}{'dense (MB)':>11s}{'budget':>8s}"
            f"{'workload RSS':>14s}{'bound':>8s}{'spilled':>9s}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for rec in self.entries:
            extra = rec["extra"]
            lines.append(
                f"{'out_of_core/' + rec['dataset']:24s}"
                f"{extra['dense_mb']:11.1f}{extra['budget_mb']:8.1f}"
                f"{extra['workload_rss_mb']:14.1f}{extra['rss_limit_mb']:8.1f}"
                f"{extra['spilled_mb']:8.1f}M"
            )
        if self.ok:
            lines.append("OK: peak RSS within the memory budget")
        else:
            for failure in self.failures:
                lines.append(f"FAIL: {failure}")
        return "\n".join(lines)


def memory_report(payload: dict[str, Any]) -> MemoryReport:
    """Check a ``BENCH_end2end.json`` payload's out-of-core RSS verdicts."""
    return MemoryReport(
        entries=tuple(
            r for r in payload["results"] if r["name"] == "out_of_core"
        )
    )


def load_payload(path: str | Path) -> dict[str, Any]:
    """Read and schema-validate a ``BENCH_*.json`` payload."""
    with open(path) as fh:
        payload = json.load(fh)
    validate_bench_payload(payload)
    return payload


def _keyed(payload: dict[str, Any]) -> dict[str, dict[str, Any]]:
    return {f"{r['name']}/{r['dataset']}": r for r in payload["results"]}


def _scale_label(payload: dict[str, Any]) -> str:
    """Human name of a payload's bench scale (the ``quick`` flag)."""
    return "quick" if payload.get("quick") else "full"


def compare_end2end(
    current: dict[str, Any],
    baseline: dict[str, Any],
    *,
    threshold: float | None = None,
) -> RegressionReport:
    """Compare two validated end-to-end payloads; see the module docstring.

    Parameters
    ----------
    current, baseline:
        Payloads of ``kind == "end2end"`` (as loaded by
        :func:`load_payload`).
    threshold:
        Maximum tolerated geomean regression; ``None`` uses
        :func:`regression_threshold` (env override, else 30%).

    Returns
    -------
    RegressionReport
        ``report.ok`` is the pass/fail verdict; ``report.format()`` the
        printable summary.
    """
    if threshold is None:
        threshold = regression_threshold()
    extra_failures: list[str] = []
    for label, payload in (("current", current), ("baseline", baseline)):
        if payload.get("kind") != "end2end":
            extra_failures.append(f"{label} payload kind is not 'end2end'")
    cur, base = _keyed(current), _keyed(baseline)
    if current.get("quick") != baseline.get("quick"):
        cur_scale = _scale_label(current)
        base_scale = _scale_label(baseline)
        shared = ", ".join(sorted(k for k in base if k in cur)) or "(none)"
        extra_failures.append(
            f"scale mismatch: the current payload is {cur_scale}-scale but "
            f"the baseline is {base_scale}-scale, so no scenario "
            f"({shared}) has comparable wall times — re-run `bench "
            f"--quick` for a {base_scale}-scale payload, or refresh the "
            "baseline"
        )
    entries = []
    # Every mismatched scenario is reported, not just the first: after a
    # bench retune the whole list of stale scenarios must be visible at
    # once, or fixing them becomes a fail/refresh/fail loop.
    for key in base:
        if key not in cur:
            continue
        b, c = base[key], cur[key]
        # Same-named scenarios at different workload sizes (bench sizes
        # retuned without refreshing the baseline) would produce a
        # meaningless ratio — surface that instead of a bogus verdict.
        if (b["n_rows"], b["tau"]) != (c["n_rows"], c["tau"]):
            fields = ", ".join(
                f"{field}: baseline {b[field]} vs current {c[field]}"
                for field in ("n_rows", "tau")
                if b[field] != c[field]
            )
            extra_failures.append(
                f"workload mismatch for scenario {key}: {fields} — "
                "refresh the baseline"
            )
            continue
        entries.append(
            RegressionEntry(
                name=b["name"],
                dataset=b["dataset"],
                baseline_seconds=float(b["seconds"]),
                current_seconds=float(c["seconds"]),
            )
        )
    entries = tuple(entries)
    for entry in entries:
        if not math.isfinite(entry.ratio):
            extra_failures.append(f"non-finite ratio for {entry.name}/{entry.dataset}")
    return RegressionReport(
        entries=entries,
        missing=tuple(sorted(k for k in base if k not in cur)),
        added=tuple(sorted(k for k in cur if k not in base)),
        threshold=threshold,
        extra_failures=tuple(extra_failures),
    )
