"""Out-of-core streaming workload with peak-RSS accounting.

The beyond-RAM benchmark behind the ``out_of_core`` scenario of
``BENCH_end2end.json`` and the CI memory-budget guard.  It streams
batches of a wide synthetic dataset through the edit loop's per-batch
maintenance work — sharded :class:`~repro.data.builder.DatasetBuilder`
appends (including rejected stages), the delta journal, incremental FRS
assignment merges, GaussianNB partial refits, and slice/gather snapshot
reads — until the active dataset's dense size reaches a configured
multiple (default 4×) of the ``max_resident_mb`` budget, then reports
the process peak RSS against the ``budget * 1.5 + tolerance`` bound
derived below.

Because ``ru_maxrss`` is a process-lifetime high-water mark, the
measurement is only meaningful in a process that has not already held
large arrays; :func:`repro.perf.end2end` therefore runs this module as a
**subprocess** (``python -m repro.perf.oocbench``) and parses the JSON
it prints.  The guard bound is::

    workload_rss_mb = peak_rss_mb - baseline_rss_mb
    rss_limit_mb    = budget_mb * 1.5 + tolerance_mb   # LRU + resident floor
    within_budget   = workload_rss_mb <= rss_limit_mb

The 1.5 factor covers the documented residents outside the sealed-shard
LRU budget: labels and the FRS assignment cache (one machine word per
row each), the writable tail shards, and the in-flight batch.  A dense
run of the same workload holds the full dataset on heap and blows the
bound by construction — which is exactly the regression the CI assertion
exists to catch.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time

import numpy as np

from repro.data.table import Table, make_schema

__all__ = ["run_streaming_workload", "main"]

_MB = 1024 * 1024

#: Wide mixed schema: 16 numeric + 8 categorical columns = 192 bytes/row,
#: so the per-row resident floor (labels + assignment cache, 16 bytes) is
#: a small fraction of the dense row and the budget bound is meaningful.
N_NUMERIC = 16
N_CATEGORICAL = 8
BYTES_PER_ROW = (N_NUMERIC + N_CATEGORICAL) * 8
CATEGORIES = ("a", "b", "c", "d")


def _current_rss_mb() -> float:
    """Current resident set size in MiB."""
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * os.sysconf("SC_PAGE_SIZE") / _MB
    except (OSError, ValueError):  # pragma: no cover - non-linux fallback
        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return peak / _MB if sys.platform == "darwin" else peak / 1024.0


class _PeakTracker:
    """Peak-RSS tracking that survives the ``ru_maxrss`` inheritance trap.

    On Linux ``ru_maxrss`` (and ``VmHWM``) are inherited across
    fork/exec, so a worker spawned by a process that already held large
    arrays starts with the parent's high-water mark and measures
    nothing.  Construction therefore resets the kernel's ``VmHWM`` via
    ``/proc/self/clear_refs`` and reads it back from
    ``/proc/self/status``; where that interface is unavailable the
    tracker falls back to the maximum of explicit :meth:`sample` calls
    (the workload samples after every mutation/read op, which catches
    the op-boundary spikes that matter here).
    """

    def __init__(self) -> None:
        self.hwm_reset = False
        try:
            with open("/proc/self/clear_refs", "w") as fh:
                fh.write("5\n")
            self.hwm_reset = self._vm_hwm_mb() is not None
        except OSError:  # pragma: no cover - non-linux fallback
            pass
        self.baseline_mb = _current_rss_mb()
        self._sampled_mb = self.baseline_mb

    @staticmethod
    def _vm_hwm_mb() -> float | None:
        try:
            with open("/proc/self/status") as fh:
                for line in fh:
                    if line.startswith("VmHWM:"):
                        return int(line.split()[1]) / 1024.0
        except (OSError, ValueError):  # pragma: no cover
            pass
        return None

    def sample(self) -> None:
        self._sampled_mb = max(self._sampled_mb, _current_rss_mb())

    def peak_mb(self) -> float:
        self.sample()
        if self.hwm_reset:
            hwm = self._vm_hwm_mb()
            if hwm is not None:
                return max(hwm, self._sampled_mb)
        return self._sampled_mb


def _schema():
    return make_schema(
        numeric=[f"n{i:02d}" for i in range(N_NUMERIC)],
        categorical={f"c{i}": CATEGORIES for i in range(N_CATEGORICAL)},
    )


def _batch(schema, n: int, rng: np.random.Generator) -> tuple[Table, np.ndarray]:
    """One synthetic batch (features + labels) over the wide schema."""
    cols: dict[str, np.ndarray] = {}
    for i in range(N_NUMERIC):
        cols[f"n{i:02d}"] = rng.uniform(size=n)
    for i in range(N_CATEGORICAL):
        cols[f"c{i}"] = rng.integers(0, len(CATEGORIES), size=n)
    y = (cols["n00"] + cols["n01"] > 1.0).astype(np.int64)
    noise = rng.uniform(size=n) < 0.05
    y[noise] = 1 - y[noise]
    return Table(schema, cols, copy=False), y


def run_streaming_workload(
    *,
    budget_mb: float,
    dense_factor: float = 4.0,
    batch_rows: int = 16384,
    shard_rows: int | None = 16384,
    tolerance_mb: float = 48.0,
    seed: int = 42,
) -> dict:
    """Stream the workload and return the measurement record (a JSON dict).

    Parameters
    ----------
    budget_mb:
        ``FroteConfig(max_resident_mb=...)`` for the run.
    dense_factor:
        Target dense size of the active dataset as a multiple of the
        budget (the ISSUE scenario: ~4×, i.e. a 25% resident budget).
    batch_rows:
        Rows per streamed batch.
    shard_rows:
        Shard width handed to the config (``None`` = library default).
    tolerance_mb:
        Fixed slack added to the RSS bound (interpreter noise, allocator
        fragmentation, transiently mapped pages).
    seed:
        RNG seed for batch generation.
    """
    from repro.core.config import FroteConfig
    from repro.data.dataset import Dataset
    from repro.engine.state import EditState
    from repro.models import GaussianNB, make_algorithm
    from repro.rules.parser import parse_rule
    from repro.rules.ruleset import FeedbackRuleSet

    schema = _schema()
    label_names = ("neg", "pos")
    target_rows = int(budget_mb * dense_factor * _MB / BYTES_PER_ROW)
    steps = max(1, (target_rows - batch_rows) // batch_rows)
    rng = np.random.default_rng(seed)

    frs = FeedbackRuleSet(
        tuple(
            parse_rule(text, schema, label_names)
            for text in (
                "n00 < 0.25 => pos",
                "n01 > 0.75 AND c0 = 'a' => neg",
            )
        )
    )
    algorithm = make_algorithm(GaussianNB, standardize=False)
    config = FroteConfig(
        incremental=True,
        mod_strategy="none",
        max_resident_mb=budget_mb,
        shard_rows=shard_rows,
    )

    def drive(
        base: Dataset,
        steps: int,
        rng: np.random.Generator,
        tracker: _PeakTracker | None = None,
    ):
        """The maintenance loop: append, partial refit, merge, read back."""
        state = EditState(
            input_dataset=base,
            frs=frs,
            algorithm=algorithm,
            config=config,
            rng=rng,
        )
        state.record_rebuild("oocbench-setup")
        builder = state.active_builder = state.make_builder(base)
        state.active = builder.snapshot()
        state.model = algorithm(state.active)
        state.active_assignment()
        window = (shard_rows or 16384) * 2
        n_batch = base.n
        for step in range(steps):
            table, y = _batch(schema, n_batch, rng)
            if step % 4 == 3:
                # Rejected candidate: staged rows are simply overwritten
                # by the next stage — the edit loop's reject path.
                builder.stage(table, y)
            start = builder.n_rows
            state.active = builder.append(table, y)
            # Partial refit + assignment merge touch only the appended
            # slice; the full prediction/assignment passes run once as the
            # epilogue below (they are shard-chunked, so per-step repeats
            # would only multiply identical O(block) work).
            delta = state.active.row_slice(start, state.active.n)
            state.model.partial_update(delta)
            state.record_append(table.n_rows, "oocbench-batch")
            assign = state.active_assignment()
            # Snapshot reads: a trailing window slice (recent shards)
            # and a small gather across the full range (cold shards).
            lo = max(0, state.active.n - window)
            state.active.X.row_slice(lo, state.active.n)
            probe = rng.integers(0, state.active.n, size=64)
            state.active.X.take(probe)
            if tracker is not None:
                tracker.sample()
            # Keep transiently mapped cold pages out of the RSS peak.
            builder.advise_cold()
            assert assign.shape[0] == state.active.n
        return state, builder

    # Warm-up at toy scale so import weight, allocator arenas, and lazily
    # initialized NumPy machinery land in the *baseline*, leaving the
    # measured delta to the streaming workload itself.
    warm_table, warm_y = _batch(schema, 256, np.random.default_rng(seed + 1))
    drive(Dataset(warm_table, warm_y, label_names), steps=3,
          rng=np.random.default_rng(seed + 1))

    base_table, base_y = _batch(schema, batch_rows, rng)
    base = Dataset(base_table, base_y, label_names)
    tracker = _PeakTracker()
    baseline_rss_mb = tracker.baseline_mb
    t0 = time.perf_counter()
    state, builder = drive(base, steps, rng, tracker)
    seconds = time.perf_counter() - t0
    # Full-pass epilogue over the final sharded snapshot: whole-table
    # prediction (chunked encoder transform + per-block predict_proba) and
    # a from-scratch FRS assignment.  These passes used to densify via the
    # ``column()`` escape hatch; they now stream shard-aligned row blocks,
    # so they run *inside* the measured RSS bound.
    t1 = time.perf_counter()
    preds = state.model.predict(state.active.X)
    tracker.sample()
    full_assign = state.frs.assign(state.active.X)
    tracker.sample()
    epilogue_seconds = time.perf_counter() - t1
    assert preds.shape[0] == state.active.n
    assert full_assign.shape[0] == state.active.n
    builder.advise_cold()
    peak_rss_mb = tracker.peak_mb()
    workload_rss_mb = max(0.0, peak_rss_mb - baseline_rss_mb)
    rss_limit_mb = budget_mb * 1.5 + tolerance_mb
    stats = builder.storage_stats()
    rows = state.active.n
    return {
        "scenario": "out_of_core",
        "rows": int(rows),
        "steps": int(steps),
        "batch_rows": int(batch_rows),
        "shard_rows": int(shard_rows or 0),
        "dense_mb": round(rows * BYTES_PER_ROW / _MB, 2),
        "budget_mb": float(budget_mb),
        "tolerance_mb": float(tolerance_mb),
        "baseline_rss_mb": round(baseline_rss_mb, 2),
        "peak_rss_mb": round(peak_rss_mb, 2),
        "workload_rss_mb": round(workload_rss_mb, 2),
        "rss_limit_mb": round(rss_limit_mb, 2),
        "within_budget": bool(workload_rss_mb <= rss_limit_mb),
        "n_shards": int(stats["n_shards"]),
        "n_spilled_shards": int(stats["n_spilled"]),
        "spilled_mb": round(stats["spilled_bytes"] / _MB, 2),
        "resident_mb": round(stats["heap_bytes"] / _MB, 2),
        "seconds": seconds,
        "epilogue_seconds": round(epilogue_seconds, 4),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.oocbench",
        description="Out-of-core streaming workload; prints a JSON record "
        "with peak-RSS accounting (run in a fresh process).",
    )
    parser.add_argument("--budget-mb", type=float, default=24.0)
    parser.add_argument("--dense-factor", type=float, default=4.0)
    parser.add_argument("--batch-rows", type=int, default=16384)
    parser.add_argument("--shard-rows", type=int, default=16384)
    parser.add_argument("--tolerance-mb", type=float, default=48.0)
    parser.add_argument("--seed", type=int, default=42)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    record = run_streaming_workload(
        budget_mb=args.budget_mb,
        dense_factor=args.dense_factor,
        batch_rows=args.batch_rows,
        shard_rows=args.shard_rows,
        tolerance_mb=args.tolerance_mb,
        seed=args.seed,
    )
    print(json.dumps(record))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
