"""Journal-overhead benchmark: what durability costs the serving path.

Runs the serving fleet twice — without journals, then with
``EditService(journal_dir=...)`` (per-session fsync-per-iteration
journals plus the flushed service telemetry journal) — and reports what
journaling costs.  Three guards ride along:

* the journaled fleet's results are bit-identical to the plain one
  (journaling is observation, never perturbation);
* every written journal scans clean and each session journal replays to
  its session's live history;
* journal I/O (write + flush + fsync wall time, accumulated inside
  :class:`~repro.journal.writer.JournalWriter`) stays under
  ``BENCH_JOURNAL_OVERHEAD_PCT`` percent (default 5%) of serving time.

The gate is the *measured I/O time*, not the wall-clock delta between
the two modes: at bench scale the model-fit variance between two fleet
runs (±10% on a shared CI box) dwarfs the few milliseconds of fsync per
iteration, so a delta-based gate would be hopelessly flaky.  The
wall-clock delta is still reported (``wall_delta_pct``) as context.
Both modes run ``repeats`` times and the fastest wall time of each is
kept; the I/O ratio is taken from the journaled run with the *highest*
ratio, so the gate sees the worst observed fsync behaviour.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from pathlib import Path

from repro.perf.harness import End2EndRecord

#: Environment override for the overhead gate (percent of serving time
#: spent in journal write/flush/fsync calls).
OVERHEAD_ENV = "BENCH_JOURNAL_OVERHEAD_PCT"
DEFAULT_OVERHEAD_PCT = 5.0


def overhead_threshold_pct() -> float:
    return float(os.environ.get(OVERHEAD_ENV, DEFAULT_OVERHEAD_PCT))


def _fleet_seconds(
    *,
    n_sessions: int,
    n: int | tuple[int, ...],
    tau: int,
    seed: int,
    journal_dir: str | None,
) -> tuple[float, dict]:
    from repro.perf.servebench import _serve_fleet

    t0 = time.perf_counter()
    stats = asyncio.run(
        _serve_fleet(
            n_sessions=n_sessions,
            n=n,
            tau=tau,
            seed=seed,
            pool_mb=16.0 * n_sessions,
            session_mb=16.0,
            policy="weighted-priority",
            journal_dir=journal_dir,
        )
    )
    return time.perf_counter() - t0, stats


def _check_journals(journal_dir: Path, results: list) -> dict:
    """Scan every journal; assert validity and per-session replay parity."""
    from repro.journal import JournalReader, SessionReplay
    from repro.journal.status import discover_journals

    journals = discover_journals(journal_dir)
    records = 0
    sessions = 0
    for journal in journals:
        scan = JournalReader(journal).scan()
        if scan.truncation is not None:
            raise AssertionError(
                f"journal {journal} is truncated: {scan.truncation.reason} "
                f"({scan.truncation.detail})"
            )
        records += len(scan.records)
        if journal.name.startswith("tenant-"):
            index = int(journal.name.removeprefix("tenant-"))
            replay = SessionReplay.load(journal)
            if replay.history() != results[index].history:
                raise AssertionError(
                    f"journal {journal} replays a different history than "
                    "its live session"
                )
            sessions += 1
    return {
        "n_journals": len(journals),
        "n_session_journals": sessions,
        "journal_records": records,
    }


def run_journal_bench(
    *,
    quick: bool = False,
    seed: int = 42,
    journal_dir: str | None = None,
    repeats: int = 2,
) -> End2EndRecord:
    """Benchmark journaled vs plain serving; returns the record.

    Parameters
    ----------
    quick : bool, default False
        CI scale (4 sessions); full runs 6 larger ones.
    seed : int, default 42
        Base seed; both modes use identical session specs.
    journal_dir : str, optional
        Keep the journals here (the CI job uploads them as an
        artifact).  Default: a temporary directory, discarded.
    repeats : int, default 2
        Repetitions per mode; fastest wall time of each is reported,
        worst observed I/O ratio is gated.

    Returns
    -------
    End2EndRecord
        ``extra`` carries ``plain_seconds`` / ``journaled_seconds`` /
        ``wall_delta_pct`` (context), ``journal_io_seconds`` and
        ``overhead_pct`` (the gated I/O share), the ``threshold_pct``
        gate and its ``within_overhead`` verdict, and journal validity
        counts.
    """
    # Iterations must be expensive enough to amortize the ~ms-scale fsync
    # at each durability boundary — tiny fleets would measure the disk,
    # not the serving path (realistic edit iterations are fit-dominated).
    # One small tenant rides along so the fleet also journals accepted
    # batches (acceptance is rare on the large synthetic datasets).
    if quick:
        n_sessions, n, tau = 4, (1000, 12000, 12000, 12000), 3
    else:
        n_sessions, n, tau = 6, (1000, 16000, 16000, 16000, 16000, 16000), 4

    owned = journal_dir is None
    tmp = tempfile.TemporaryDirectory(prefix="journalbench-") if owned else None
    root = Path(tmp.name if owned else journal_dir)

    t0 = time.perf_counter()
    plain_s = []
    journaled_s = []
    io_ratios = []
    io_seconds = 0.0
    stats_plain = stats_journaled = None
    journal_info: dict = {}
    try:
        for rep in range(max(1, repeats)):
            seconds, stats_plain = _fleet_seconds(
                n_sessions=n_sessions, n=n, tau=tau, seed=seed, journal_dir=None
            )
            plain_s.append(seconds)
            rep_dir = root / f"rep-{rep}"
            seconds, stats_journaled = _fleet_seconds(
                n_sessions=n_sessions, n=n, tau=tau, seed=seed,
                journal_dir=str(rep_dir),
            )
            journaled_s.append(seconds)
            io_seconds = stats_journaled["journal_io_seconds"]
            io_ratios.append(io_seconds / seconds)
            journal_info = _check_journals(rep_dir, stats_journaled["results"])

        # Parity: journaling must not perturb a single iteration.
        for plain, journaled in zip(
            stats_plain["results"], stats_journaled["results"]
        ):
            if plain.history != journaled.history:
                raise AssertionError(
                    "journaled serving diverged from plain serving"
                )
    finally:
        if tmp is not None:
            tmp.cleanup()

    best_plain = min(plain_s)
    best_journaled = min(journaled_s)
    overhead_pct = 100.0 * max(io_ratios)
    threshold = overhead_threshold_pct()
    results = stats_journaled["results"]
    iterations = sum(r.iterations for r in results)
    sizes = (n,) * n_sessions if isinstance(n, int) else n
    return End2EndRecord(
        name="journaled_serving",
        dataset="synthetic",
        n_rows=sum(sizes[i % len(sizes)] for i in range(n_sessions)),
        tau=tau,
        seconds=best_journaled,
        iterations=iterations,
        accepted_iterations=sum(r.accepted_iterations for r in results),
        n_added=sum(r.n_added for r in results),
        seconds_per_iteration=best_journaled / max(iterations, 1),
        extra={
            "n_sessions": n_sessions,
            "repeats": max(1, repeats),
            "plain_seconds": best_plain,
            "journaled_seconds": best_journaled,
            "wall_delta_pct": 100.0 * (best_journaled - best_plain) / best_plain,
            "journal_io_seconds": io_seconds,
            "overhead_pct": overhead_pct,
            "threshold_pct": threshold,
            "within_overhead": overhead_pct <= threshold,
            "parity": True,  # _check_journals/history asserts raised otherwise
            "journal_errors": stats_journaled["journal_errors"],
            "wall_seconds": time.perf_counter() - t0,
            **journal_info,
        },
    )
