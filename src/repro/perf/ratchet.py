"""Baseline ratcheting: propose a refreshed perf baseline when the suite
gets consistently faster.

The regression guard (:mod:`repro.perf.regression`) compares fresh
``BENCH_end2end.json`` payloads against a checked-in baseline and fails
past a geomean slowdown bound — but the baseline itself is static, so
after a run of optimization PRs the bound quietly becomes loose: a
change could give back every win of the last N PRs before the guard
noticed.  Ratcheting closes that gap from the other side.

:func:`propose_ratchet` compares the same two payloads and, when the
current run is *consistently* faster — geomean wall-time ratio at or
below ``1 - improvement`` (default 15%) **and** no individual scenario
slower than the baseline **and** the payloads actually comparable (same
scale, same workloads, no missing scenarios) — recommends adopting the
current payload as the new baseline.  The ``bench-ratchet`` CLI writes
that proposal to a file the CI job uploads as a workflow artifact
together with a summary table; a human lands it as a normal PR, so the
ratchet never tightens the guard without review.

The per-scenario "no scenario slower" condition is what makes the
ratchet safe: a single regressed scenario hidden under a large win
elsewhere must not be frozen into the new baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.perf.regression import (
    RegressionEntry,
    compare_end2end,
    format_entry_table,
)

__all__ = [
    "DEFAULT_IMPROVEMENT",
    "RatchetReport",
    "propose_ratchet",
    "write_proposal",
]

#: Propose a refresh when the geomean is at least this much faster.
DEFAULT_IMPROVEMENT = 0.15


@dataclass(frozen=True)
class RatchetReport:
    """Outcome of one ratchet evaluation."""

    entries: tuple[RegressionEntry, ...]
    geomean_ratio: float
    improvement: float
    blockers: tuple[str, ...]

    @property
    def should_ratchet(self) -> bool:
        """Whether the current payload qualifies as the new baseline."""
        return not self.blockers

    def format(self) -> str:
        """Plain-text summary table plus the verdict."""
        lines = ["Baseline ratchet check (BENCH_end2end vs baseline)"]
        lines.extend(format_entry_table(self.entries))
        lines.append(
            f"geomean ratio: {self.geomean_ratio:.3f} "
            f"(ratchet at <= {1.0 - self.improvement:.2f})"
        )
        if self.should_ratchet:
            lines.append(
                f"RATCHET: suite is consistently >= {self.improvement:.0%} "
                "faster; proposing the current payload as the new baseline"
            )
        else:
            for blocker in self.blockers:
                lines.append(f"no ratchet: {blocker}")
        return "\n".join(lines)

    def markdown(self) -> str:
        """GitHub-flavoured summary for ``$GITHUB_STEP_SUMMARY``."""
        lines = ["### Perf baseline ratchet", ""]
        lines.append("| scenario | baseline (s) | current (s) | ratio |")
        lines.append("|---|---:|---:|---:|")
        for e in self.entries:
            lines.append(
                f"| {e.name}/{e.dataset} | {e.baseline_seconds:.4f} "
                f"| {e.current_seconds:.4f} | {e.ratio:.2f} |"
            )
        lines.append("")
        lines.append(
            f"geomean ratio **{self.geomean_ratio:.3f}** "
            f"(ratchet at ≤ {1.0 - self.improvement:.2f})"
        )
        lines.append("")
        if self.should_ratchet:
            lines.append(
                f"**Ratchet proposed** — the suite is consistently ≥ "
                f"{self.improvement:.0%} faster than the checked-in "
                "baseline.  Download the `bench-ratchet` artifact and land "
                "the refreshed baseline as a PR."
            )
        else:
            lines.extend(f"- no ratchet: {b}" for b in self.blockers)
        return "\n".join(lines)


def propose_ratchet(
    current: dict[str, Any],
    baseline: dict[str, Any],
    *,
    improvement: float = DEFAULT_IMPROVEMENT,
) -> RatchetReport:
    """Evaluate whether ``current`` should replace ``baseline``.

    Parameters
    ----------
    current, baseline:
        Validated ``kind == "end2end"`` payloads (see
        :func:`repro.perf.regression.load_payload`).
    improvement:
        Required geomean speedup fraction, in ``(0, 1)``.

    Returns
    -------
    RatchetReport
        ``report.should_ratchet`` is the verdict; blockers explain a
        negative one.
    """
    if not 0.0 < improvement < 1.0:
        raise ValueError(f"improvement must be in (0, 1), got {improvement}")
    comparison = compare_end2end(current, baseline, threshold=float("inf"))
    blockers: list[str] = []
    # Incomparable payloads (scale/workload/kind mismatches, missing
    # scenarios) can never justify a refresh.
    blockers.extend(comparison.extra_failures)
    if comparison.missing:
        blockers.append(
            "baseline scenarios missing from the current payload: "
            + ", ".join(comparison.missing)
        )
    geomean = comparison.geomean_ratio if comparison.entries else 1.0
    if not comparison.entries:
        blockers.append("no comparable scenarios")
    elif geomean > 1.0 - improvement:
        blockers.append(
            f"geomean ratio {geomean:.3f} is not <= {1.0 - improvement:.2f} "
            f"(requires a consistent >= {improvement:.0%} speedup)"
        )
    slower = [e for e in comparison.entries if e.ratio > 1.0]
    if slower:
        blockers.append(
            "scenario(s) slower than the baseline: "
            + ", ".join(
                f"{e.name}/{e.dataset} ({e.ratio:.2f}x)" for e in slower
            )
        )
    return RatchetReport(
        entries=comparison.entries,
        geomean_ratio=geomean,
        improvement=improvement,
        blockers=tuple(blockers),
    )


def write_proposal(
    current: dict[str, Any], out_dir: str | Path
) -> Path:
    """Write the current payload as the proposed refreshed baseline."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / "BENCH_end2end.baseline.proposed.json"
    path.write_text(json.dumps(current, indent=2) + "\n")
    return path
