"""Timing and ``BENCH_*.json`` emission for the performance harness.

The perf subsystem produces two artifacts at the repository root (or any
directory passed to the writers):

* ``BENCH_hotpaths.json`` — seed-vs-current micro-benchmarks of the edit
  loop's hot paths (neighbour search, SMOTE-family candidate generation,
  selection scoring), where *seed* means the original row-at-a-time
  implementations kept in :mod:`repro.perf.seed_reference`;
* ``BENCH_end2end.json`` — wall-clock timings of full FROTE edit runs.

Both files share a small, versioned schema (:data:`SCHEMA_VERSION`);
:func:`validate_bench_payload` is the single source of truth for it and is
used by the test suite and CI to keep emitted artifacts machine-readable.
"""

from __future__ import annotations

import json
import math
import platform
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable

SCHEMA_VERSION = 1

HOTPATHS_FILENAME = "BENCH_hotpaths.json"
END2END_FILENAME = "BENCH_end2end.json"


@dataclass(frozen=True)
class CompareRecord:
    """One seed-vs-current hot-path measurement."""

    name: str
    dataset: str
    n_rows: int
    repeats: int
    seed_seconds: float
    current_seconds: float
    speedup: float
    extra: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class End2EndRecord:
    """One full-run measurement of the edit loop."""

    name: str
    dataset: str
    n_rows: int
    tau: int
    seconds: float
    iterations: int
    accepted_iterations: int
    n_added: int
    seconds_per_iteration: float
    extra: dict[str, Any] = field(default_factory=dict)


def best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Return the minimum wall time of ``repeats`` calls to ``fn``.

    The minimum is the standard micro-benchmark estimator: it is the run
    least perturbed by scheduler noise, and both sides of a comparison are
    measured the same way.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def compare(
    name: str,
    dataset: str,
    n_rows: int,
    seed_fn: Callable[[], Any],
    current_fn: Callable[[], Any],
    *,
    repeats: int = 3,
    extra: dict[str, Any] | None = None,
) -> CompareRecord:
    """Time the seed and current implementations of one hot path.

    Both callables are invoked once untimed (warm-up: caches, allocator),
    then ``repeats`` timed rounds each; the best round wins.
    """
    seed_fn()
    current_fn()
    seed_s = best_of(seed_fn, repeats)
    cur_s = best_of(current_fn, repeats)
    # Floor the denominator: a 0.0s reading (coarse perf_counter) must not
    # produce an Infinity token, which is not valid JSON.
    return CompareRecord(
        name=name,
        dataset=dataset,
        n_rows=n_rows,
        repeats=repeats,
        seed_seconds=seed_s,
        current_seconds=cur_s,
        speedup=seed_s / max(cur_s, 1e-12),
        extra=extra or {},
    )


def geomean(values: list[float]) -> float:
    """Geometric mean; 0.0 for an empty list."""
    if not values:
        return 0.0
    return float(math.exp(sum(math.log(v) for v in values) / len(values)))


def _payload(
    kind: str, records: list, *, quick: bool, seed: int, summary: dict[str, Any]
) -> dict[str, Any]:
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": kind,
        "quick": quick,
        "seed": seed,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": [asdict(r) for r in records],
        "summary": summary,
    }


def write_hotpaths_json(
    records: list[CompareRecord],
    *,
    out_dir: str | Path = ".",
    quick: bool,
    seed: int,
) -> Path:
    """Write ``BENCH_hotpaths.json`` and return its path.

    The summary carries the geometric-mean speedup per dataset — the
    headline number the CI perf job and the README quote.
    """
    per_dataset: dict[str, list[float]] = {}
    for r in records:
        per_dataset.setdefault(r.dataset, []).append(r.speedup)
    summary = {
        f"{ds}_geomean_speedup": round(geomean(sp), 3)
        for ds, sp in sorted(per_dataset.items())
    }
    payload = _payload("hotpaths", records, quick=quick, seed=seed, summary=summary)
    return _write_payload(payload, Path(out_dir) / HOTPATHS_FILENAME)


def write_end2end_json(
    records: list[End2EndRecord],
    *,
    out_dir: str | Path = ".",
    quick: bool,
    seed: int,
) -> Path:
    """Write ``BENCH_end2end.json`` and return its path."""
    total = sum(r.seconds for r in records)
    summary = {"total_seconds": round(total, 4), "n_runs": len(records)}
    payload = _payload("end2end", records, quick=quick, seed=seed, summary=summary)
    return _write_payload(payload, Path(out_dir) / END2END_FILENAME)


def _write_payload(payload: dict[str, Any], path: Path) -> Path:
    """Validate, ensure the target directory exists, and write the JSON."""
    validate_bench_payload(payload)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


_COMMON_KEYS = {"schema_version", "kind", "quick", "seed", "python", "machine", "results", "summary"}
_COMPARE_KEYS = {
    "name", "dataset", "n_rows", "repeats",
    "seed_seconds", "current_seconds", "speedup", "extra",
}
_END2END_KEYS = {
    "name", "dataset", "n_rows", "tau", "seconds", "iterations",
    "accepted_iterations", "n_added", "seconds_per_iteration", "extra",
}


def validate_bench_payload(payload: dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``payload`` matches the BENCH schema.

    Checked: the common envelope keys, a supported ``kind``, the matching
    per-record key set, and numeric timing fields.  Used by the writers
    (fail fast before emitting a broken artifact), the smoke tests, and
    the CI perf job.
    """
    missing = _COMMON_KEYS - payload.keys()
    if missing:
        raise ValueError(f"BENCH payload missing keys: {sorted(missing)}")
    if payload["schema_version"] != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema_version {payload['schema_version']!r}")
    kind = payload["kind"]
    if kind == "hotpaths":
        record_keys, timing_fields = _COMPARE_KEYS, ("seed_seconds", "current_seconds", "speedup")
    elif kind == "end2end":
        record_keys, timing_fields = _END2END_KEYS, ("seconds", "seconds_per_iteration")
    else:
        raise ValueError(f"unknown BENCH kind {kind!r}")
    if not isinstance(payload["results"], list):
        raise ValueError("results must be a list")
    for i, rec in enumerate(payload["results"]):
        if set(rec.keys()) != record_keys:
            raise ValueError(
                f"results[{i}] keys {sorted(rec.keys())} != expected {sorted(record_keys)}"
            )
        for f in timing_fields:
            if (
                not isinstance(rec[f], (int, float))
                or rec[f] < 0
                or not math.isfinite(rec[f])
            ):
                raise ValueError(
                    f"results[{i}].{f} must be a finite non-negative number"
                )
    if not isinstance(payload["summary"], dict):
        raise ValueError("summary must be a dict")


def format_records(records: list, title: str) -> str:
    """Render records as an aligned ASCII table for CLI output."""
    if not records:
        return f"{title}\n(no records)"
    rows: list[list[str]] = []
    if isinstance(records[0], CompareRecord):
        header = ["hot path", "dataset", "rows", "seed (ms)", "current (ms)", "speedup"]
        for r in records:
            rows.append([
                r.name, r.dataset, str(r.n_rows),
                f"{r.seed_seconds * 1e3:.2f}", f"{r.current_seconds * 1e3:.2f}",
                f"{r.speedup:.1f}x",
            ])
    else:
        header = ["run", "dataset", "rows", "tau", "seconds", "iters", "s/iter"]
        for r in records:
            rows.append([
                r.name, r.dataset, str(r.n_rows), str(r.tau),
                f"{r.seconds:.2f}", str(r.iterations),
                f"{r.seconds_per_iteration:.3f}",
            ])
    widths = [max(len(h), *(len(row[c]) for row in rows)) for c, h in enumerate(header)]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
