"""Distance metrics for mixed numeric/categorical tabular data.

SMOTE-NC style neighbour search needs a metric that treats numeric and
categorical features coherently.  We use HEOM (Heterogeneous
Euclidean-Overlap Metric): numeric differences are range-normalized, and a
categorical contributes 0 when the values match and 1 otherwise.

Tables are first *encoded* into a dense float matrix (numeric columns scaled
by their training range, categorical columns kept as raw codes) together
with a boolean mask telling the metric which columns are categorical.  This
keeps all distance computations vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.neighbors.kernels import CodedLayout


def pairwise_euclidean(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Dense pairwise Euclidean distances between rows of ``A`` and ``B``."""
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    aa = np.einsum("ij,ij->i", A, A)[:, None]
    bb = np.einsum("ij,ij->i", B, B)[None, :]
    sq = aa + bb - 2.0 * (A @ B.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


class MixedMetric:
    """HEOM-style metric over encoded matrices.

    Parameters
    ----------
    cat_mask:
        Boolean array, one entry per encoded column; True for categorical
        (overlap) columns, False for numeric (squared-difference) columns.
    """

    def __init__(self, cat_mask: np.ndarray) -> None:
        self.cat_mask = np.asarray(cat_mask, dtype=bool)
        self.num_idx = np.flatnonzero(~self.cat_mask)
        self.cat_idx = np.flatnonzero(self.cat_mask)

    @property
    def n_features(self) -> int:
        """Number of encoded columns the metric expects."""
        return self.cat_mask.size

    def dists_to(self, q: np.ndarray, X: np.ndarray) -> np.ndarray:
        """Distances from one query row ``q`` to every row of ``X``."""
        q = np.asarray(q, dtype=np.float64)
        X = np.asarray(X, dtype=np.float64)
        sq = np.zeros(X.shape[0], dtype=np.float64)
        if self.num_idx.size:
            diff = X[:, self.num_idx] - q[self.num_idx]
            sq += np.einsum("ij,ij->i", diff, diff)
        if self.cat_idx.size:
            sq += (X[:, self.cat_idx] != q[self.cat_idx]).sum(axis=1)
        return np.sqrt(sq)

    def pairwise(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        """Full pairwise distance matrix between rows of ``A`` and ``B``."""
        A = np.asarray(A, dtype=np.float64)
        B = np.asarray(B, dtype=np.float64)
        sq = np.zeros((A.shape[0], B.shape[0]), dtype=np.float64)
        if self.num_idx.size:
            An, Bn = A[:, self.num_idx], B[:, self.num_idx]
            aa = np.einsum("ij,ij->i", An, An)[:, None]
            bb = np.einsum("ij,ij->i", Bn, Bn)[None, :]
            sq += aa + bb - 2.0 * (An @ Bn.T)
        if self.cat_idx.size:
            # Overlap term accumulated one categorical column at a time to
            # avoid materializing a 3-D comparison tensor.
            for j in self.cat_idx:
                sq += A[:, j][:, None] != B[:, j][None, :]
        np.maximum(sq, 0.0, out=sq)
        return np.sqrt(sq)


class TableNeighborSpace:
    """Encode :class:`Table` rows into the HEOM metric space.

    Numeric columns are divided by their (fit-time) range so each feature
    contributes at most ~1 to the squared distance, matching the categorical
    overlap term's scale.

    Use :meth:`fit` on a reference table (typically the full training data)
    and :meth:`encode` on any table with the same schema.
    """

    def __init__(self) -> None:
        self._ranges: np.ndarray | None = None
        self._mins: np.ndarray | None = None
        self.schema_ = None
        self.metric_: MixedMetric | None = None
        self._coded_cache: tuple[object, "CodedLayout"] | None = None

    def fit(self, table: Table) -> "TableNeighborSpace":
        """Learn per-column scaling from a reference table.

        Parameters
        ----------
        table : Table
            Reference rows; numeric ranges are taken from its columns.

        Returns
        -------
        TableNeighborSpace
            ``self``, for chaining.
        """
        self.schema_ = table.schema
        num_names = table.schema.numeric_names
        mins = np.zeros(len(num_names))
        ranges = np.ones(len(num_names))
        for i, name in enumerate(num_names):
            col = table.column(name)
            if col.size:
                lo, hi = float(col.min()), float(col.max())
                mins[i] = lo
                ranges[i] = (hi - lo) if hi > lo else 1.0
        self._mins = mins
        self._ranges = ranges
        n_num = len(num_names)
        n_cat = len(table.schema.categorical_names)
        cat_mask = np.zeros(n_num + n_cat, dtype=bool)
        cat_mask[n_num:] = True
        self.metric_ = MixedMetric(cat_mask)
        return self

    def encode(self, table: Table) -> np.ndarray:
        """Return the encoded matrix: scaled numerics then categorical codes."""
        if self.schema_ is None or self._ranges is None or self._mins is None:
            raise RuntimeError("TableNeighborSpace is not fitted")
        if table.schema != self.schema_:
            raise ValueError("table schema does not match the fitted schema")
        blocks: list[np.ndarray] = []
        num_names = self.schema_.numeric_names
        if num_names:
            num = np.column_stack([table.column(n) for n in num_names])
            blocks.append((num - self._mins) / self._ranges)
        cat_names = self.schema_.categorical_names
        if cat_names:
            blocks.append(
                np.column_stack([table.column(n) for n in cat_names]).astype(np.float64)
            )
        if not blocks:
            return np.zeros((table.n_rows, 0))
        return np.hstack(blocks)

    def encode_coded(
        self,
        table: Table | None = None,
        cache_token: object | None = None,
        *,
        encoded: np.ndarray | None = None,
    ) -> "CodedLayout":
        """Return the kernel-layer :class:`~repro.neighbors.kernels.CodedLayout`.

        Packs the float64 encoding into the float32/int32 coded layout the
        blocked kernels consume.  With a ``cache_token`` (typically the
        engine's ``dataset_version``) the layout is built once per token
        and reused until the token changes, so repeated queries against an
        unchanged dataset skip both the encode and the pack.

        Pass ``encoded=`` to reuse an already-computed :meth:`encode`
        matrix instead of re-reading the table.
        """
        if self.metric_ is None:
            raise RuntimeError("TableNeighborSpace is not fitted")
        if cache_token is not None and self._coded_cache is not None:
            token, layout = self._coded_cache
            if token == cache_token:
                return layout
        if encoded is None:
            if table is None:
                raise ValueError("encode_coded needs a table or an encoded matrix")
            encoded = self.encode(table)
        layout = CodedLayout.from_encoded(encoded, self.metric_.cat_mask)
        if cache_token is not None:
            self._coded_cache = (cache_token, layout)
        return layout

    def fit_encode(self, table: Table) -> np.ndarray:
        """Fit on ``table`` and return its encoding in one call."""
        return self.fit(table).encode(table)
