"""Nearest-neighbour substrate: distances, brute-force KNN, ball tree,
and the blocked kernel layer (:mod:`repro.neighbors.kernels`)."""

from repro.neighbors.balltree import BallTree
from repro.neighbors.brute import BruteKNN
from repro.neighbors.distance import (
    MixedMetric,
    TableNeighborSpace,
    pairwise_euclidean,
)
from repro.neighbors.kernels import (
    CODED_SELF_DISTANCE_TOL,
    CodedLayout,
    NumbaDistanceBackend,
    NumpyDistanceBackend,
    kneighbors_blocked,
    resolve_distance_backend,
)

__all__ = [
    "BallTree",
    "BruteKNN",
    "CODED_SELF_DISTANCE_TOL",
    "CodedLayout",
    "MixedMetric",
    "NumbaDistanceBackend",
    "NumpyDistanceBackend",
    "TableNeighborSpace",
    "kneighbors_blocked",
    "pairwise_euclidean",
    "resolve_distance_backend",
]


def make_knn(
    algorithm: str = "ball_tree",
    metric: str | MixedMetric = "euclidean",
    *,
    leaf_size: int = 32,
):
    """Factory matching the paper's configuration knob.

    ``algorithm="ball_tree"`` (the paper's setting) or ``"brute"``.
    """
    if algorithm == "ball_tree":
        return BallTree(metric, leaf_size=leaf_size)
    if algorithm == "brute":
        return BruteKNN(metric)
    raise ValueError(f"unknown algorithm {algorithm!r}; use 'ball_tree' or 'brute'")
