"""Brute-force k-nearest-neighbour search."""

from __future__ import annotations

import numpy as np

from repro.data.builder import append_rows_2d
from repro.neighbors.distance import MixedMetric, pairwise_euclidean
from repro.neighbors.kernels import CodedLayout, kneighbors_blocked


class BruteKNN:
    """Exact KNN by full pairwise distance computation.

    Parameters
    ----------
    metric:
        ``"euclidean"`` or a :class:`~repro.neighbors.distance.MixedMetric`.
    backend:
        ``None`` (default) keeps the exact float64 path, bit-identical to
        the seed.  A ``DISTANCE_BACKENDS`` name (``"numpy"``, ``"numba"``)
        or backend instance opts into the blocked float32 kernel layer
        (:mod:`repro.neighbors.kernels`) — see that module's precision and
        tie contract.
    """

    def __init__(
        self, metric: str | MixedMetric = "euclidean", *, backend=None
    ) -> None:
        self.metric = metric
        self.backend = backend
        self._X: np.ndarray | None = None
        self._buf: np.ndarray | None = None  # growable storage; _X = _buf[:_n]
        self._n = 0
        self._coded: tuple[int, CodedLayout] | None = None

    def fit(self, X: np.ndarray) -> "BruteKNN":
        """Store the reference matrix queries are answered against.

        Parameters
        ----------
        X : ndarray of shape (n_samples, n_features)
            Encoded reference rows (see
            :class:`~repro.neighbors.distance.TableNeighborSpace`).

        Returns
        -------
        BruteKNN
            ``self``, for chaining.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        self._buf = X
        self._n = X.shape[0]
        self._X = X
        self._coded = None
        return self

    def append(self, X_new: np.ndarray) -> "BruteKNN":
        """Extend the fitted matrix with new rows in O(batch) amortized.

        The reference matrix lives in a capacity-doubling buffer; queries
        after an append are answered against exactly the rows a fresh
        ``fit`` on the concatenated matrix would hold, so results are
        bit-identical to refitting from scratch.

        Parameters
        ----------
        X_new : ndarray of shape (n_new, n_features)
            Rows to add, same feature layout as the fitted matrix.

        Returns
        -------
        BruteKNN
            ``self``, for chaining.
        """
        if self._buf is None:
            return self.fit(X_new)
        X_new = np.asarray(X_new, dtype=np.float64)
        if X_new.ndim != 2 or X_new.shape[1] != self._buf.shape[1]:
            raise ValueError(
                f"X_new must have shape (n, {self._buf.shape[1]}), "
                f"got {X_new.shape}"
            )
        if X_new.shape[0] == 0:
            return self
        self._buf = append_rows_2d(self._buf, self._n, X_new)
        self._n += X_new.shape[0]
        self._X = self._buf[: self._n]
        self._coded = None
        return self

    def checkpoint(self) -> int:
        """Opaque token capturing the current fitted-row count.

        Pair with :meth:`rollback` to discard rows appended during a
        rejected edit-loop candidate in O(1).
        """
        if self._buf is None:
            raise RuntimeError("BruteKNN is not fitted")
        return self._n

    def rollback(self, token: int) -> None:
        """Forget every row appended since ``token`` was captured.

        O(1): the buffer is re-sliced, not copied.
        """
        if self._buf is None:
            raise RuntimeError("BruteKNN is not fitted")
        if not 0 <= token <= self._n:
            raise ValueError(f"invalid checkpoint token {token}")
        self._n = token
        self._X = self._buf[: self._n]
        self._coded = None

    @property
    def n_samples(self) -> int:
        """Number of fitted reference rows."""
        if self._X is None:
            raise RuntimeError("BruteKNN is not fitted")
        return self._X.shape[0]

    def kneighbors(
        self, Q: np.ndarray, k: int, *, exclude_self: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (distances, indices) of the ``k`` nearest fitted rows.

        Parameters
        ----------
        Q:
            Query matrix.
        k:
            Number of neighbours, clipped to the number of available rows.
        exclude_self:
            Drop a zero-distance exact match per query (for leave-one-out
            queries against the fitted matrix itself).
        """
        if self._X is None:
            raise RuntimeError("BruteKNN is not fitted")
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim != 2:
            raise ValueError(f"Q must be 2-D, got shape {Q.shape}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if self.backend is not None:
            return kneighbors_blocked(
                CodedLayout.from_encoded(Q, self._cat_mask()),
                self._coded_base(),
                k,
                exclude_self=exclude_self,
                backend=self.backend,
            )
        if isinstance(self.metric, MixedMetric):
            D = self.metric.pairwise(Q, self._X)
        else:
            D = pairwise_euclidean(Q, self._X)
        return _topk_from_dists(D, k, exclude_self=exclude_self)

    def _cat_mask(self) -> np.ndarray:
        if isinstance(self.metric, MixedMetric):
            return self.metric.cat_mask
        return np.zeros(self._X.shape[1], dtype=bool)

    def _coded_base(self) -> CodedLayout:
        """Coded layout of the fitted rows, rebuilt after any mutation.

        ``fit``/``append``/``rollback`` drop the cache, so the count check
        here is belt-and-braces only.
        """
        if self._coded is not None and self._coded[0] == self._n:
            return self._coded[1]
        layout = CodedLayout.from_encoded(self._X, self._cat_mask())
        self._coded = (self._n, layout)
        return layout


# Distances below this are treated as "the query itself" for exclude_self.
# Pairwise distances via the (a^2 + b^2 - 2ab) expansion carry ~1e-8 of
# floating error, so an exact zero test would fail to drop self matches.
SELF_DISTANCE_TOL = 1e-6


def _topk_from_dists(
    D: np.ndarray, k: int, *, exclude_self: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Select the ``k`` smallest entries per row of a distance matrix.

    Parameters
    ----------
    D : ndarray of shape (n_queries, n_fitted)
        Dense distance matrix.
    k : int
        Number of neighbours requested per row.
    exclude_self : bool
        Drop one zero-distance exact match per row (the query itself for
        leave-one-out queries against the fitted matrix).

    Returns
    -------
    distances : ndarray of shape (n_queries, k_out)
        Sorted ascending per row.
    indices : ndarray of shape (n_queries, k_out)
        Column indices into ``D`` matching ``distances``.
    """
    n_q, n_x = D.shape
    budget = k + 1 if exclude_self else k
    k_eff = min(budget, n_x)
    if k_eff == 0:
        return np.zeros((n_q, 0)), np.zeros((n_q, 0), dtype=np.intp)
    part = np.argpartition(D, k_eff - 1, axis=1)[:, :k_eff]
    part_d = np.take_along_axis(D, part, axis=1)
    order = np.argsort(part_d, axis=1, kind="stable")
    idx = np.take_along_axis(part, order, axis=1)
    dist = np.take_along_axis(part_d, order, axis=1)
    if not exclude_self:
        return dist[:, :k], idx[:, :k]
    out_k = min(k, max(k_eff - 1, 0))
    if out_k == 0:
        return np.zeros((n_q, 0)), np.zeros((n_q, 0), dtype=np.intp)
    # Rows whose nearest hit is the query itself start one column later;
    # rows without a self match keep their first out_k columns.  A single
    # gather replaces the per-row Python loop.
    offset = (dist[:, 0] < SELF_DISTANCE_TOL).astype(np.intp)
    cols = offset[:, None] + np.arange(out_k, dtype=np.intp)[None, :]
    return (
        np.take_along_axis(dist, cols, axis=1),
        np.take_along_axis(idx, cols, axis=1),
    )
