"""Brute-force k-nearest-neighbour search."""

from __future__ import annotations

import numpy as np

from repro.neighbors.distance import MixedMetric, pairwise_euclidean


class BruteKNN:
    """Exact KNN by full pairwise distance computation.

    Parameters
    ----------
    metric:
        ``"euclidean"`` or a :class:`~repro.neighbors.distance.MixedMetric`.
    """

    def __init__(self, metric: str | MixedMetric = "euclidean") -> None:
        self.metric = metric
        self._X: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "BruteKNN":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        self._X = X
        return self

    @property
    def n_samples(self) -> int:
        if self._X is None:
            raise RuntimeError("BruteKNN is not fitted")
        return self._X.shape[0]

    def kneighbors(
        self, Q: np.ndarray, k: int, *, exclude_self: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (distances, indices) of the ``k`` nearest fitted rows.

        Parameters
        ----------
        Q:
            Query matrix.
        k:
            Number of neighbours, clipped to the number of available rows.
        exclude_self:
            Drop a zero-distance exact match per query (for leave-one-out
            queries against the fitted matrix itself).
        """
        if self._X is None:
            raise RuntimeError("BruteKNN is not fitted")
        Q = np.asarray(Q, dtype=np.float64)
        if Q.ndim != 2:
            raise ValueError(f"Q must be 2-D, got shape {Q.shape}")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if isinstance(self.metric, MixedMetric):
            D = self.metric.pairwise(Q, self._X)
        else:
            D = pairwise_euclidean(Q, self._X)
        return _topk_from_dists(D, k, exclude_self=exclude_self)


# Distances below this are treated as "the query itself" for exclude_self.
# Pairwise distances via the (a^2 + b^2 - 2ab) expansion carry ~1e-8 of
# floating error, so an exact zero test would fail to drop self matches.
SELF_DISTANCE_TOL = 1e-6


def _topk_from_dists(
    D: np.ndarray, k: int, *, exclude_self: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Select the k smallest entries per row of a distance matrix."""
    n_q, n_x = D.shape
    budget = k + 1 if exclude_self else k
    k_eff = min(budget, n_x)
    if k_eff == 0:
        return np.zeros((n_q, 0)), np.zeros((n_q, 0), dtype=np.intp)
    part = np.argpartition(D, k_eff - 1, axis=1)[:, :k_eff]
    part_d = np.take_along_axis(D, part, axis=1)
    order = np.argsort(part_d, axis=1, kind="stable")
    idx = np.take_along_axis(part, order, axis=1)
    dist = np.take_along_axis(part_d, order, axis=1)
    if exclude_self:
        # Drop the first zero-distance hit per row (the query itself when the
        # query set equals the fitted set), then truncate to k.
        keep_idx = np.empty((n_q, min(k, max(k_eff - 1, 0))), dtype=np.intp)
        keep_dist = np.empty_like(keep_idx, dtype=np.float64)
        for r in range(n_q):
            row_idx, row_dist = idx[r], dist[r]
            if row_dist.size and row_dist[0] < SELF_DISTANCE_TOL:
                row_idx, row_dist = row_idx[1:], row_dist[1:]
            else:
                row_idx, row_dist = row_idx[: k_eff - 1], row_dist[: k_eff - 1]
            keep_idx[r, : row_idx.size] = row_idx[: keep_idx.shape[1]]
            keep_dist[r, : row_dist.size] = row_dist[: keep_idx.shape[1]]
        return keep_dist, keep_idx
    return dist[:, :k], idx[:, :k]
